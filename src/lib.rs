//! **gpu-secure-memory** — a from-scratch Rust reproduction of
//! *"Analyzing Secure Memory Architecture for GPUs"* (ISPASS 2021).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`crypto`] — functional AES-128 / AES-CMAC / counter-mode / tree hash.
//! * [`gpusim`] — the Volta-class GPU memory-system timing simulator.
//! * [`core`] — the secure memory engines (counter-mode + BMT, direct +
//!   MT), metadata caches, AES/MAC timing models, functional secure
//!   memory, and the die-area model.
//! * [`workloads`] — the 14 synthetic Table-IV benchmarks.
//! * [`telemetry`] — low-overhead sampling, structured events, and
//!   Chrome-trace/CSV/sparkline exporters for profiling runs.
//! * [`checkpoint`] — versioned, checksummed snapshot/restore of full
//!   simulator state for crash-safe paper-scale runs.
//!
//! # Quickstart
//!
//! ```
//! use gpu_secure_memory::core::{SecureBackend, SecureMemConfig};
//! use gpu_secure_memory::gpusim::config::GpuConfig;
//! use gpu_secure_memory::gpusim::sim::Simulator;
//! use gpu_secure_memory::workloads::suite;
//!
//! let gpu = GpuConfig::small();
//! let kernel = suite::by_name("fdtd2d").expect("in the suite");
//! let mut sim = Simulator::new(gpu, &kernel, |_, g| {
//!     SecureBackend::new(SecureMemConfig::secure_mem(), g)
//! });
//! let report = sim.run(3_000);
//! assert!(report.ipc() > 0.0);
//! ```
//!
//! See `examples/` for runnable scenarios and the `secmem-bench`
//! crate's `reproduce` binary for regenerating every table and figure of
//! the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use secmem_checkpoint as checkpoint;
pub use secmem_core as core;
pub use secmem_crypto as crypto;
pub use secmem_gpusim as gpusim;
pub use secmem_telemetry as telemetry;
pub use secmem_workloads as workloads;
