//! End-to-end fault-injection tests: seeded DRAM faults driven through
//! the full simulator (SMs → interconnect → L2 → secure backend → DRAM),
//! checking the detection matrix, reproducibility, and the watchdog.

use gpu_secure_memory::core::{SecureBackend, SecureMemConfig, SecurityScheme};
use gpu_secure_memory::gpusim::backend::PassthroughBackend;
use gpu_secure_memory::gpusim::config::GpuConfig;
use gpu_secure_memory::gpusim::error::SimError;
use gpu_secure_memory::gpusim::fault::{FaultKind, FaultPlan, FaultSpec, FaultStats, FaultTrigger};
use gpu_secure_memory::gpusim::kernel::StreamKernel;
use gpu_secure_memory::gpusim::sim::Simulator;
use gpu_secure_memory::gpusim::stats::SimReport;
use gpu_secure_memory::gpusim::types::TrafficClass;

const CYCLES: u64 = 15_000;

fn kernel() -> StreamKernel {
    StreamKernel { alu_per_mem: 1, bytes_per_warp: 1 << 18, warps: 8 }
}

fn data_read_plan(seed: u64, kind: FaultKind) -> FaultPlan {
    FaultPlan::new(seed)
        .with(FaultSpec::new(kind, FaultTrigger::OneIn(40)).on_class(TrafficClass::Data).limit(16))
}

fn run_secure(scheme: SecurityScheme, plan: &FaultPlan) -> SimReport {
    let plan = plan.clone();
    let mut sim = Simulator::new(GpuConfig::small(), &kernel(), move |p, g| {
        let mut b = SecureBackend::new(SecureMemConfig::with_scheme(scheme), g);
        b.install_faults(plan.injector_for(p));
        b
    });
    sim.run(CYCLES)
}

fn run_baseline(plan: &FaultPlan) -> SimReport {
    let plan = plan.clone();
    let mut sim = Simulator::new(GpuConfig::small(), &kernel(), move |p, g| {
        let mut b = PassthroughBackend::from_config(g);
        b.install_faults(plan.injector_for(p));
        b
    });
    sim.run(CYCLES)
}

fn assert_all_detected(f: &FaultStats, what: &str) {
    assert!(f.total_injected() > 0, "{what}: no fault landed");
    assert_eq!(f.total_undetected(), 0, "{what}: corruption slipped through");
    assert_eq!(f.total_detected(), f.total_injected(), "{what}: detection accounting");
}

fn assert_none_detected(f: &FaultStats, what: &str) {
    assert!(f.total_injected() > 0, "{what}: no fault landed");
    assert_eq!(f.total_detected(), 0, "{what}: scheme cannot detect this");
    assert_eq!(f.total_undetected(), f.total_injected(), "{what}: detection accounting");
}

#[test]
fn same_seed_and_plan_reproduce_identical_fault_stats() {
    let plan = data_read_plan(0xD5_0001, FaultKind::BitFlip);
    let a = run_secure(SecurityScheme::CtrMacBmt, &plan);
    let b = run_secure(SecurityScheme::CtrMacBmt, &plan);
    assert!(a.faults.total_injected() > 0, "faults actually fired");
    assert_eq!(a.faults, b.faults, "fault streams must be bit-identical");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.thread_instructions, b.thread_instructions);
}

#[test]
fn different_seed_moves_the_injections() {
    let a = run_secure(SecurityScheme::CtrMacBmt, &data_read_plan(0xD5_0002, FaultKind::BitFlip));
    let b = run_secure(SecurityScheme::CtrMacBmt, &data_read_plan(0xD5_0003, FaultKind::BitFlip));
    // Both land faults; the *streams* differ even if the totals can
    // coincide under the per-spec cap, so compare with the cap removed.
    assert!(a.faults.total_injected() > 0 && b.faults.total_injected() > 0);
    let wide = |seed| {
        FaultPlan::new(seed)
            .with(FaultSpec::new(FaultKind::BitFlip, FaultTrigger::OneIn(40)).on_class(TrafficClass::Data))
    };
    let wa = run_secure(SecurityScheme::CtrMacBmt, &wide(0xD5_0002));
    let wb = run_secure(SecurityScheme::CtrMacBmt, &wide(0xD5_0003));
    assert_ne!(wa.faults, wb.faults, "different seeds must perturb the fault stream");
}

#[test]
fn bit_flip_is_caught_by_mac_schemes_and_missed_by_the_rest() {
    let plan = data_read_plan(0xD5_0010, FaultKind::BitFlip);
    for scheme in [SecurityScheme::CtrMacBmt, SecurityScheme::DirectMac, SecurityScheme::DirectMacMt] {
        assert_all_detected(&run_secure(scheme, &plan).faults, scheme.label());
    }
    for scheme in [SecurityScheme::CtrOnly, SecurityScheme::CtrBmt, SecurityScheme::Direct] {
        assert_none_detected(&run_secure(scheme, &plan).faults, scheme.label());
    }
    assert_none_detected(&run_baseline(&plan).faults, "baseline");
}

#[test]
fn replay_fools_direct_mac_but_not_tree_schemes() {
    let plan = data_read_plan(0xD5_0020, FaultKind::Replay);
    // Stale-but-authentic data passes MAC verification: only schemes
    // with an integrity tree pin freshness.
    assert_none_detected(&run_secure(SecurityScheme::DirectMac, &plan).faults, "direct_mac vs replay");
    assert_none_detected(&run_baseline(&plan).faults, "baseline vs replay");
    for scheme in [SecurityScheme::CtrBmt, SecurityScheme::CtrMacBmt, SecurityScheme::DirectMacMt] {
        assert_all_detected(&run_secure(scheme, &plan).faults, scheme.label());
    }
}

#[test]
fn dropped_completions_trip_the_watchdog() {
    let mut cfg = GpuConfig::small();
    cfg.watchdog_cycles = 2_000;
    let plan = FaultPlan::new(0xD5_0030)
        .with(FaultSpec::new(FaultKind::Drop, FaultTrigger::Always).on_class(TrafficClass::Data));
    let mut sim = Simulator::new(cfg, &kernel(), move |p, g| {
        let mut b = SecureBackend::new(SecureMemConfig::secure_mem(), g);
        b.install_faults(plan.injector_for(p));
        b
    });
    let err = sim.run_checked(500_000).expect_err("dropping all data must stall");
    let SimError::Stalled(stall) = *err else { panic!("expected a stall, got {err:?}") };
    assert!(stall.cycle < 100_000, "watchdog fired early, not at the cycle cap");
    assert!(stall.unfinished_warps > 0);
    assert!(!stall.partitions.is_empty(), "per-partition diagnostics present");
}

#[test]
fn delayed_completions_slow_the_run_but_finish() {
    // Delays are timing-only: nothing to detect, no stall, but measurably
    // fewer instructions retire in the same budget.
    let delay = FaultPlan::new(0xD5_0040)
        .with(FaultSpec::new(FaultKind::Delay(400), FaultTrigger::OneIn(4)).on_class(TrafficClass::Data));
    let faulted = run_secure(SecurityScheme::CtrMacBmt, &delay);
    let clean = run_secure(SecurityScheme::CtrMacBmt, &FaultPlan::new(0xD5_0040));
    assert!(faulted.faults.total_injected() == 0, "delays are not corruptions");
    assert!(faulted.faults.per_class.iter().map(|c| c.delayed).sum::<u64>() > 0);
    assert!(faulted.stall.is_none(), "delays must not trip the watchdog");
    assert!(
        faulted.thread_instructions < clean.thread_instructions,
        "delayed DRAM must cost throughput: {} vs {}",
        faulted.thread_instructions,
        clean.thread_instructions
    );
}
