//! Tier-1 gate for crash-safe runs (DESIGN.md §12): a snapshot taken
//! mid-flight, round-tripped through the on-disk frame format, and
//! restored into a freshly built simulator must run to a report
//! byte-identical to an uninterrupted run — for every benchmark of the
//! pinned matrix under every security scheme. This is the property that
//! makes `simulate --resume-from` and the sweep runner's
//! warm-checkpoint forking trustworthy.

use gpu_secure_memory::checkpoint::{fnv1a, Frame};
use gpu_secure_memory::core::{SecureBackend, SecureMemConfig, SecurityScheme};
use gpu_secure_memory::gpusim::backend::{MemoryBackend, PassthroughBackend};
use gpu_secure_memory::gpusim::config::GpuConfig;
use gpu_secure_memory::gpusim::sim::Simulator;
use gpu_secure_memory::gpusim::stats::SimReport;
use gpu_secure_memory::workloads::{suite, SyntheticKernel};

const CYCLES: u64 = 3_000;
const CUT: u64 = 1_200;

/// The pinned benchmark matrix (one per Table-IV category).
const BENCHES: [&str; 4] = ["nw", "b+tree", "kmeans", "fdtd2d"];

const ALL_SCHEMES: [SecurityScheme; 7] = [
    SecurityScheme::Baseline,
    SecurityScheme::CtrOnly,
    SecurityScheme::CtrBmt,
    SecurityScheme::CtrMacBmt,
    SecurityScheme::Direct,
    SecurityScheme::DirectMac,
    SecurityScheme::DirectMacMt,
];

fn kernel(bench: &str) -> SyntheticKernel {
    suite::by_name(bench).unwrap_or_else(|| panic!("suite workload {bench}"))
}

fn fingerprint(report: &SimReport) -> u64 {
    fnv1a(format!("{report:?}").as_bytes())
}

/// One uninterrupted run vs. snapshot-at-CUT + file-format round-trip +
/// restore-into-fresh-sim + run-to-end, generic over the backend.
fn check<B: MemoryBackend>(bench: &str, scheme: SecurityScheme, build: impl Fn() -> Simulator<B>) {
    let mut straight = build();
    let unbroken = straight.run(CYCLES);
    assert!(unbroken.cycles > 0, "{bench}/{scheme:?}: run must actually simulate");

    let mut first = build();
    let _ = first.run_checked(CUT);
    let frame = first.save_checkpoint();
    // Round-trip through the wire format so the gate also covers
    // encode/decode, not just the in-memory state transfer.
    let frame = Frame::decode(&frame.encode()).expect("frame survives its own wire format");
    let mut resumed = build();
    resumed.restore_checkpoint(&frame).expect("restore into a fresh, identically-built simulator");
    let resumed_report = resumed.run(CYCLES);

    assert_eq!(
        fingerprint(&unbroken),
        fingerprint(&resumed_report),
        "{bench}/{scheme:?}: resumed report diverges from the uninterrupted run\n\
         uninterrupted: {unbroken:?}\nresumed: {resumed_report:?}"
    );
}

#[test]
fn snapshot_resume_is_invisible_across_the_full_matrix() {
    let gpu = GpuConfig::small();
    for bench in BENCHES {
        for scheme in ALL_SCHEMES {
            let k = kernel(bench);
            match scheme {
                SecurityScheme::Baseline => {
                    check(bench, scheme, || {
                        Simulator::new(gpu.clone(), &k, |_, g| PassthroughBackend::from_config(g))
                    });
                }
                s => {
                    let cfg = SecureMemConfig::with_scheme(s);
                    check(bench, scheme, || {
                        let cfg = cfg.clone();
                        Simulator::new(gpu.clone(), &k, move |_, g| SecureBackend::new(cfg.clone(), g))
                    });
                }
            }
        }
    }
}

#[test]
fn checkpoint_rejects_the_wrong_configuration() {
    let gpu = GpuConfig::small();
    let k = kernel("fdtd2d");
    let cfg = SecureMemConfig::with_scheme(SecurityScheme::CtrMacBmt);
    let mut sim = {
        let cfg = cfg.clone();
        Simulator::new(gpu.clone(), &k, move |_, g| SecureBackend::new(cfg.clone(), g))
    };
    let _ = sim.run_checked(CUT);
    let frame = sim.save_checkpoint();

    // Different GPU geometry: the config fingerprint must not match.
    let mut other_gpu = gpu.clone();
    other_gpu.num_sms += 1;
    let mut wrong = {
        let cfg = cfg.clone();
        Simulator::new(other_gpu, &k, move |_, g| SecureBackend::new(cfg.clone(), g))
    };
    assert!(wrong.restore_checkpoint(&frame).is_err(), "geometry mismatch must be rejected");
}

#[test]
fn corrupted_frames_are_rejected_with_typed_errors() {
    let gpu = GpuConfig::small();
    let k = kernel("nw");
    let mut sim = Simulator::new(gpu, &k, |_, g| PassthroughBackend::from_config(g));
    let _ = sim.run_checked(CUT);
    let bytes = sim.save_checkpoint().encode();

    // Truncation, magic damage, and a payload bit-flip (checksum) must
    // all fail decode — never panic, never restore garbage.
    assert!(Frame::decode(&bytes[..bytes.len() / 2]).is_err(), "truncated frame accepted");
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(Frame::decode(&bad_magic).is_err(), "bad magic accepted");
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    assert!(Frame::decode(&flipped).is_err(), "checksum miss accepted");
    assert!(Frame::decode(&bytes).is_ok(), "pristine frame must still decode");
}
