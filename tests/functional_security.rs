//! Randomized tests of the functional secure memory: confidentiality,
//! integrity and replay protection hold for seeded-random write sequences
//! and tampering, per scheme (offline replacement for the `proptest` suite).

use gpu_secure_memory::core::functional::FunctionalSecureMemory;
use gpu_secure_memory::core::SecurityScheme;
use gpu_secure_memory::gpusim::rng::Rng64;

const REGION: u64 = 1024 * 1024;

const ALL_SCHEMES: [SecurityScheme; 6] = [
    SecurityScheme::CtrOnly,
    SecurityScheme::CtrBmt,
    SecurityScheme::CtrMacBmt,
    SecurityScheme::Direct,
    SecurityScheme::DirectMac,
    SecurityScheme::DirectMacMt,
];

const INTEGRITY_SCHEMES: [SecurityScheme; 3] =
    [SecurityScheme::CtrMacBmt, SecurityScheme::DirectMac, SecurityScheme::DirectMacMt];

const TREE_SCHEMES: [SecurityScheme; 3] =
    [SecurityScheme::CtrBmt, SecurityScheme::CtrMacBmt, SecurityScheme::DirectMacMt];

fn line(data: u8) -> [u8; 128] {
    let mut out = [0u8; 128];
    for (i, b) in out.iter_mut().enumerate() {
        *b = data ^ (i as u8).wrapping_mul(31);
    }
    out
}

#[test]
fn write_read_roundtrip() {
    for (case, &scheme) in
        ALL_SCHEMES.iter().enumerate().flat_map(|(j, s)| (0..4).map(move |k| (j * 4 + k, s)))
    {
        let mut rng = Rng64::new(0xF100 + case as u64);
        let mut m = FunctionalSecureMemory::new(scheme, REGION, &[3u8; 16]);
        let mut shadow = std::collections::HashMap::new();
        let writes = 1 + rng.gen_range(39);
        for _ in 0..writes {
            let addr = rng.gen_range(512) * 128;
            let tag = rng.next_u64() as u8;
            m.write_line(addr, &line(tag));
            shadow.insert(addr, tag);
        }
        for (addr, tag) in shadow {
            assert_eq!(m.read_line(addr).expect("untampered"), line(tag));
        }
    }
}

#[test]
fn ciphertext_never_leaks_plaintext() {
    for (case, &scheme) in ALL_SCHEMES.iter().enumerate() {
        let mut rng = Rng64::new(0xF200 + case as u64);
        let mut m = FunctionalSecureMemory::new(scheme, REGION, &[9u8; 16]);
        for _ in 0..8 {
            let addr = rng.gen_range(512) * 128;
            let tag = rng.next_u64() as u8;
            m.write_line(addr, &line(tag));
            assert_ne!(m.raw_ciphertext(addr), line(tag));
        }
    }
}

#[test]
fn any_data_tamper_is_detected() {
    for (case, &scheme) in
        INTEGRITY_SCHEMES.iter().enumerate().flat_map(|(j, s)| (0..8).map(move |k| (j * 8 + k, s)))
    {
        let mut rng = Rng64::new(0xF300 + case as u64);
        let mut m = FunctionalSecureMemory::new(scheme, REGION, &[5u8; 16]);
        let addr = rng.gen_range(256) * 128;
        let byte = rng.gen_range(128) as usize;
        let xor = 1 + rng.gen_range(255) as u8;
        m.write_line(addr, &line(0xAA));
        m.tamper_data(addr, byte, xor);
        assert!(m.read_line(addr).is_err(), "tamper must be detected by {scheme}");
    }
}

#[test]
fn any_mac_tamper_is_detected() {
    for (case, &scheme) in
        INTEGRITY_SCHEMES.iter().enumerate().flat_map(|(j, s)| (0..8).map(move |k| (j * 8 + k, s)))
    {
        let mut rng = Rng64::new(0xF400 + case as u64);
        let mut m = FunctionalSecureMemory::new(scheme, REGION, &[5u8; 16]);
        let addr = rng.gen_range(256) * 128;
        let sector = rng.gen_range(4) as usize;
        let xor = 1 + rng.gen_range(u64::from(u16::MAX) - 1) as u16;
        m.write_line(addr, &line(0x55));
        m.tamper_mac(addr, sector, xor);
        assert!(m.read_line(addr).is_err());
    }
}

#[test]
fn replay_detected_by_tree_schemes() {
    for (case, &scheme) in
        TREE_SCHEMES.iter().enumerate().flat_map(|(j, s)| (0..8).map(move |k| (j * 8 + k, s)))
    {
        let mut rng = Rng64::new(0xF500 + case as u64);
        let addr = rng.gen_range(256) * 128;
        let old = rng.next_u64() as u8;
        let new = old.wrapping_add(1 + rng.gen_range(254) as u8);
        let mut m = FunctionalSecureMemory::new(scheme, REGION, &[7u8; 16]);
        m.write_line(addr, &line(old));
        let snapshot = m.snapshot();
        m.write_line(addr, &line(new));
        m.replay(&snapshot);
        assert!(m.read_line(addr).is_err(), "replay must be detected by {scheme}");
    }
}

#[test]
fn replay_fools_direct_mac() {
    for case in 0..16u64 {
        let mut rng = Rng64::new(0xF600 + case);
        let addr = rng.gen_range(256) * 128;
        let old = rng.next_u64() as u8;
        let new = old.wrapping_add(1 + rng.gen_range(254) as u8);
        let mut m = FunctionalSecureMemory::new(SecurityScheme::DirectMac, REGION, &[7u8; 16]);
        m.write_line(addr, &line(old));
        let snapshot = m.snapshot();
        m.write_line(addr, &line(new));
        m.replay(&snapshot);
        // A consistent stale snapshot passes MAC verification: the attacker
        // rolled the value back. This is the MT's raison d'etre (Fig. 17).
        assert_eq!(m.read_line(addr).expect("MAC alone cannot catch replay"), line(old));
    }
}

#[test]
fn counter_mode_rewrites_change_ciphertext() {
    for case in 0..16u64 {
        let mut rng = Rng64::new(0xF700 + case);
        let addr = rng.gen_range(256) * 128;
        let tag = rng.next_u64() as u8;
        let mut m = FunctionalSecureMemory::new(SecurityScheme::CtrMacBmt, REGION, &[1u8; 16]);
        m.write_line(addr, &line(tag));
        let c1 = m.raw_ciphertext(addr);
        m.write_line(addr, &line(tag));
        let c2 = m.raw_ciphertext(addr);
        assert_ne!(c1.to_vec(), c2.to_vec(), "counter bump must refresh the pad");
        assert_eq!(m.read_line(addr).expect("valid"), line(tag));
    }
}

#[test]
fn minor_counter_overflow_reencrypts_chunk() {
    let mut m = FunctionalSecureMemory::new(SecurityScheme::CtrMacBmt, REGION, &[2u8; 16]);
    // Two lines in the same 16 KB chunk.
    m.write_line(0, &line(1));
    m.write_line(128, &line(2));
    // Overwhelm line 0's 7-bit minor counter to force a major overflow.
    for _ in 0..200 {
        m.write_line(0, &line(1));
    }
    // Both lines must still verify and decrypt after the chunk re-encryption.
    assert_eq!(m.read_line(0).expect("verifies"), line(1));
    assert_eq!(m.read_line(128).expect("verifies"), line(2));
}
