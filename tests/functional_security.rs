//! Property-based tests of the functional secure memory: confidentiality,
//! integrity and replay protection hold for arbitrary write sequences and
//! arbitrary tampering, per scheme.

use proptest::prelude::*;

use gpu_secure_memory::core::functional::FunctionalSecureMemory;
use gpu_secure_memory::core::SecurityScheme;

const REGION: u64 = 1024 * 1024;

fn any_scheme() -> impl Strategy<Value = SecurityScheme> {
    prop::sample::select(vec![
        SecurityScheme::CtrOnly,
        SecurityScheme::CtrBmt,
        SecurityScheme::CtrMacBmt,
        SecurityScheme::Direct,
        SecurityScheme::DirectMac,
        SecurityScheme::DirectMacMt,
    ])
}

fn integrity_scheme() -> impl Strategy<Value = SecurityScheme> {
    prop::sample::select(vec![
        SecurityScheme::CtrMacBmt,
        SecurityScheme::DirectMac,
        SecurityScheme::DirectMacMt,
    ])
}

fn line(data: u8) -> [u8; 128] {
    let mut out = [0u8; 128];
    for (i, b) in out.iter_mut().enumerate() {
        *b = data ^ (i as u8).wrapping_mul(31);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn write_read_roundtrip(scheme in any_scheme(),
                            writes in prop::collection::vec((0u64..512, any::<u8>()), 1..40)) {
        let mut m = FunctionalSecureMemory::new(scheme, REGION, &[3u8; 16]);
        let mut shadow = std::collections::HashMap::new();
        for (slot, tag) in writes {
            let addr = slot * 128;
            m.write_line(addr, &line(tag));
            shadow.insert(addr, tag);
        }
        for (addr, tag) in shadow {
            prop_assert_eq!(m.read_line(addr).expect("untampered"), line(tag));
        }
    }

    #[test]
    fn ciphertext_never_leaks_plaintext(scheme in any_scheme(), tag in any::<u8>(),
                                        slot in 0u64..512) {
        let mut m = FunctionalSecureMemory::new(scheme, REGION, &[9u8; 16]);
        let addr = slot * 128;
        m.write_line(addr, &line(tag));
        prop_assert_ne!(m.raw_ciphertext(addr), line(tag));
    }

    #[test]
    fn any_data_tamper_is_detected(scheme in integrity_scheme(),
                                   slot in 0u64..256,
                                   byte in 0usize..128,
                                   xor in 1u8..=255) {
        let mut m = FunctionalSecureMemory::new(scheme, REGION, &[5u8; 16]);
        let addr = slot * 128;
        m.write_line(addr, &line(0xAA));
        m.tamper_data(addr, byte, xor);
        prop_assert!(m.read_line(addr).is_err(), "tamper must be detected by {scheme}");
    }

    #[test]
    fn any_mac_tamper_is_detected(scheme in integrity_scheme(),
                                  slot in 0u64..256,
                                  sector in 0usize..4,
                                  xor in 1u16..=u16::MAX) {
        let mut m = FunctionalSecureMemory::new(scheme, REGION, &[5u8; 16]);
        let addr = slot * 128;
        m.write_line(addr, &line(0x55));
        m.tamper_mac(addr, sector, xor);
        prop_assert!(m.read_line(addr).is_err());
    }

    #[test]
    fn replay_detected_by_tree_schemes(scheme in prop::sample::select(vec![
            SecurityScheme::CtrBmt, SecurityScheme::CtrMacBmt, SecurityScheme::DirectMacMt]),
            slot in 0u64..256, old in any::<u8>(), new in any::<u8>()) {
        prop_assume!(old != new);
        let mut m = FunctionalSecureMemory::new(scheme, REGION, &[7u8; 16]);
        let addr = slot * 128;
        m.write_line(addr, &line(old));
        let snapshot = m.snapshot();
        m.write_line(addr, &line(new));
        m.replay(&snapshot);
        prop_assert!(m.read_line(addr).is_err(), "replay must be detected by {scheme}");
    }

    #[test]
    fn replay_fools_direct_mac(slot in 0u64..256, old in any::<u8>(), new in any::<u8>()) {
        prop_assume!(old != new);
        let mut m = FunctionalSecureMemory::new(SecurityScheme::DirectMac, REGION, &[7u8; 16]);
        let addr = slot * 128;
        m.write_line(addr, &line(old));
        let snapshot = m.snapshot();
        m.write_line(addr, &line(new));
        m.replay(&snapshot);
        // A consistent stale snapshot passes MAC verification: the attacker
        // rolled the value back. This is the MT's raison d'etre (Fig. 17).
        prop_assert_eq!(m.read_line(addr).expect("MAC alone cannot catch replay"), line(old));
    }

    #[test]
    fn counter_mode_rewrites_change_ciphertext(slot in 0u64..256, tag in any::<u8>()) {
        let mut m = FunctionalSecureMemory::new(SecurityScheme::CtrMacBmt, REGION, &[1u8; 16]);
        let addr = slot * 128;
        m.write_line(addr, &line(tag));
        let c1 = m.raw_ciphertext(addr);
        m.write_line(addr, &line(tag));
        let c2 = m.raw_ciphertext(addr);
        prop_assert_ne!(c1.to_vec(), c2.to_vec(), "counter bump must refresh the pad");
        prop_assert_eq!(m.read_line(addr).expect("valid"), line(tag));
    }
}

#[test]
fn minor_counter_overflow_reencrypts_chunk() {
    let mut m = FunctionalSecureMemory::new(SecurityScheme::CtrMacBmt, REGION, &[2u8; 16]);
    // Two lines in the same 16 KB chunk.
    m.write_line(0, &line(1));
    m.write_line(128, &line(2));
    // Overwhelm line 0's 7-bit minor counter to force a major overflow.
    for _ in 0..200 {
        m.write_line(0, &line(1));
    }
    // Both lines must still verify and decrypt after the chunk re-encryption.
    assert_eq!(m.read_line(0).expect("verifies"), line(1));
    assert_eq!(m.read_line(128).expect("verifies"), line(2));
}
