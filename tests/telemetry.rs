//! End-to-end telemetry tests through the umbrella crate: the sampled
//! time series must reconcile with the end-of-run report, enabling
//! telemetry must not change simulation results, and the Chrome-trace
//! export must be valid JSON.

use gpu_secure_memory::core::{SecureBackend, SecureMemConfig};
use gpu_secure_memory::gpusim::config::GpuConfig;
use gpu_secure_memory::gpusim::sim::Simulator;
use gpu_secure_memory::gpusim::stats::SimReport;
use gpu_secure_memory::gpusim::types::TrafficClass;
use gpu_secure_memory::telemetry::{chrome, Telemetry, TelemetryConfig, TelemetrySnapshot};
use gpu_secure_memory::workloads::suite;

const CYCLES: u64 = 12_000;

fn secure_sim() -> Simulator<SecureBackend> {
    let kernel = suite::by_name("srad_v2").expect("in the suite");
    Simulator::new(GpuConfig::small(), &kernel, |_, g| SecureBackend::new(SecureMemConfig::secure_mem(), g))
}

fn run_with_telemetry(interval: u64) -> (SimReport, TelemetrySnapshot) {
    let mut sim = secure_sim();
    sim.set_telemetry(Telemetry::enabled(TelemetryConfig {
        sample_interval: interval,
        ..TelemetryConfig::default()
    }));
    let report = sim.run(CYCLES);
    let snap = sim.telemetry_snapshot().expect("telemetry enabled");
    (report, snap)
}

#[test]
fn metadata_bandwidth_series_reconcile_with_report() {
    let (report, snap) = run_with_telemetry(128);
    for (name, class) in [
        ("dram.data_bytes", TrafficClass::Data),
        ("dram.ctr_bytes", TrafficClass::Counter),
        ("dram.mac_bytes", TrafficClass::Mac),
        ("dram.bmt_bytes", TrafficClass::Tree),
    ] {
        let series = snap.series(name).unwrap_or_else(|| panic!("{name} sampled"));
        let c = report.dram.class(class);
        let aggregate = (c.bytes_read + c.bytes_written) as f64;
        assert!(
            (series.total() - aggregate).abs() < 1e-6,
            "{name}: sampled {} vs aggregate {aggregate}",
            series.total()
        );
        assert!(aggregate > 0.0, "{name}: secure run moves {class:?} traffic");
    }
}

#[test]
fn disabled_telemetry_changes_nothing() {
    let mut plain = secure_sim();
    let plain_report = plain.run(CYCLES);

    let mut disabled = secure_sim();
    disabled.set_telemetry(Telemetry::disabled());
    let disabled_report = disabled.run(CYCLES);

    let (enabled_report, _) = run_with_telemetry(64);

    assert_eq!(plain_report.cycles, disabled_report.cycles);
    assert_eq!(plain_report.warp_instructions, disabled_report.warp_instructions);
    assert_eq!(plain_report.dram, disabled_report.dram);

    // Observation must not perturb timing either.
    assert_eq!(plain_report.cycles, enabled_report.cycles);
    assert_eq!(plain_report.warp_instructions, enabled_report.warp_instructions);
    assert_eq!(plain_report.dram, enabled_report.dram);
}

#[test]
fn chrome_trace_is_valid_and_nonempty() {
    let (_, snap) = run_with_telemetry(128);
    let trace = chrome::chrome_trace(&snap);
    chrome::validate_json(&trace).expect("emitted trace parses as JSON");
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("dram.data_bytes"), "counter events present");
    assert!(trace.contains("\"ph\":\"C\""), "ph=C counter records present");
}

#[test]
fn report_carries_sparkline_summary_only_when_enabled() {
    let (report, _) = run_with_telemetry(128);
    let summary = report.telemetry_summary.expect("summary attached");
    assert!(summary.contains("dram.data_bytes"));

    let mut plain = secure_sim();
    let plain_report = plain.run(CYCLES);
    assert!(plain_report.telemetry_summary.is_none());
}
