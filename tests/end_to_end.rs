//! End-to-end integration tests: assert the paper's qualitative results
//! ("shape criteria" from DESIGN.md §4) hold on the scaled-down GPU.

use gpu_secure_memory::core::{MdcIdealization, SecureBackend, SecureMemConfig, SecurityScheme};
use gpu_secure_memory::gpusim::backend::PassthroughBackend;
use gpu_secure_memory::gpusim::config::GpuConfig;
use gpu_secure_memory::gpusim::sim::Simulator;
use gpu_secure_memory::gpusim::stats::SimReport;
use gpu_secure_memory::gpusim::types::TrafficClass;
use gpu_secure_memory::workloads::suite;

const CYCLES: u64 = 12_000;

fn baseline(bench: &str) -> SimReport {
    let kernel = suite::by_name(bench).expect("benchmark exists");
    let mut sim = Simulator::new(GpuConfig::small(), &kernel, |_, g| PassthroughBackend::from_config(g));
    sim.run(CYCLES)
}

fn secure(bench: &str, cfg: &SecureMemConfig) -> SimReport {
    let kernel = suite::by_name(bench).expect("benchmark exists");
    let mut sim = Simulator::new(GpuConfig::small(), &kernel, |_, g| SecureBackend::new(cfg.clone(), g));
    sim.run(CYCLES)
}

#[test]
fn secure_memory_slows_memory_intensive_workloads() {
    let base = baseline("fdtd2d");
    let sec = secure("fdtd2d", &SecureMemConfig::secure_mem());
    let norm = sec.ipc() / base.ipc();
    assert!(norm < 0.8, "counter-mode secure memory must cost a memory-bound workload dearly, got {norm:.3}");
}

#[test]
fn secure_memory_is_free_for_compute_bound_workloads() {
    let base = baseline("lavaMD");
    let sec = secure("lavaMD", &SecureMemConfig::secure_mem());
    let norm = sec.ipc() / base.ipc();
    assert!(norm > 0.95, "compute-bound workloads keep their IPC, got {norm:.3}");
}

#[test]
fn perfect_metadata_caches_recover_baseline() {
    let base = baseline("fdtd2d");
    let cfg = SecureMemConfig { idealization: MdcIdealization::Perfect, ..SecureMemConfig::secure_mem() };
    let sec = secure("fdtd2d", &cfg);
    let norm = sec.ipc() / base.ipc();
    assert!(norm > 0.9, "with perfect metadata caches the overhead must vanish (Fig. 3), got {norm:.3}");
}

#[test]
fn zero_crypto_latency_does_not_help() {
    let real = secure("fdtd2d", &SecureMemConfig::secure_mem());
    let cfg = SecureMemConfig { zero_crypto: true, ..SecureMemConfig::secure_mem() };
    let zero = secure("fdtd2d", &cfg);
    let ratio = zero.ipc() / real.ipc();
    assert!(
        (0.9..1.15).contains(&ratio),
        "the bottleneck is traffic, not crypto latency (Fig. 3): ratio {ratio:.3}"
    );
}

#[test]
fn direct_encryption_nearly_free_for_streaming() {
    let base = baseline("fdtd2d");
    let direct = secure("fdtd2d", &SecureMemConfig::direct(40));
    let norm = direct.ipc() / base.ipc();
    assert!(norm > 0.9, "direct encryption hides behind TLP (Fig. 15), got {norm:.3}");
}

#[test]
fn direct_beats_counter_mode_without_integrity() {
    let base = baseline("fdtd2d");
    let direct = secure("fdtd2d", &SecureMemConfig::direct(40)).ipc() / base.ipc();
    let ctr = secure("fdtd2d", &SecureMemConfig::with_scheme(SecurityScheme::CtrOnly)).ipc() / base.ipc();
    assert!(direct > ctr + 0.03, "Fig. 16: direct ({direct:.3}) must beat counter-mode ({ctr:.3})");
}

#[test]
fn direct_mac_beats_ctr_mac_bmt_at_equal_budget() {
    let base = baseline("fdtd2d");
    let ctr = secure("fdtd2d", &SecureMemConfig::secure_mem()).ipc() / base.ipc();
    let dmac_cfg = SecureMemConfig {
        scheme: SecurityScheme::DirectMac,
        mdcache_bytes_by_type: Some([0, 6 * 1024, 0]),
        ..SecureMemConfig::secure_mem()
    };
    let dmac = secure("fdtd2d", &dmac_cfg).ipc() / base.ipc();
    assert!(dmac > ctr, "Fig. 17: direct_mac ({dmac:.3}) must beat ctr_mac_bmt ({ctr:.3})");
}

#[test]
fn mshrs_rescue_metadata_caches() {
    let without = secure("srad_v2", &SecureMemConfig { mdcache_mshrs: 0, ..SecureMemConfig::secure_mem() });
    let with = secure("srad_v2", &SecureMemConfig::secure_mem());
    assert!(
        with.ipc() > 1.5 * without.ipc(),
        "Fig. 6: metadata-cache MSHRs must matter ({} vs {})",
        with.ipc(),
        without.ipc()
    );
}

#[test]
fn metadata_traffic_appears_only_under_secure_memory() {
    let base = baseline("streamcluster");
    assert_eq!(base.dram.class(TrafficClass::Counter).reads, 0);
    assert_eq!(base.dram.class(TrafficClass::Mac).reads, 0);
    let sec = secure("streamcluster", &SecureMemConfig::secure_mem());
    assert!(sec.dram.class(TrafficClass::Counter).reads > 0);
    assert!(sec.dram.class(TrafficClass::Mac).reads > 0);
    assert!(sec.dram.class(TrafficClass::Tree).reads > 0);
}

#[test]
fn direct_mode_has_no_counter_traffic() {
    let sec = secure("fdtd2d", &SecureMemConfig::direct(40));
    assert_eq!(sec.dram.class(TrafficClass::Counter).reads, 0);
    assert_eq!(sec.dram.class(TrafficClass::Tree).reads, 0);
}

#[test]
fn higher_direct_latency_costs_dependent_workloads() {
    let base = baseline("nw");
    let fast = secure("nw", &SecureMemConfig::direct(40)).ipc() / base.ipc();
    let slow = secure("nw", &SecureMemConfig::direct(160)).ipc() / base.ipc();
    assert!(
        slow < fast - 0.05,
        "Fig. 15: small kernels expose the AES latency (40c: {fast:.3}, 160c: {slow:.3})"
    );
}

#[test]
fn simulation_is_deterministic() {
    let a = secure("bfs", &SecureMemConfig::secure_mem());
    let b = secure("bfs", &SecureMemConfig::secure_mem());
    assert_eq!(a.thread_instructions, b.thread_instructions);
    assert_eq!(a.dram.total_requests(), b.dram.total_requests());
    assert_eq!(a.engine.meta[0].cache.misses, b.engine.meta[0].cache.misses);
}

#[test]
fn secondary_misses_dominate_for_streaming() {
    let sec = secure("fdtd2d", &SecureMemConfig::secure_mem());
    let ctr_ratio = sec.engine.class(TrafficClass::Counter).mshr.secondary_ratio();
    assert!(
        ctr_ratio > 0.5,
        "Fig. 5: sectored L2 must make most counter misses secondary, got {ctr_ratio:.3}"
    );
}

#[test]
fn all_fourteen_benchmarks_run_under_secure_memory() {
    for spec in gpu_secure_memory::workloads::suite::all_specs() {
        let report = secure(spec.name, &SecureMemConfig::secure_mem());
        assert!(report.thread_instructions > 0, "{} made no progress", spec.name);
    }
}
