//! Property-based tests for the memory-system building blocks.

use proptest::prelude::*;

use secmem_gpusim::cache::{Probe, SectoredCache};
use secmem_gpusim::config::{AddressMap, GpuConfig};
use secmem_gpusim::dram::{Dram, DramRequest};
use secmem_gpusim::mshr::{MshrFile, MshrOutcome};
use secmem_gpusim::reuse::ReuseProfiler;
use secmem_gpusim::types::{SectorMask, TrafficClass, FULL_SECTOR_MASK};

proptest! {
    /// A cache never reports more resident lines than its capacity, and a
    /// line just filled is always at least partially present.
    #[test]
    fn cache_capacity_and_fill_visibility(
            ops in prop::collection::vec((0u64..256, 1u8..16), 1..300)) {
        let mut cache = SectoredCache::new(2 * 1024, 4);
        for (line, mask) in ops {
            let addr = line * 128;
            let mask = SectorMask(mask & 0xF);
            cache.fill(addr, mask, SectorMask::EMPTY);
            prop_assert!(cache.occupancy() <= cache.capacity_lines());
            prop_assert_ne!(cache.peek(addr, mask), Probe::Miss, "freshly filled line vanished");
        }
    }

    /// Dirty data is never silently dropped: every dirty sector eventually
    /// leaves through an eviction or a flush.
    #[test]
    fn cache_conserves_dirty_sectors(
            writes in prop::collection::vec(0u64..64, 1..200)) {
        let mut cache = SectoredCache::new(1024, 2);
        let mut dirty_in = 0u64;
        let mut dirty_out = 0u64;
        for line in writes {
            let addr = line * 128;
            if let Some(ev) = cache.fill(addr, FULL_SECTOR_MASK, FULL_SECTOR_MASK) {
                dirty_out += ev.dirty.count() as u64;
            }
            dirty_in += 4;
        }
        for ev in cache.flush_dirty() {
            dirty_out += ev.dirty.count() as u64;
        }
        // Re-writing a resident line re-dirties the same sectors, so
        // conservation is an inequality: nothing leaves that never entered.
        prop_assert!(dirty_out <= dirty_in);
        // And after the flush nothing dirty remains.
        prop_assert!(cache.flush_dirty().is_empty());
    }

    /// The MSHR file: every allocated entry is completed exactly once and
    /// returns every merged waiter exactly once.
    #[test]
    fn mshr_waiters_conserved(accesses in prop::collection::vec(0u64..16, 1..200)) {
        let mut mshr: MshrFile<u32> = MshrFile::new(8, 1 << 20);
        let mut accepted = 0u64;
        for (i, line) in accesses.iter().enumerate() {
            match mshr.access(line * 128, FULL_SECTOR_MASK, i as u32) {
                MshrOutcome::Full => {}
                _ => accepted += 1,
            }
        }
        let mut returned = 0u64;
        for line in 0u64..16 {
            if let Some((_, waiters)) = mshr.complete(line * 128) {
                returned += waiters.len() as u64;
            }
        }
        prop_assert_eq!(returned, accepted);
        prop_assert!(mshr.is_empty());
    }

    /// DRAM conserves requests: everything pushed eventually completes,
    /// in bounded time, and moves the right number of bytes.
    #[test]
    fn dram_conserves_requests(sizes in prop::collection::vec(prop::sample::select(vec![32u64,64,96,128]), 1..64)) {
        let mut dram: Dram<usize> = Dram::new(24 * 1024, 100, 1024);
        let total_bytes: u64 = sizes.iter().sum();
        for (i, bytes) in sizes.iter().enumerate() {
            dram.try_push(DramRequest { bytes: *bytes, addr: i as u64 * 128, is_write: i % 3 == 0, class: TrafficClass::Data, token: i })
                .expect("queue large enough");
        }
        let mut seen = vec![false; sizes.len()];
        let mut now = 0;
        while !dram.is_idle() {
            dram.cycle(now);
            while let Some(done) = dram.pop_completed() {
                prop_assert!(!seen[done.token], "request completed twice");
                seen[done.token] = true;
            }
            now += 1;
            prop_assert!(now < 100_000, "dram wedged");
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert_eq!(dram.stats().total_bytes(), total_bytes);
    }

    /// Address map round-trips and never crosses partitions.
    #[test]
    fn address_map_roundtrip(addr in 0u64..(4u64 << 30)) {
        let cfg = GpuConfig::volta();
        let map = AddressMap::new(&cfg);
        let p = map.partition_of(addr);
        prop_assert!(p < cfg.num_partitions);
        let local = map.local_offset(addr);
        prop_assert_eq!(map.global_addr(p, local), addr);
        // Lines never straddle partitions.
        let line = addr & !127;
        prop_assert_eq!(map.partition_of(line), map.partition_of(line + 127));
    }

    /// Reuse histogram mass always equals the access count.
    #[test]
    fn reuse_mass_conservation(lines in prop::collection::vec(0u64..128, 1..400)) {
        let mut p = ReuseProfiler::new();
        for l in &lines {
            p.access(l * 128);
        }
        prop_assert_eq!(p.histogram().iter().sum::<u64>(), lines.len() as u64);
        prop_assert!(p.distinct_lines() <= 128);
    }
}
