//! Randomized invariant tests for the memory-system building blocks.
//!
//! Each test drives a component with many seeded-random input vectors
//! (via the crate's deterministic [`Rng64`]) and checks conservation /
//! capacity invariants, replacing the previous `proptest` suites with
//! fully offline, reproducible equivalents.

use secmem_gpusim::cache::{Probe, SectoredCache};
use secmem_gpusim::config::{AddressMap, GpuConfig};
use secmem_gpusim::dram::{Dram, DramRequest};
use secmem_gpusim::mshr::{MshrFile, MshrOutcome};
use secmem_gpusim::reuse::ReuseProfiler;
use secmem_gpusim::rng::Rng64;
use secmem_gpusim::types::{SectorMask, TrafficClass, FULL_SECTOR_MASK};

const CASES: u64 = 48;

/// A cache never reports more resident lines than its capacity, and a
/// line just filled is always at least partially present.
#[test]
fn cache_capacity_and_fill_visibility() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x1000 + case);
        let mut cache = SectoredCache::new(2 * 1024, 4);
        let ops = 1 + rng.gen_range(300) as usize;
        for _ in 0..ops {
            let addr = rng.gen_range(256) * 128;
            let mask = SectorMask((1 + rng.gen_range(15)) as u8 & 0xF);
            cache.fill(addr, mask, SectorMask::EMPTY);
            assert!(cache.occupancy() <= cache.capacity_lines());
            assert_ne!(cache.peek(addr, mask), Probe::Miss, "freshly filled line vanished");
        }
    }
}

/// Dirty data is never silently dropped: every dirty sector eventually
/// leaves through an eviction or a flush.
#[test]
fn cache_conserves_dirty_sectors() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x2000 + case);
        let mut cache = SectoredCache::new(1024, 2);
        let mut dirty_in = 0u64;
        let mut dirty_out = 0u64;
        let writes = 1 + rng.gen_range(200);
        for _ in 0..writes {
            let addr = rng.gen_range(64) * 128;
            if let Some(ev) = cache.fill(addr, FULL_SECTOR_MASK, FULL_SECTOR_MASK) {
                dirty_out += ev.dirty.count() as u64;
            }
            dirty_in += 4;
        }
        for ev in cache.flush_dirty() {
            dirty_out += ev.dirty.count() as u64;
        }
        // Re-writing a resident line re-dirties the same sectors, so
        // conservation is an inequality: nothing leaves that never entered.
        assert!(dirty_out <= dirty_in);
        // And after the flush nothing dirty remains.
        assert!(cache.flush_dirty().is_empty());
    }
}

/// The MSHR file: every allocated entry is completed exactly once and
/// returns every merged waiter exactly once.
#[test]
fn mshr_waiters_conserved() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x3000 + case);
        let mut mshr: MshrFile<u32> = MshrFile::new(8, 1 << 20);
        let mut accepted = 0u64;
        let accesses = 1 + rng.gen_range(200);
        for i in 0..accesses {
            let line = rng.gen_range(16);
            match mshr.access(line * 128, FULL_SECTOR_MASK, i as u32) {
                MshrOutcome::Full(_) => {}
                _ => accepted += 1,
            }
        }
        let mut returned = 0u64;
        for line in 0u64..16 {
            if let Some((_, waiters)) = mshr.complete(line * 128) {
                returned += waiters.len() as u64;
            }
        }
        assert_eq!(returned, accepted);
        assert!(mshr.is_empty());
    }
}

/// DRAM conserves requests: everything pushed eventually completes,
/// in bounded time, and moves the right number of bytes.
#[test]
fn dram_conserves_requests() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x4000 + case);
        let mut dram: Dram<usize> = Dram::new(24 * 1024, 100, 1024);
        let n = 1 + rng.gen_range(64) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| 32 * (1 + rng.gen_range(4))).collect();
        let total_bytes: u64 = sizes.iter().sum();
        for (i, bytes) in sizes.iter().enumerate() {
            dram.try_push(DramRequest {
                bytes: *bytes,
                addr: i as u64 * 128,
                is_write: i % 3 == 0,
                class: TrafficClass::Data,
                token: i,
            })
            .expect("queue large enough");
        }
        let mut seen = vec![false; sizes.len()];
        let mut now = 0;
        while !dram.is_idle() {
            dram.cycle(now);
            while let Some(done) = dram.pop_completed() {
                assert!(!seen[done.token], "request completed twice");
                seen[done.token] = true;
            }
            now += 1;
            assert!(now < 100_000, "dram wedged");
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(dram.stats().total_bytes(), total_bytes);
    }
}

/// Address map round-trips and never crosses partitions.
#[test]
fn address_map_roundtrip() {
    let cfg = GpuConfig::volta();
    let map = AddressMap::new(&cfg);
    let mut rng = Rng64::new(0x5000);
    for _ in 0..4096 {
        let addr = rng.gen_range(4u64 << 30);
        let p = map.partition_of(addr);
        assert!(p < cfg.num_partitions);
        let local = map.local_offset(addr);
        assert_eq!(map.global_addr(p, local), addr);
        // Lines never straddle partitions.
        let line = addr & !127;
        assert_eq!(map.partition_of(line), map.partition_of(line + 127));
    }
}

/// Reuse histogram mass always equals the access count.
#[test]
fn reuse_mass_conservation() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x6000 + case);
        let mut p = ReuseProfiler::new();
        let n = 1 + rng.gen_range(400);
        for _ in 0..n {
            p.access(rng.gen_range(128) * 128);
        }
        assert_eq!(p.histogram().iter().sum::<u64>(), n);
        assert!(p.distinct_lines() <= 128);
    }
}
