//! Structural invariants of the sectored cache under randomized access
//! streams (ISSUE 3 satellite).
//!
//! Driven by the internal deterministic [`Rng64`] so failures reproduce
//! exactly. Checked for both replacement policies:
//!
//! - `fills >= evictions`: every eviction is caused by a fill that
//!   allocates a new line, so the fill counter bounds the evictions.
//! - `dirty_evictions <= evictions`: dirty evictions are a subset of all
//!   evictions.
//! - `occupancy <= capacity_lines` throughout.

use secmem_gpusim::cache::{Probe, ReplacementPolicy, SectoredCache, WriteOutcome};
use secmem_gpusim::rng::Rng64;
use secmem_gpusim::types::{SectorMask, LINE_SIZE};

/// One randomized operation against the cache, mirroring what the L1/L2
/// pipelines do: probe, write (write-validate on miss), and plain fill.
fn random_op(c: &mut SectoredCache, rng: &mut Rng64, lines: u64) {
    let line_addr = rng.gen_range(lines) * LINE_SIZE;
    let sectors = SectorMask((rng.gen_range(15) + 1) as u8);
    match rng.gen_range(3) {
        0 => {
            // Read probe; a miss becomes a fill, as the miss path does.
            match c.probe(line_addr, sectors) {
                Probe::Hit => {}
                Probe::PartialMiss(missing) => {
                    c.fill(line_addr, missing, SectorMask::EMPTY);
                }
                Probe::Miss => {
                    c.fill(line_addr, sectors, SectorMask::EMPTY);
                }
            }
        }
        1 => {
            // Store; a miss write-validates (fill with dirty sectors).
            if c.write(line_addr, sectors) == WriteOutcome::Miss {
                c.fill(line_addr, sectors, sectors);
            }
        }
        _ => {
            // Direct fill (a response arriving from the level below).
            c.fill(line_addr, sectors, SectorMask::EMPTY);
        }
    }
}

fn check_invariants(policy: ReplacementPolicy, seed: u64) {
    // Small cache (16 lines) and a footprint 8x its capacity so eviction
    // pressure is constant.
    let mut c = SectoredCache::with_policy(16 * LINE_SIZE, 4, policy);
    let mut rng = Rng64::new(seed);
    for step in 0..20_000u64 {
        random_op(&mut c, &mut rng, 128);
        let s = c.stats();
        assert!(
            s.fills >= s.evictions,
            "step {step} ({policy:?}): fills {} < evictions {}",
            s.fills,
            s.evictions
        );
        assert!(
            s.dirty_evictions <= s.evictions,
            "step {step} ({policy:?}): dirty_evictions {} > evictions {}",
            s.dirty_evictions,
            s.evictions
        );
        assert!(c.occupancy() <= c.capacity_lines());
    }
    let s = c.stats();
    assert!(s.fills > 0 && s.evictions > 0, "stream must exercise the eviction path ({policy:?}): {s:?}");
}

#[test]
fn lru_invariants_under_random_stream() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        check_invariants(ReplacementPolicy::Lru, seed);
    }
}

#[test]
fn srrip_invariants_under_random_stream() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        check_invariants(ReplacementPolicy::Srrip, seed);
    }
}

#[test]
fn fills_counter_counts_allocations_and_merges() {
    let mut c = SectoredCache::new(4 * LINE_SIZE, 2);
    assert_eq!(c.stats().fills, 0);
    c.fill(0, SectorMask::single(0), SectorMask::EMPTY);
    c.fill(0, SectorMask::single(1), SectorMask::EMPTY); // merge into resident line
    assert_eq!(c.stats().fills, 2);
    assert_eq!(c.stats().evictions, 0);
    c.reset_stats();
    assert_eq!(c.stats().fills, 0);
}
