//! A fast, deterministic hasher for simulator-internal maps keyed by
//! small integers (line addresses, transaction ids).
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! lookup, which shows up in the hot transaction-tracking maps of the
//! secure-memory engine. Simulator state is never keyed by untrusted
//! input, so the Fx-style multiply hash (as used by rustc) is safe here
//! and keeps iteration order deterministic for a given insertion order —
//! unlike `RandomState`, it has no per-process seed, which also removes a
//! source of run-to-run variation for anything that iterates a map.

// lint:allow-file(D2): this module IS the deterministic wrapper the rest of
// the workspace is required to use; it must name std's map types to alias them.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x517c_c1b7_2722_0a95;

/// Fx-style multiply hasher. Not DoS-resistant; use only for internal
/// keys (integers, small tuples of integers).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for c in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..c.len()].copy_from_slice(c);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed through [`FxHasher`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastHashMap<u64, u32> = FastHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 128, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 128)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hash_is_deterministic() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FxHasher> = Default::default();
        let h1 = b.hash_one(0xdead_beefu64);
        let h2 = b.hash_one(0xdead_beefu64);
        assert_eq!(h1, h2);
        assert_ne!(b.hash_one(1u64), b.hash_one(2u64));
    }

    #[test]
    fn byte_writes_cover_tail() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }
}
