//! Simulation statistics: per-metadata-type cache statistics and the
//! end-of-run report consumed by the experiment harness.

use crate::cache::CacheStats;
use crate::dram::DramStats;
use crate::error::StallReport;
use crate::fault::FaultStats;
use crate::mshr::MshrStats;
use crate::types::{Cycle, TrafficClass};

/// Statistics for one metadata type (counter, MAC, or tree) in the secure
/// memory engine's metadata caches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetadataTypeStats {
    /// Cache accesses / hits / misses / evictions.
    pub cache: CacheStats,
    /// Primary/secondary miss and stall counts.
    pub mshr: MshrStats,
    /// Writebacks of dirty metadata lines to DRAM.
    pub writebacks: u64,
}

/// Statistics exported by a secure memory engine (one per partition).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Per metadata type: `[counter, mac, tree]`.
    pub meta: [MetadataTypeStats; 3],
    /// Cycles an AES engine request had to wait for a free slot.
    pub aes_stall_cycles: u64,
    /// 16 B blocks processed by the AES engines.
    pub aes_blocks: u64,
    /// Data sectors whose decryption waited for a counter fetch.
    pub decrypt_waited_on_counter: u64,
    /// Integrity-tree node verifications performed.
    pub tree_verifications: u64,
}

/// Index into [`EngineStats::meta`] for a metadata traffic class.
/// [`TrafficClass::Data`] is not a metadata class: debug builds assert,
/// release builds count it into the counter slot rather than unwinding
/// mid-cycle (the hot path must not panic — DESIGN.md §16).
pub fn meta_index(class: TrafficClass) -> usize {
    debug_assert!(class != TrafficClass::Data, "data is not a metadata class");
    match class {
        TrafficClass::Mac => 1,
        TrafficClass::Tree => 2,
        _ => 0,
    }
}

impl EngineStats {
    /// Merges another engine's statistics into this one.
    pub fn merge(&mut self, other: &EngineStats) {
        for i in 0..3 {
            let a = &mut self.meta[i];
            let b = &other.meta[i];
            a.cache.hits += b.cache.hits;
            a.cache.misses += b.cache.misses;
            a.cache.fills += b.cache.fills;
            a.cache.evictions += b.cache.evictions;
            a.cache.dirty_evictions += b.cache.dirty_evictions;
            a.mshr.primary += b.mshr.primary;
            a.mshr.secondary += b.mshr.secondary;
            a.mshr.stalls += b.mshr.stalls;
            a.writebacks += b.writebacks;
        }
        self.aes_stall_cycles += other.aes_stall_cycles;
        self.aes_blocks += other.aes_blocks;
        self.decrypt_waited_on_counter += other.decrypt_waited_on_counter;
        self.tree_verifications += other.tree_verifications;
    }

    /// Stats for one metadata class.
    pub fn class(&self, class: TrafficClass) -> &MetadataTypeStats {
        &self.meta[meta_index(class)]
    }
}

/// End-of-run report for one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimReport {
    /// Simulated cycles.
    pub cycles: Cycle,
    /// Warp instructions issued.
    pub warp_instructions: u64,
    /// Thread instructions issued (warp instructions × warp width).
    pub thread_instructions: u64,
    /// Aggregated DRAM statistics over all partitions.
    pub dram: DramStats,
    /// Aggregated L2 statistics over all banks.
    pub l2: CacheStats,
    /// Aggregated L2 MSHR statistics.
    pub l2_mshr: MshrStats,
    /// Aggregated L1 statistics over all SMs.
    pub l1: CacheStats,
    /// Aggregated secure-engine statistics (all zero for the baseline).
    pub engine: EngineStats,
    /// Cycles during which at least one warp was blocked on memory in
    /// every schedulable slot (rough "memory stall" indicator).
    pub mem_stall_cycles: u64,
    /// Number of warps that ran.
    pub warps: u64,
    /// Aggregated fault-injection statistics (all zero when no
    /// [`FaultPlan`](crate::fault::FaultPlan) was installed).
    pub faults: FaultStats,
    /// Present when the forward-progress watchdog stopped the run; the
    /// `cycles` and statistics fields then cover the truncated window.
    pub stall: Option<StallReport>,
    /// True when the kernel finished before the requested warmup window
    /// elapsed, so the post-warmup measurement window was empty and the
    /// statistics in this report are not meaningful (see
    /// [`Simulator::run_with_warmup`](crate::sim::Simulator::run_with_warmup)).
    pub warmup_truncated: bool,
    /// Rendered sparkline summary of the run's telemetry (present only
    /// when a telemetry sink was attached and recorded samples).
    pub telemetry_summary: Option<String>,
}

impl SimReport {
    /// Thread-level IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.thread_instructions as f64 / self.cycles as f64
        }
    }

    /// DRAM bandwidth utilization (0..=1): bytes actually moved relative
    /// to the nameplate peak, the way the paper's Table IV reports it.
    /// Saturated workloads top out near the DRAM efficiency factor.
    pub fn bandwidth_utilization(&self, cfg: &crate::config::GpuConfig) -> f64 {
        let denom = self.cycles as f64 * cfg.dram_peak_total_bytes_per_cycle();
        if denom == 0.0 {
            // Zero-cycle run, or a degenerate config with no DRAM
            // bandwidth: report 0 rather than NaN/inf.
            0.0
        } else {
            self.dram.total_bytes() as f64 / denom
        }
    }

    /// Fraction of DRAM requests belonging to `class` reads.
    pub fn read_fraction(&self, class: TrafficClass) -> f64 {
        let total = self.dram.total_requests();
        if total == 0 {
            0.0
        } else {
            self.dram.class(class).reads as f64 / total as f64
        }
    }

    /// Fraction of DRAM requests that are metadata writebacks (the paper's
    /// "wb" category: all writes from the metadata caches).
    pub fn metadata_writeback_fraction(&self) -> f64 {
        let total = self.dram.total_requests();
        if total == 0 {
            return 0.0;
        }
        let wb: u64 = [TrafficClass::Counter, TrafficClass::Mac, TrafficClass::Tree]
            .iter()
            .map(|&c| self.dram.class(c).writes)
            .sum();
        wb as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_computation() {
        let report = SimReport { cycles: 1000, thread_instructions: 512_000, ..SimReport::default() };
        assert!((report.ipc() - 512.0).abs() < 1e-9);
        assert_eq!(SimReport::default().ipc(), 0.0);
    }

    #[test]
    fn zero_cycle_report_fractions_are_finite() {
        let report = SimReport::default();
        let cfg = crate::config::GpuConfig::small();
        assert_eq!(report.ipc(), 0.0);
        assert_eq!(report.bandwidth_utilization(&cfg), 0.0);
        assert_eq!(report.read_fraction(TrafficClass::Data), 0.0);
        assert_eq!(report.metadata_writeback_fraction(), 0.0);
        // Degenerate config: some DRAM traffic recorded but zero peak
        // bandwidth must not divide to infinity.
        let mut nobw = cfg.clone();
        nobw.dram_total_gbps = 0;
        let mut r = SimReport { cycles: 100, ..SimReport::default() };
        r.dram.per_class[0].bytes_read = 4096;
        assert!(r.bandwidth_utilization(&nobw).is_finite());
    }

    #[test]
    fn meta_index_mapping() {
        assert_eq!(meta_index(TrafficClass::Counter), 0);
        assert_eq!(meta_index(TrafficClass::Mac), 1);
        assert_eq!(meta_index(TrafficClass::Tree), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not a metadata class")]
    fn meta_index_rejects_data_in_debug() {
        meta_index(TrafficClass::Data);
    }

    #[test]
    fn engine_stats_merge() {
        let mut a = EngineStats::default();
        let mut b = EngineStats::default();
        b.meta[0].writebacks = 3;
        b.aes_blocks = 7;
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.meta[0].writebacks, 6);
        assert_eq!(a.aes_blocks, 14);
    }
}
