//! Reuse-distance profiling (Figs. 10 and 11 of the paper).
//!
//! The reuse distance of an access is the number of *distinct* lines
//! referenced since the previous access to the same line (LRU stack
//! distance). The paper profiles the counter and MAC access streams of
//! partition 0 for `fdtd2d` and buckets distances as
//! `[0] [1,2] [3,4] [5,8] … [257,512] [513,+inf)` plus cold accesses.

use secmem_checkpoint::{CheckpointError, Reader, Snapshot, Writer};

use crate::types::Addr;

/// Upper bounds of the histogram buckets (inclusive).
pub const BUCKET_BOUNDS: [u64; 10] = [0, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// Number of buckets including `[513,+inf)` and the cold bucket.
pub const NUM_BUCKETS: usize = BUCKET_BOUNDS.len() + 2;

/// Labels matching the paper's x-axis.
pub fn bucket_labels() -> Vec<String> {
    let mut labels = vec!["[0]".to_string()];
    let mut lo = 1;
    for &hi in &BUCKET_BOUNDS[1..] {
        labels.push(format!("[{lo},{hi}]"));
        lo = hi + 1;
    }
    labels.push("[513,inf)".to_string());
    labels.push("cold".to_string());
    labels
}

/// An LRU-stack reuse distance profiler.
///
/// # Example
///
/// ```
/// use secmem_gpusim::reuse::ReuseProfiler;
///
/// let mut p = ReuseProfiler::new();
/// p.access(0x0);
/// p.access(0x80);
/// p.access(0x0); // one distinct line (0x80) in between -> distance 1
/// let h = p.histogram();
/// assert_eq!(h[11], 2); // two cold accesses
/// assert_eq!(h[1], 1);  // one access in bucket [1,2]
/// ```
#[derive(Debug, Default)]
pub struct ReuseProfiler {
    stack: Vec<Addr>,
    histogram: [u64; NUM_BUCKETS],
    accesses: u64,
}

impl ReuseProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to `line_addr` (any alignment; callers pass line
    /// base addresses).
    pub fn access(&mut self, line_addr: Addr) {
        self.accesses += 1;
        // Find position from the top of the stack (most recent = end).
        if let Some(pos) = self.stack.iter().rposition(|&a| a == line_addr) {
            let distance = (self.stack.len() - 1 - pos) as u64;
            self.bump(distance);
            self.stack.remove(pos);
            self.stack.push(line_addr);
        } else {
            self.histogram[NUM_BUCKETS - 1] += 1; // cold
            self.stack.push(line_addr);
        }
    }

    fn bump(&mut self, distance: u64) {
        for (i, &hi) in BUCKET_BOUNDS.iter().enumerate() {
            if distance <= hi {
                self.histogram[i] += 1;
                return;
            }
        }
        self.histogram[NUM_BUCKETS - 2] += 1; // [513, inf)
    }

    /// The histogram; index `i` matches [`bucket_labels`]`()[i]`.
    pub fn histogram(&self) -> [u64; NUM_BUCKETS] {
        self.histogram
    }

    /// Total recorded accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of distinct lines seen.
    pub fn distinct_lines(&self) -> usize {
        self.stack.len()
    }

    /// Serializes the profiler (LRU stack order, histogram, access count)
    /// into a checkpoint payload.
    pub fn save_state(&self, w: &mut Writer) {
        self.stack.save(w);
        self.histogram.save(w);
        w.put_u64(self.accesses);
    }

    /// Restores state saved by [`ReuseProfiler::save_state`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] when the payload is truncated or malformed.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.stack = Vec::load(r)?;
        self.histogram = <[u64; NUM_BUCKETS]>::load(r)?;
        self.accesses = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_repeat() {
        let mut p = ReuseProfiler::new();
        p.access(0x0);
        p.access(0x0);
        p.access(0x0);
        let h = p.histogram();
        assert_eq!(h[0], 2, "two accesses at distance 0");
        assert_eq!(h[NUM_BUCKETS - 1], 1, "one cold access");
    }

    #[test]
    fn streaming_is_all_cold() {
        let mut p = ReuseProfiler::new();
        for i in 0..100 {
            p.access(i * 128);
        }
        assert_eq!(p.histogram()[NUM_BUCKETS - 1], 100);
        assert_eq!(p.distinct_lines(), 100);
    }

    #[test]
    fn distance_counts_distinct_lines() {
        let mut p = ReuseProfiler::new();
        p.access(0x0);
        p.access(0x80);
        p.access(0x80); // distance 0
        p.access(0x0); // distance 1 (only 0x80 between)
        let h = p.histogram();
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 1);
    }

    #[test]
    fn large_distances_fall_in_tail_bucket() {
        let mut p = ReuseProfiler::new();
        p.access(0xDEAD_0000);
        for i in 0..600u64 {
            p.access(i * 128);
        }
        p.access(0xDEAD_0000); // distance 600 -> [513, inf)
        assert_eq!(p.histogram()[NUM_BUCKETS - 2], 1);
    }

    #[test]
    fn histogram_mass_equals_accesses() {
        let mut p = ReuseProfiler::new();
        for i in 0..50u64 {
            p.access((i % 7) * 128);
        }
        let total: u64 = p.histogram().iter().sum();
        assert_eq!(total, p.accesses());
        assert_eq!(total, 50);
    }

    #[test]
    fn labels_match_bucket_count() {
        assert_eq!(bucket_labels().len(), NUM_BUCKETS);
        assert_eq!(bucket_labels()[0], "[0]");
        assert_eq!(bucket_labels()[1], "[1,2]");
        assert_eq!(bucket_labels()[10], "[513,inf)");
    }
}
