//! Narrowing integer conversions with documented, debug-checked
//! invariants.
//!
//! The address paths (partition/bank selection, sector indexing,
//! coalescing) narrow `u64`/`usize` values into `u32` lane and index
//! fields. A bare `as` cast silently truncates when the invariant that
//! makes the narrowing safe is violated by a future refactor; these
//! helpers keep the cast in one audited place, check the range in debug
//! builds, and force each call site to state *why* the value fits. The
//! C1 lint (`narrowing-cast`) steers hot-file code here.

/// Narrows a `u64` known to fit in `u32`.
///
/// `invariant` states why the value fits (e.g. "reduced mod banks"); it
/// is part of the debug-assert message so a violated invariant names
/// itself in the panic.
#[inline]
#[track_caller]
pub fn u64_to_u32(v: u64, invariant: &'static str) -> u32 {
    debug_assert!(v <= u64::from(u32::MAX), "u64->u32 narrowing invariant violated ({invariant}): {v}");
    v as u32 // lint:allow(C1): range debug-checked above with a documented invariant
}

/// Narrows a `usize` known to fit in `u32`.
#[inline]
#[track_caller]
pub fn usize_to_u32(v: usize, invariant: &'static str) -> u32 {
    debug_assert!(
        u64::try_from(v).is_ok_and(|v| v <= u64::from(u32::MAX)),
        "usize->u32 narrowing invariant violated ({invariant}): {v}"
    );
    v as u32 // lint:allow(C1): range debug-checked above with a documented invariant
}

/// Narrows a `u64` known to fit in `u8`.
#[inline]
#[track_caller]
pub fn u64_to_u8(v: u64, invariant: &'static str) -> u8 {
    debug_assert!(v <= u64::from(u8::MAX), "u64->u8 narrowing invariant violated ({invariant}): {v}");
    v as u8 // lint:allow(C1): range debug-checked above with a documented invariant
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass_through() {
        assert_eq!(u64_to_u32(0, "zero"), 0);
        assert_eq!(u64_to_u32(u64::from(u32::MAX), "max"), u32::MAX);
        assert_eq!(usize_to_u32(41, "small"), 41);
        assert_eq!(u64_to_u8(255, "max"), 255);
    }

    #[test]
    #[should_panic(expected = "narrowing invariant violated")]
    #[cfg(debug_assertions)]
    fn out_of_range_trips_debug_assert() {
        let _ = u64_to_u32(u64::from(u32::MAX) + 1, "test overflow");
    }
}
