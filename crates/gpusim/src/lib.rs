//! A cycle-driven GPU memory-system timing simulator (Volta-class).
//!
//! This crate is the substrate the ISPASS'21 paper *"Analyzing Secure
//! Memory Architecture for GPUs"* built on GPGPU-Sim v4.0: a GPU model
//! with streaming multiprocessors, sectored caches, MSHRs, an
//! interconnect, and bandwidth-limited DRAM channels. It focuses on the
//! memory system — the part all of the paper's conclusions depend on —
//! and exposes a [`backend::MemoryBackend`] hook in each memory partition
//! where `secmem-core` installs the secure memory engine.
//!
//! # Architecture
//!
//! ```text
//! SMs (warps, GTO scheduler, sectored write-through L1 + MSHRs)
//!   │  coalesced 32 B sector requests
//!   ▼
//! Interconnect (latency + per-cycle rate, bounded request queues)
//!   │
//!   ▼
//! 32 × MemPartition: 2 × 96 KB sectored L2 banks + MSHRs
//!   │  misses / dirty evictions
//!   ▼
//! MemoryBackend (baseline: bare DRAM; secure: engine + metadata caches)
//!   │
//!   ▼
//! DRAM channel (868 GB/s aggregate, finite queues -> backpressure)
//! ```
//!
//! # Example
//!
//! ```
//! use secmem_gpusim::backend::PassthroughBackend;
//! use secmem_gpusim::config::GpuConfig;
//! use secmem_gpusim::kernel::StreamKernel;
//! use secmem_gpusim::sim::Simulator;
//!
//! let cfg = GpuConfig::small();
//! let kernel = StreamKernel::memory_bound(8);
//! let mut sim = Simulator::new(cfg, &kernel, |_, c| PassthroughBackend::from_config(c));
//! let report = sim.run(5_000);
//! assert!(report.ipc() > 0.0);
//! ```

// `deny`, not `forbid`: the worker pool in `par` is the one module
// allowed to use `unsafe` (a scoped, generation-stamped task slot for
// borrowed closures). Everything else still errors on `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod coalesce;
pub mod config;
pub mod dram;
pub mod error;
pub mod fault;
pub mod hash;
pub mod icnt;
pub mod kernel;
pub mod mshr;
pub mod narrow;
pub mod par;
pub mod partition;
pub mod reuse;
pub mod rng;
pub mod sim;
pub mod sm;
pub mod snapshot;
pub mod stats;
pub mod trace;
pub mod trace_bin;
pub mod types;

pub use backend::{MemoryBackend, PassthroughBackend};
pub use config::{AddressMap, GpuConfig};
pub use kernel::{Kernel, WarpProgram};
pub use sim::Simulator;
pub use stats::SimReport;
