//! [`Snapshot`] codecs for the simulator's plain value types.
//!
//! Structural components (caches, MSHR files, DRAM, SMs, partitions)
//! restore **in place** through their own `save_state`/`restore_state`
//! methods so geometry can be validated against the rebuilt structure;
//! this module only covers the value types that flow between them:
//! requests, instructions, masks and statistics blocks.
//!
//! Every enum is encoded as an explicit `u8` discriminant (never a cast
//! of the Rust layout) and every decode validates the discriminant, so a
//! corrupted payload yields a typed [`CheckpointError`] instead of a
//! nonsense value.

use secmem_checkpoint::{CheckpointError, Reader, Snapshot, Writer};

use crate::cache::CacheStats;
use crate::dram::{DramClassStats, DramStats};
use crate::fault::{FaultClassStats, FaultEvent, FaultKind, FaultStats};
use crate::mshr::MshrStats;
use crate::types::{
    Access, AccessKind, BackendReq, Inst, MemRequest, SectorMask, TrafficClass, WarpRef, LINE_SIZE,
};

impl Snapshot for SectorMask {
    fn save(&self, w: &mut Writer) {
        w.put_u8(self.0);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let bits = r.get_u8()?;
        if bits > 0xF {
            return Err(CheckpointError::Malformed(format!("sector mask bits {bits:#04x}")));
        }
        Ok(SectorMask(bits))
    }
}

impl Snapshot for TrafficClass {
    fn save(&self, w: &mut Writer) {
        w.put_u8(self.index() as u8);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(TrafficClass::Data),
            1 => Ok(TrafficClass::Counter),
            2 => Ok(TrafficClass::Mac),
            3 => Ok(TrafficClass::Tree),
            other => Err(CheckpointError::Malformed(format!("traffic class {other}"))),
        }
    }
}

impl Snapshot for AccessKind {
    fn save(&self, w: &mut Writer) {
        w.put_u8(match self {
            AccessKind::Load => 0,
            AccessKind::Store => 1,
        });
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(AccessKind::Load),
            1 => Ok(AccessKind::Store),
            other => Err(CheckpointError::Malformed(format!("access kind {other}"))),
        }
    }
}

impl Snapshot for Access {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.line_addr);
        self.sectors.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        let line_addr = r.get_u64()?;
        if line_addr % LINE_SIZE != 0 {
            return Err(CheckpointError::Malformed(format!("unaligned line address {line_addr:#x}")));
        }
        let sectors = SectorMask::load(r)?;
        Ok(Access { line_addr, sectors })
    }
}

impl Snapshot for Inst {
    fn save(&self, w: &mut Writer) {
        match self {
            Inst::Alu { stall, wait_mem } => {
                w.put_u8(0);
                w.put_u32(*stall);
                w.put_bool(*wait_mem);
            }
            Inst::Load { accesses, dependent } => {
                w.put_u8(1);
                accesses.save(w);
                w.put_bool(*dependent);
            }
            Inst::Store { accesses } => {
                w.put_u8(2);
                accesses.save(w);
            }
            Inst::Exit => w.put_u8(3),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(Inst::Alu { stall: r.get_u32()?, wait_mem: r.get_bool()? }),
            1 => Ok(Inst::Load { accesses: Vec::load(r)?, dependent: r.get_bool()? }),
            2 => Ok(Inst::Store { accesses: Vec::load(r)? }),
            3 => Ok(Inst::Exit),
            other => Err(CheckpointError::Malformed(format!("instruction discriminant {other}"))),
        }
    }
}

impl Snapshot for WarpRef {
    fn save(&self, w: &mut Writer) {
        w.put_u32(self.sm);
        w.put_u32(self.warp);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(WarpRef { sm: r.get_u32()?, warp: r.get_u32()? })
    }
}

impl Snapshot for MemRequest {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.id);
        w.put_u64(self.line_addr);
        self.sectors.save(w);
        self.kind.save(w);
        self.warp.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(MemRequest {
            id: r.get_u64()?,
            line_addr: r.get_u64()?,
            sectors: SectorMask::load(r)?,
            kind: AccessKind::load(r)?,
            warp: Option::load(r)?,
        })
    }
}

impl Snapshot for BackendReq {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.id);
        w.put_u64(self.line_addr);
        self.sectors.save(w);
        w.put_u32(self.bank);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(BackendReq {
            id: r.get_u64()?,
            line_addr: r.get_u64()?,
            sectors: SectorMask::load(r)?,
            bank: r.get_u32()?,
        })
    }
}

impl Snapshot for CacheStats {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.fills);
        w.put_u64(self.dirty_evictions);
        w.put_u64(self.evictions);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(CacheStats {
            hits: r.get_u64()?,
            misses: r.get_u64()?,
            fills: r.get_u64()?,
            dirty_evictions: r.get_u64()?,
            evictions: r.get_u64()?,
        })
    }
}

impl Snapshot for MshrStats {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.primary);
        w.put_u64(self.secondary);
        w.put_u64(self.stalls);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(MshrStats { primary: r.get_u64()?, secondary: r.get_u64()?, stalls: r.get_u64()? })
    }
}

impl Snapshot for crate::stats::MetadataTypeStats {
    fn save(&self, w: &mut Writer) {
        self.cache.save(w);
        self.mshr.save(w);
        w.put_u64(self.writebacks);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(crate::stats::MetadataTypeStats {
            cache: CacheStats::load(r)?,
            mshr: MshrStats::load(r)?,
            writebacks: r.get_u64()?,
        })
    }
}

impl Snapshot for DramClassStats {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.reads);
        w.put_u64(self.writes);
        w.put_u64(self.bytes_read);
        w.put_u64(self.bytes_written);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(DramClassStats {
            reads: r.get_u64()?,
            writes: r.get_u64()?,
            bytes_read: r.get_u64()?,
            bytes_written: r.get_u64()?,
        })
    }
}

impl Snapshot for DramStats {
    fn save(&self, w: &mut Writer) {
        self.per_class.save(w);
        w.put_u64(self.busy_fp);
        w.put_u64(self.rejected);
        w.put_u64(self.row_hits);
        w.put_u64(self.row_misses);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(DramStats {
            per_class: <[DramClassStats; 4]>::load(r)?,
            busy_fp: r.get_u64()?,
            rejected: r.get_u64()?,
            row_hits: r.get_u64()?,
            row_misses: r.get_u64()?,
        })
    }
}

impl Snapshot for FaultKind {
    fn save(&self, w: &mut Writer) {
        match self {
            FaultKind::BitFlip => w.put_u8(0),
            FaultKind::Drop => w.put_u8(1),
            FaultKind::Delay(cycles) => {
                w.put_u8(2);
                w.put_u32(*cycles);
            }
            FaultKind::MetaCorrupt => w.put_u8(3),
            FaultKind::Replay => w.put_u8(4),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(FaultKind::BitFlip),
            1 => Ok(FaultKind::Drop),
            2 => Ok(FaultKind::Delay(r.get_u32()?)),
            3 => Ok(FaultKind::MetaCorrupt),
            4 => Ok(FaultKind::Replay),
            other => Err(CheckpointError::Malformed(format!("fault kind {other}"))),
        }
    }
}

impl Snapshot for FaultClassStats {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.injected);
        w.put_u64(self.dropped);
        w.put_u64(self.delayed);
        w.put_u64(self.detected);
        w.put_u64(self.undetected);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(FaultClassStats {
            injected: r.get_u64()?,
            dropped: r.get_u64()?,
            delayed: r.get_u64()?,
            detected: r.get_u64()?,
            undetected: r.get_u64()?,
        })
    }
}

impl Snapshot for FaultStats {
    fn save(&self, w: &mut Writer) {
        self.per_class.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(FaultStats { per_class: <[FaultClassStats; 4]>::load(r)? })
    }
}

impl Snapshot for FaultEvent {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.cycle);
        w.put_u64(self.line_addr);
        self.class.save(w);
        self.kind.save(w);
        w.put_bool(self.detected);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(FaultEvent {
            cycle: r.get_u64()?,
            line_addr: r.get_u64()?,
            class: TrafficClass::load(r)?,
            kind: FaultKind::load(r)?,
            detected: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snapshot + PartialEq + core::fmt::Debug>(v: &T) {
        let mut w = Writer::new();
        v.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(&T::load(&mut r).unwrap(), v);
        r.expect_end().unwrap();
    }

    #[test]
    fn value_types_roundtrip() {
        roundtrip(&SectorMask(0b1010));
        for c in TrafficClass::ALL {
            roundtrip(&c);
        }
        roundtrip(&AccessKind::Load);
        roundtrip(&AccessKind::Store);
        roundtrip(&Access { line_addr: 0x1_2380, sectors: SectorMask(0b0110) });
        roundtrip(&Inst::Alu { stall: 4, wait_mem: true });
        roundtrip(&Inst::Load {
            accesses: vec![Access { line_addr: 0, sectors: SectorMask(1) }],
            dependent: false,
        });
        roundtrip(&Inst::Store { accesses: vec![] });
        roundtrip(&Inst::Exit);
        roundtrip(&WarpRef { sm: 3, warp: 17 });
        roundtrip(&MemRequest {
            id: 99,
            line_addr: 0x80,
            sectors: SectorMask(0xF),
            kind: AccessKind::Store,
            warp: Some(WarpRef { sm: 1, warp: 2 }),
        });
        roundtrip(&BackendReq { id: 7, line_addr: 0x100, sectors: SectorMask(1), bank: 2 });
        roundtrip(&FaultKind::Delay(12));
        roundtrip(&FaultEvent {
            cycle: 1000,
            line_addr: 0x200,
            class: TrafficClass::Counter,
            kind: FaultKind::BitFlip,
            detected: true,
        });
    }

    #[test]
    fn stats_roundtrip() {
        roundtrip(&CacheStats { hits: 1, misses: 2, fills: 3, dirty_evictions: 4, evictions: 5 });
        roundtrip(&MshrStats { primary: 6, secondary: 7, stalls: 8 });
        let mut d = DramStats::default();
        d.per_class[2].bytes_written = 1024;
        d.busy_fp = 77;
        d.row_hits = 5;
        roundtrip(&d);
        let mut f = FaultStats::default();
        f.per_class[1].injected = 3;
        roundtrip(&f);
    }

    #[test]
    fn corrupt_discriminants_are_typed_errors() {
        for bytes in [[0x10u8], [0xFFu8]] {
            let mut r = Reader::new(&bytes);
            assert!(matches!(SectorMask::load(&mut r), Err(CheckpointError::Malformed(_))));
        }
        for bytes in [[0x10u8], [9u8], [0xFFu8]] {
            let mut r = Reader::new(&bytes);
            assert!(matches!(TrafficClass::load(&mut r), Err(CheckpointError::Malformed(_))));
            let mut r = Reader::new(&bytes);
            assert!(matches!(AccessKind::load(&mut r), Err(CheckpointError::Malformed(_))));
            let mut r = Reader::new(&bytes);
            assert!(matches!(<Inst as Snapshot>::load(&mut r), Err(CheckpointError::Malformed(_))));
            let mut r = Reader::new(&bytes);
            assert!(matches!(FaultKind::load(&mut r), Err(CheckpointError::Malformed(_))));
        }
        // An unaligned line address in an Access is structural corruption.
        let mut w = Writer::new();
        w.put_u64(0x1234);
        SectorMask(1).save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(Access::load(&mut r), Err(CheckpointError::Malformed(_))));
    }
}
