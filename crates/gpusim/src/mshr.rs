//! Miss-status holding registers (MSHRs).
//!
//! MSHRs track in-flight line fetches and merge *secondary misses* —
//! accesses to a line that has already been requested but has not yet
//! returned — so they do not generate redundant memory traffic. The paper
//! shows (§V-B) that GPU sectored L2 caches make secondary misses the
//! dominant class of metadata-cache misses (up to >90%), which makes
//! MSHRs essential for metadata caches.

use std::collections::HashMap;

use crate::types::{Addr, SectorMask};

/// Outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated (primary miss): the caller must issue a
    /// memory request for the line's missing sectors.
    Allocated,
    /// Merged into an existing entry (secondary miss): no memory request
    /// needed; the target will be notified when the line returns.
    Merged,
    /// Merged into an existing entry, but the entry had not requested all
    /// of the sectors the new access needs: the caller must issue a memory
    /// request for the returned mask only.
    MergedNewSectors(SectorMask),
    /// The file (or the entry's merge capacity) is exhausted; the access
    /// must be retried later.
    Full,
}

/// MSHR statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Primary misses (new entry allocated).
    pub primary: u64,
    /// Secondary misses merged into an existing entry.
    pub secondary: u64,
    /// Accesses rejected because the file or entry was full.
    pub stalls: u64,
}

impl MshrStats {
    /// Fraction of misses that were secondary (0 when no misses).
    pub fn secondary_ratio(&self) -> f64 {
        let total = self.primary + self.secondary;
        if total == 0 {
            0.0
        } else {
            self.secondary as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry<T> {
    requested: SectorMask,
    targets: Vec<T>,
}

/// An MSHR file with bounded entries and bounded merges per entry.
///
/// `T` is the caller's target token (e.g. a warp reference or transaction
/// id), returned when the fill completes.
#[derive(Debug)]
pub struct MshrFile<T> {
    entries: HashMap<Addr, Entry<T>>,
    capacity: usize,
    max_merge: usize,
    stats: MshrStats,
}

impl<T> MshrFile<T> {
    /// Creates a file with `capacity` entries, each merging at most
    /// `max_merge` targets (including the primary one).
    pub fn new(capacity: usize, max_merge: usize) -> Self {
        Self { entries: HashMap::new(), capacity, max_merge: max_merge.max(1), stats: MshrStats::default() }
    }

    /// Presents a missing access. See [`MshrOutcome`].
    pub fn access(&mut self, line_addr: Addr, sectors: SectorMask, target: T) -> MshrOutcome {
        if let Some(entry) = self.entries.get_mut(&line_addr) {
            if entry.targets.len() >= self.max_merge {
                self.stats.stalls += 1;
                return MshrOutcome::Full;
            }
            entry.targets.push(target);
            self.stats.secondary += 1;
            let missing = sectors.minus(entry.requested);
            if missing.is_empty() {
                MshrOutcome::Merged
            } else {
                entry.requested = entry.requested.union(missing);
                MshrOutcome::MergedNewSectors(missing)
            }
        } else if self.entries.len() < self.capacity {
            self.entries.insert(line_addr, Entry { requested: sectors, targets: vec![target] });
            self.stats.primary += 1;
            MshrOutcome::Allocated
        } else {
            self.stats.stalls += 1;
            MshrOutcome::Full
        }
    }

    /// True if the line has an in-flight entry.
    pub fn contains(&self, line_addr: Addr) -> bool {
        self.entries.contains_key(&line_addr)
    }

    /// The sectors requested by the line's in-flight entry, if any.
    pub fn requested(&self, line_addr: Addr) -> Option<SectorMask> {
        self.entries.get(&line_addr).map(|e| e.requested)
    }

    /// Completes a fill: removes the entry and returns the sectors that
    /// were requested plus all merged targets. Returns `None` if the line
    /// had no entry (e.g. a prefetch or a zero-capacity file).
    pub fn complete(&mut self, line_addr: Addr) -> Option<(SectorMask, Vec<T>)> {
        self.entries.remove(&line_addr).map(|e| (e.requested, e.targets))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if no new entry can be allocated.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MshrStats {
        self.stats
    }

    /// Resets statistics (entries preserved).
    pub fn reset_stats(&mut self) {
        self.stats = MshrStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FULL_SECTOR_MASK;

    #[test]
    fn allocate_then_merge() {
        let mut m: MshrFile<u32> = MshrFile::new(4, 8);
        assert_eq!(m.access(0x80, SectorMask::single(0), 1), MshrOutcome::Allocated);
        assert_eq!(m.access(0x80, SectorMask::single(0), 2), MshrOutcome::Merged);
        assert_eq!(
            m.access(0x80, SectorMask::single(2), 3),
            MshrOutcome::MergedNewSectors(SectorMask::single(2))
        );
        let (sectors, targets) = m.complete(0x80).expect("entry exists");
        assert_eq!(sectors, SectorMask(0b0101));
        assert_eq!(targets, vec![1, 2, 3]);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_limit() {
        let mut m: MshrFile<()> = MshrFile::new(2, 8);
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, ()), MshrOutcome::Allocated);
        assert_eq!(m.access(0x80, FULL_SECTOR_MASK, ()), MshrOutcome::Allocated);
        assert!(m.is_full());
        assert_eq!(m.access(0x100, FULL_SECTOR_MASK, ()), MshrOutcome::Full);
        // Merging into existing entries still works when full.
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, ()), MshrOutcome::Merged);
        assert_eq!(m.stats().stalls, 1);
    }

    #[test]
    fn merge_limit() {
        let mut m: MshrFile<u8> = MshrFile::new(2, 2);
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, 0), MshrOutcome::Allocated);
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, 1), MshrOutcome::Merged);
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, 2), MshrOutcome::Full);
        assert_eq!(m.stats().secondary, 1);
    }

    #[test]
    fn secondary_ratio() {
        let mut m: MshrFile<u8> = MshrFile::new(8, 8);
        m.access(0x0, FULL_SECTOR_MASK, 0);
        m.access(0x0, FULL_SECTOR_MASK, 1);
        m.access(0x0, FULL_SECTOR_MASK, 2);
        m.access(0x80, FULL_SECTOR_MASK, 3);
        assert!((m.stats().secondary_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn complete_unknown_line_is_none() {
        let mut m: MshrFile<u8> = MshrFile::new(2, 2);
        assert!(m.complete(0x40).is_none());
    }

    #[test]
    fn zero_capacity_always_full() {
        let mut m: MshrFile<u8> = MshrFile::new(0, 1);
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, 0), MshrOutcome::Full);
    }
}
