//! Miss-status holding registers (MSHRs).
//!
//! MSHRs track in-flight line fetches and merge *secondary misses* —
//! accesses to a line that has already been requested but has not yet
//! returned — so they do not generate redundant memory traffic. The paper
//! shows (§V-B) that GPU sectored L2 caches make secondary misses the
//! dominant class of metadata-cache misses (up to >90%), which makes
//! MSHRs essential for metadata caches.
//!
//! The file is a flat slot array sized from the configured capacity (48
//! for an L2 bank, 64 for an L1): hardware MSHR files are tiny, so a
//! linear scan over a contiguous array beats a heap-allocated hash map on
//! every axis the simulator's hot loop cares about — no hashing, no
//! rehash allocation, and per-slot target vectors that keep their
//! capacity across reuse. Fill progress is tracked in the entry itself
//! (`filled` mask) instead of a side table, see [`MshrFile::note_fill`].

use secmem_checkpoint::{CheckpointError, Reader, Snapshot, Writer};

use crate::types::{Addr, SectorMask};

/// Outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome<T> {
    /// A new entry was allocated (primary miss): the caller must issue a
    /// memory request for the line's missing sectors.
    Allocated,
    /// Merged into an existing entry (secondary miss): no memory request
    /// needed; the target will be notified when the line returns.
    Merged,
    /// Merged into an existing entry, but the entry had not requested all
    /// of the sectors the new access needs: the caller must issue a memory
    /// request for the returned mask only.
    MergedNewSectors(SectorMask),
    /// The file (or the entry's merge capacity) is exhausted; the target
    /// is handed back so the caller can retry later without cloning.
    Full(T),
}

/// Outcome of noting a fill against the file (see [`MshrFile::note_fill`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// No entry tracks this line: the fill is not MSHR-mediated and the
    /// caller should apply it directly.
    Untracked,
    /// The entry is still waiting for more sectors.
    Partial,
    /// Every requested sector has now arrived: the entry was freed, its
    /// targets were drained to the caller, and the mask of sectors the
    /// entry had requested is returned.
    Complete(SectorMask),
}

/// MSHR statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Primary misses (new entry allocated).
    pub primary: u64,
    /// Secondary misses merged into an existing entry.
    pub secondary: u64,
    /// Accesses rejected because the file or entry was full.
    pub stalls: u64,
}

impl MshrStats {
    /// Fraction of misses that were secondary (0 when no misses).
    pub fn secondary_ratio(&self) -> f64 {
        let total = self.primary + self.secondary;
        if total == 0 {
            0.0
        } else {
            self.secondary as f64 / total as f64
        }
    }
}

/// Key-array sentinel for a free slot. Line addresses are line-aligned,
/// so `Addr::MAX` can never collide with a real key.
const FREE: Addr = Addr::MAX;

#[derive(Debug)]
struct Slot<T> {
    requested: SectorMask,
    filled: SectorMask,
    /// Kept allocated across slot reuse (cleared, not dropped).
    targets: Vec<T>,
}

/// An MSHR file with bounded entries and bounded merges per entry.
///
/// `T` is the caller's target token (e.g. a warp reference or transaction
/// id), returned when the fill completes.
///
/// Line keys live in a dense parallel array (`keys`) so the hot-path
/// lookup scans a few contiguous cache lines of `u64`s instead of
/// striding over the fat slot structs.
#[derive(Debug)]
pub struct MshrFile<T> {
    keys: Vec<Addr>,
    slots: Vec<Slot<T>>,
    live: usize,
    max_merge: usize,
    stats: MshrStats,
}

impl<T> MshrFile<T> {
    /// Creates a file with `capacity` entries, each merging at most
    /// `max_merge` targets (including the primary one).
    pub fn new(capacity: usize, max_merge: usize) -> Self {
        let slots = (0..capacity)
            .map(|_| Slot { requested: SectorMask::EMPTY, filled: SectorMask::EMPTY, targets: Vec::new() })
            .collect();
        Self {
            keys: vec![FREE; capacity],
            slots,
            live: 0,
            max_merge: max_merge.max(1),
            stats: MshrStats::default(),
        }
    }

    #[inline]
    fn find(&self, line_addr: Addr) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        self.keys.iter().position(|&k| k == line_addr)
    }

    /// Presents a missing access. See [`MshrOutcome`].
    pub fn access(&mut self, line_addr: Addr, sectors: SectorMask, target: T) -> MshrOutcome<T> {
        if let Some(i) = self.find(line_addr) {
            let slot = &mut self.slots[i];
            if slot.targets.len() >= self.max_merge {
                self.stats.stalls += 1;
                return MshrOutcome::Full(target);
            }
            slot.targets.push(target);
            self.stats.secondary += 1;
            let missing = sectors.minus(slot.requested);
            if missing.is_empty() {
                MshrOutcome::Merged
            } else {
                slot.requested = slot.requested.union(missing);
                MshrOutcome::MergedNewSectors(missing)
            }
        } else if self.live < self.slots.len() {
            let Some(i) = self.keys.iter().position(|&k| k == FREE) else {
                debug_assert!(false, "live < capacity implies a FREE key slot");
                self.stats.stalls += 1;
                return MshrOutcome::Full(target);
            };
            self.keys[i] = line_addr;
            let slot = &mut self.slots[i];
            slot.requested = sectors;
            slot.filled = SectorMask::EMPTY;
            slot.targets.clear();
            slot.targets.push(target);
            self.live += 1;
            self.stats.primary += 1;
            MshrOutcome::Allocated
        } else {
            self.stats.stalls += 1;
            MshrOutcome::Full(target)
        }
    }

    /// True if the line has an in-flight entry.
    pub fn contains(&self, line_addr: Addr) -> bool {
        self.find(line_addr).is_some()
    }

    /// The sectors requested by the line's in-flight entry, if any.
    pub fn requested(&self, line_addr: Addr) -> Option<SectorMask> {
        self.find(line_addr).map(|i| self.slots[i].requested)
    }

    /// The targets merged into the line's in-flight entry, if any (used by
    /// callers asserting that a request id is never in flight twice).
    pub fn targets(&self, line_addr: Addr) -> Option<&[T]> {
        self.find(line_addr).map(|i| self.slots[i].targets.as_slice())
    }

    /// Records that `sectors` of `line_addr` have been filled, tracking
    /// partial progress in the entry itself. When the entry's entire
    /// requested mask has arrived, the entry is freed and its targets are
    /// drained into `targets_out` (appended; the caller's buffer is not
    /// cleared). See [`FillOutcome`].
    pub fn note_fill(
        &mut self,
        line_addr: Addr,
        sectors: SectorMask,
        targets_out: &mut Vec<T>,
    ) -> FillOutcome {
        let Some(i) = self.find(line_addr) else { return FillOutcome::Untracked };
        let slot = &mut self.slots[i];
        slot.filled = slot.filled.union(sectors);
        if slot.filled.contains(slot.requested) {
            let requested = slot.requested;
            self.keys[i] = FREE;
            targets_out.append(&mut slot.targets);
            self.live -= 1;
            FillOutcome::Complete(requested)
        } else {
            FillOutcome::Partial
        }
    }

    /// Completes a fill: removes the entry and returns the sectors that
    /// were requested plus all merged targets. Returns `None` if the line
    /// had no entry (e.g. a prefetch or a zero-capacity file).
    pub fn complete(&mut self, line_addr: Addr) -> Option<(SectorMask, Vec<T>)> {
        let i = self.find(line_addr)?;
        self.keys[i] = FREE;
        let slot = &mut self.slots[i];
        self.live -= 1;
        Some((slot.requested, std::mem::take(&mut slot.targets)))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// True if no new entry can be allocated.
    pub fn is_full(&self) -> bool {
        self.live >= self.slots.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MshrStats {
        self.stats
    }

    /// Resets statistics (entries preserved).
    pub fn reset_stats(&mut self) {
        self.stats = MshrStats::default();
    }
}

impl<T: Snapshot> MshrFile<T> {
    /// Serializes the file **slot-by-slot, index-preserving**: allocation
    /// scans the key array for the first free position, so the exact slot
    /// layout (not just the set of live entries) determines future
    /// allocation order and must survive a checkpoint byte-for-byte.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_usize(self.keys.len());
        for (key, slot) in self.keys.iter().zip(&self.slots) {
            w.put_u64(*key);
            slot.requested.save(w);
            slot.filled.save(w);
            slot.targets.save(w);
        }
        self.stats.save(w);
    }

    /// Restores state saved by [`MshrFile::save_state`] into a file
    /// rebuilt with identical capacity.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] on a capacity mismatch; any decode
    /// error otherwise.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let capacity = r.get_usize()?;
        if capacity != self.keys.len() {
            return Err(CheckpointError::Malformed(format!(
                "MSHR capacity mismatch: checkpoint has {capacity} slots, file has {}",
                self.keys.len()
            )));
        }
        let mut live = 0;
        for (key, slot) in self.keys.iter_mut().zip(&mut self.slots) {
            *key = r.get_u64()?;
            slot.requested = SectorMask::load(r)?;
            slot.filled = SectorMask::load(r)?;
            slot.targets = Vec::load(r)?;
            if *key != FREE {
                live += 1;
            }
        }
        self.live = live;
        self.stats = MshrStats::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FULL_SECTOR_MASK;

    #[test]
    fn allocate_then_merge() {
        let mut m: MshrFile<u32> = MshrFile::new(4, 8);
        assert_eq!(m.access(0x80, SectorMask::single(0), 1), MshrOutcome::Allocated);
        assert_eq!(m.access(0x80, SectorMask::single(0), 2), MshrOutcome::Merged);
        assert_eq!(
            m.access(0x80, SectorMask::single(2), 3),
            MshrOutcome::MergedNewSectors(SectorMask::single(2))
        );
        let (sectors, targets) = m.complete(0x80).expect("entry exists");
        assert_eq!(sectors, SectorMask(0b0101));
        assert_eq!(targets, vec![1, 2, 3]);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_limit() {
        let mut m: MshrFile<()> = MshrFile::new(2, 8);
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, ()), MshrOutcome::Allocated);
        assert_eq!(m.access(0x80, FULL_SECTOR_MASK, ()), MshrOutcome::Allocated);
        assert!(m.is_full());
        assert_eq!(m.access(0x100, FULL_SECTOR_MASK, ()), MshrOutcome::Full(()));
        // Merging into existing entries still works when full.
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, ()), MshrOutcome::Merged);
        assert_eq!(m.stats().stalls, 1);
    }

    #[test]
    fn merge_limit() {
        let mut m: MshrFile<u8> = MshrFile::new(2, 2);
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, 0), MshrOutcome::Allocated);
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, 1), MshrOutcome::Merged);
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, 2), MshrOutcome::Full(2));
        assert_eq!(m.stats().secondary, 1);
    }

    #[test]
    fn full_hands_the_target_back() {
        let mut m: MshrFile<String> = MshrFile::new(0, 1);
        match m.access(0x0, FULL_SECTOR_MASK, "payload".to_string()) {
            MshrOutcome::Full(t) => assert_eq!(t, "payload"),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn secondary_ratio() {
        let mut m: MshrFile<u8> = MshrFile::new(8, 8);
        let _ = m.access(0x0, FULL_SECTOR_MASK, 0);
        let _ = m.access(0x0, FULL_SECTOR_MASK, 1);
        let _ = m.access(0x0, FULL_SECTOR_MASK, 2);
        let _ = m.access(0x80, FULL_SECTOR_MASK, 3);
        assert!((m.stats().secondary_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn complete_unknown_line_is_none() {
        let mut m: MshrFile<u8> = MshrFile::new(2, 2);
        assert!(m.complete(0x40).is_none());
    }

    #[test]
    fn zero_capacity_always_full() {
        let mut m: MshrFile<u8> = MshrFile::new(0, 1);
        assert_eq!(m.access(0x0, FULL_SECTOR_MASK, 0), MshrOutcome::Full(0));
    }

    #[test]
    fn note_fill_tracks_partial_progress() {
        let mut m: MshrFile<u32> = MshrFile::new(4, 8);
        let mut out = Vec::new();
        // Untracked line: caller applies the fill directly.
        assert_eq!(m.note_fill(0x80, SectorMask::single(0), &mut out), FillOutcome::Untracked);
        assert!(out.is_empty());
        // Entry wanting two sectors completes only when both arrive.
        assert_eq!(m.access(0x80, SectorMask(0b0011), 7), MshrOutcome::Allocated);
        assert_eq!(m.note_fill(0x80, SectorMask::single(0), &mut out), FillOutcome::Partial);
        assert!(out.is_empty());
        assert_eq!(m.len(), 1);
        assert_eq!(
            m.note_fill(0x80, SectorMask::single(1), &mut out),
            FillOutcome::Complete(SectorMask(0b0011))
        );
        assert_eq!(out, vec![7]);
        assert!(m.is_empty());
    }

    #[test]
    fn reused_slot_starts_with_clean_fill_state() {
        let mut m: MshrFile<u32> = MshrFile::new(1, 8);
        let mut out = Vec::new();
        assert_eq!(m.access(0x0, SectorMask(0b0011), 1), MshrOutcome::Allocated);
        assert_eq!(m.note_fill(0x0, SectorMask(0b0011), &mut out), FillOutcome::Complete(SectorMask(0b0011)));
        out.clear();
        // The reused slot must not inherit the previous entry's fill mask.
        assert_eq!(m.access(0x100, SectorMask(0b0011), 2), MshrOutcome::Allocated);
        assert_eq!(m.note_fill(0x100, SectorMask::single(0), &mut out), FillOutcome::Partial);
        assert!(out.is_empty());
    }

    #[test]
    fn targets_exposes_merged_entries() {
        let mut m: MshrFile<u32> = MshrFile::new(4, 8);
        assert!(m.targets(0x0).is_none());
        let _ = m.access(0x0, FULL_SECTOR_MASK, 10);
        let _ = m.access(0x0, FULL_SECTOR_MASK, 11);
        assert_eq!(m.targets(0x0), Some(&[10, 11][..]));
    }
}
