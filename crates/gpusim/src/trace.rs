//! Warp-trace recording and replay.
//!
//! Lets users capture the instruction stream of any [`Kernel`] into a
//! portable text format and replay it later — e.g. to feed real
//! application traces (converted from NVBit/GPGPU-Sim captures) through
//! the secure-memory models, or to archive the exact workload behind a
//! result.
//!
//! # Format (`gpu-secure-memory trace v1`)
//!
//! ```text
//! # gpu-secure-memory trace v1
//! warp 0 0            # begin stream for SM 0, warp 0
//! A 1                 # ALU, 1-cycle stall
//! U 1                 # ALU consuming loaded data (wait_mem)
//! L 0 1a80:3 2b00:1   # load, dependent=0, accesses addr:sector-mask (hex:hex)
//! S 3c80:f            # store
//! X                   # warp exit
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::kernel::{Kernel, StateError, WarpProgram};
use crate::types::{Access, Addr, Inst, SectorMask};

/// Magic first line of a trace file.
pub const TRACE_HEADER: &str = "# gpu-secure-memory trace v1";

/// Largest SM index a trace may name. A corrupt directive like
/// `warp 4000000000 0` would otherwise make the replay kernel claim
/// billions of SMs.
pub const MAX_TRACE_SM: u32 = 4096;

/// Largest warp index a trace may name (same rationale as
/// [`MAX_TRACE_SM`]).
pub const MAX_TRACE_WARP: u32 = 4096;

/// Most accesses a single load/store line may carry — one per lane of
/// the widest real warp, so anything larger is a malformed record.
pub const MAX_ACCESSES_PER_INST: usize = 64;

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Why a trace file could not be loaded: the read failed, or the
/// contents did not parse in whichever format the file announced.
#[derive(Debug)]
pub enum TraceLoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file contents are not a valid v1 text trace.
    Parse(ParseTraceError),
    /// The file carries the `SECMTRC` magic but is not a valid binary
    /// trace.
    Binary(crate::trace_bin::BinTraceError),
}

impl core::fmt::Display for TraceLoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceLoadError::Io(e) => write!(f, "cannot read trace file: {e}"),
            TraceLoadError::Parse(e) => e.fmt(f),
            TraceLoadError::Binary(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for TraceLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceLoadError::Io(e) => Some(e),
            TraceLoadError::Parse(e) => Some(e),
            TraceLoadError::Binary(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TraceLoadError {
    fn from(e: std::io::Error) -> Self {
        TraceLoadError::Io(e)
    }
}

impl From<ParseTraceError> for TraceLoadError {
    fn from(e: ParseTraceError) -> Self {
        TraceLoadError::Parse(e)
    }
}

impl From<crate::trace_bin::BinTraceError> for TraceLoadError {
    fn from(e: crate::trace_bin::BinTraceError) -> Self {
        TraceLoadError::Binary(e)
    }
}

/// Serializes one instruction to its trace line.
pub fn serialize_inst(inst: &Inst) -> String {
    let mut out = String::new();
    serialize_inst_into(&mut out, inst);
    out
}

/// Appends one instruction's trace line (no newline) to `out`: the
/// buffer-reusing form [`Trace::write_text`] serializes millions of
/// lines through without an allocation per instruction.
pub fn serialize_inst_into(out: &mut String, inst: &Inst) {
    let accesses = |out: &mut String, list: &[Access]| {
        for (i, a) in list.iter().enumerate() {
            let sep = if i == 0 { "" } else { " " };
            let _ = write!(out, "{sep}{:x}:{:x}", a.line_addr, a.sectors.0);
        }
    };
    match inst {
        Inst::Alu { stall, wait_mem: false } => {
            let _ = write!(out, "A {stall}");
        }
        Inst::Alu { stall, wait_mem: true } => {
            let _ = write!(out, "U {stall}");
        }
        Inst::Load { accesses: list, dependent } => {
            let _ = write!(out, "L {} ", u8::from(*dependent));
            accesses(out, list);
        }
        Inst::Store { accesses: list } => {
            out.push_str("S ");
            accesses(out, list);
        }
        Inst::Exit => out.push('X'),
    }
}

fn parse_accesses(parts: &[&str], line: usize) -> Result<Vec<Access>, ParseTraceError> {
    if parts.is_empty() {
        return Err(ParseTraceError { line, message: "memory instruction with no accesses".into() });
    }
    if parts.len() > MAX_ACCESSES_PER_INST {
        return Err(ParseTraceError {
            line,
            message: format!(
                "{} accesses on one instruction exceeds the limit of {MAX_ACCESSES_PER_INST}",
                parts.len()
            ),
        });
    }
    parts
        .iter()
        .map(|p| {
            let (addr, mask) = p
                .split_once(':')
                .ok_or_else(|| ParseTraceError { line, message: format!("access '{p}' is not addr:mask") })?;
            let addr = Addr::from_str_radix(addr, 16)
                .map_err(|_| ParseTraceError { line, message: format!("bad address '{addr}'") })?;
            let mask = u8::from_str_radix(mask, 16)
                .map_err(|_| ParseTraceError { line, message: format!("bad sector mask '{mask}'") })?;
            if mask == 0 || mask > 0xF {
                return Err(ParseTraceError { line, message: format!("mask {mask:#x} out of range") });
            }
            Ok(Access { line_addr: addr & !127, sectors: SectorMask(mask) })
        })
        .collect()
}

/// Parses one instruction line.
pub fn parse_inst(text: &str, line: usize) -> Result<Inst, ParseTraceError> {
    parse_inst_with_buf(text, line, &mut Vec::new())
}

/// [`parse_inst`] with a caller-owned token buffer, so bulk ingestion
/// ([`Trace::from_text`]) tokenizes millions of lines without a heap
/// allocation per line. The buffer is cleared on entry.
fn parse_inst_with_buf<'a>(
    text: &'a str,
    line: usize,
    buf: &mut Vec<&'a str>,
) -> Result<Inst, ParseTraceError> {
    buf.clear();
    buf.extend(text.split_whitespace());
    let Some((&op, rest)) = buf.split_first() else {
        return Err(ParseTraceError { line, message: "empty line".into() });
    };
    let stall = |rest: &[&str]| -> Result<u32, ParseTraceError> {
        rest.first()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ParseTraceError { line, message: "ALU needs a stall count".into() })
    };
    match op {
        "A" => Ok(Inst::Alu { stall: stall(rest)?, wait_mem: false }),
        "U" => Ok(Inst::Alu { stall: stall(rest)?, wait_mem: true }),
        "L" => {
            let dep = rest
                .first()
                .and_then(|s| s.parse::<u8>().ok())
                .ok_or_else(|| ParseTraceError { line, message: "load needs a dependent flag".into() })?;
            Ok(Inst::Load { accesses: parse_accesses(&rest[1..], line)?, dependent: dep != 0 })
        }
        "S" => Ok(Inst::Store { accesses: parse_accesses(rest, line)? }),
        "X" => {
            if rest.is_empty() {
                Ok(Inst::Exit)
            } else {
                Err(ParseTraceError {
                    line,
                    message: format!("trailing tokens after 'X': '{}'", rest.join(" ")),
                })
            }
        }
        other => Err(ParseTraceError { line, message: format!("unknown opcode '{other}'") }),
    }
}

/// A recorded multi-warp trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    streams: BTreeMap<(u32, u32), Vec<Inst>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the first `max_insts` instructions of every warp of
    /// `kernel` (stopping early at `Exit`).
    pub fn record(kernel: &dyn Kernel, sms: u32, max_insts: usize) -> Self {
        let mut streams = BTreeMap::new();
        let active = kernel.active_sms(sms);
        for sm in 0..active {
            for warp in 0..kernel.warps_per_sm(sm) {
                let mut program = kernel.spawn(sm, warp);
                let mut insts = Vec::new();
                for _ in 0..max_insts {
                    let inst = program.next_inst();
                    let exit = matches!(inst, Inst::Exit);
                    insts.push(inst);
                    if exit {
                        break;
                    }
                }
                streams.insert((sm, warp), insts);
            }
        }
        Self { streams }
    }

    /// Adds (or replaces) one warp's stream.
    pub fn insert(&mut self, sm: u32, warp: u32, insts: Vec<Inst>) {
        self.streams.insert((sm, warp), insts);
    }

    /// The instruction stream of a warp, if recorded.
    pub fn stream(&self, sm: u32, warp: u32) -> Option<&[Inst]> {
        self.streams.get(&(sm, warp)).map(Vec::as_slice)
    }

    /// Number of recorded warps.
    pub fn warp_count(&self) -> usize {
        self.streams.len()
    }

    /// Iterates recorded streams in ascending `(sm, warp)` order.
    pub fn streams(&self) -> impl Iterator<Item = ((u32, u32), &[Inst])> {
        self.streams.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Total recorded instructions across all streams.
    pub fn total_insts(&self) -> u64 {
        self.streams.values().map(|v| v.len() as u64).sum()
    }

    /// Estimated bytes the decoded streams keep resident: the `Inst`
    /// slots plus the access vectors loads and stores hang off them.
    /// The perf harness compares this against
    /// [`crate::trace_bin::BinaryTrace::resident_bytes`].
    pub fn decoded_bytes_estimate(&self) -> usize {
        let mut bytes = 0;
        for insts in self.streams.values() {
            bytes += insts.capacity() * core::mem::size_of::<Inst>();
            for inst in insts {
                if let Inst::Load { accesses, .. } | Inst::Store { accesses } = inst {
                    bytes += accesses.capacity() * core::mem::size_of::<Access>();
                }
            }
        }
        bytes
    }

    /// Streams the v1 text serialization into `sink` (warps in
    /// ascending `(sm, warp)` order) without materializing the whole
    /// document: one per-instruction line buffer is reused across the
    /// run, so exporting a large trace costs O(longest line) extra
    /// memory instead of a second copy of the trace.
    ///
    /// # Errors
    ///
    /// Any I/O error from the sink.
    pub fn write_text<W: std::io::Write>(&self, sink: &mut W) -> std::io::Result<()> {
        writeln!(sink, "{TRACE_HEADER}")?;
        let mut line = String::new();
        for (key, insts) in &self.streams {
            writeln!(sink, "warp {} {}", key.0, key.1)?;
            for inst in insts {
                line.clear();
                serialize_inst_into(&mut line, inst);
                line.push('\n');
                sink.write_all(line.as_bytes())?;
            }
        }
        Ok(())
    }

    /// Serializes to the v1 text format in memory (see
    /// [`Trace::write_text`] for the streaming form this wraps).
    pub fn to_text(&self) -> String {
        let mut out = Vec::new();
        // Writing into a Vec<u8> cannot fail, and the serializer emits
        // only ASCII.
        let _ = self.write_text(&mut out);
        String::from_utf8(out).expect("trace text is ASCII")
    }

    /// Parses the v1 text format.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, ParseTraceError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == TRACE_HEADER => {}
            _ => {
                return Err(ParseTraceError { line: 1, message: format!("missing header '{TRACE_HEADER}'") })
            }
        }
        let mut streams: BTreeMap<(u32, u32), Vec<Inst>> = BTreeMap::new();
        let mut current: Option<(u32, u32)> = None;
        let mut tokens: Vec<&str> = Vec::new();
        for (i, raw) in lines {
            let line_no = i + 1;
            let text = raw.split('#').next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            if let Some(rest) = text.strip_prefix("warp ") {
                let mut it = rest.split_whitespace();
                let sm = it.next().and_then(|s| s.parse().ok());
                let warp = it.next().and_then(|s| s.parse().ok());
                match (sm, warp) {
                    (Some(sm), Some(warp)) => {
                        if sm > MAX_TRACE_SM || warp > MAX_TRACE_WARP {
                            return Err(ParseTraceError {
                                line: line_no,
                                message: format!(
                                    "stream 'warp {sm} {warp}' exceeds limits \
                                     ({MAX_TRACE_SM} SMs, {MAX_TRACE_WARP} warps)"
                                ),
                            });
                        }
                        if streams.contains_key(&(sm, warp)) {
                            // Silently merging (or last-wins replacing) a
                            // repeated stream would corrupt the replay.
                            return Err(ParseTraceError {
                                line: line_no,
                                message: format!("duplicate stream 'warp {sm} {warp}'"),
                            });
                        }
                        current = Some((sm, warp));
                        streams.insert((sm, warp), Vec::new());
                    }
                    _ => {
                        return Err(ParseTraceError {
                            line: line_no,
                            message: format!("bad warp directive '{text}'"),
                        })
                    }
                }
                continue;
            }
            let Some(key) = current else {
                return Err(ParseTraceError {
                    line: line_no,
                    message: "instruction before any 'warp' directive".into(),
                });
            };
            streams.get_mut(&key).expect("stream exists").push(parse_inst_with_buf(
                text,
                line_no,
                &mut tokens,
            )?);
        }
        Ok(Self { streams })
    }
}

/// Where a [`TraceKernel`]'s instructions come from: decoded text
/// streams, or a `SECMTRC` container replayed through streaming
/// cursors.
#[derive(Debug, Clone)]
enum TraceSource {
    /// Fully-decoded streams (in-memory recording or text ingestion).
    Decoded(std::sync::Arc<Trace>),
    /// Shared binary backing buffer; warps decode on the fly.
    Binary(std::sync::Arc<crate::trace_bin::BinaryTrace>),
}

/// Replays a [`Trace`] as a [`Kernel`]: each recorded warp runs its
/// stream once and exits; unrecorded warps exit immediately.
///
/// Binary (`SECMTRC`) traces replay through streaming cursors that
/// share one immutable backing buffer — see [`crate::trace_bin`] — so
/// ingesting a paper-scale trace never materializes the decoded
/// instruction vectors. Both sources checkpoint the same single-word
/// warp state, so frames are interchangeable across formats.
#[derive(Debug, Clone)]
pub struct TraceKernel {
    source: TraceSource,
    name: String,
}

impl TraceKernel {
    /// Wraps a decoded trace for replay.
    pub fn new(trace: Trace, name: impl Into<String>) -> Self {
        Self { source: TraceSource::Decoded(std::sync::Arc::new(trace)), name: name.into() }
    }

    /// Wraps a validated binary trace for streaming replay.
    pub fn from_binary(trace: crate::trace_bin::BinaryTrace, name: impl Into<String>) -> Self {
        Self { source: TraceSource::Binary(std::sync::Arc::new(trace)), name: name.into() }
    }

    /// Loads a trace file, sniffing the format: files starting with the
    /// `SECMTRC` magic decode as binary containers (and replay
    /// streamed), anything else parses as the v1 text format.
    ///
    /// # Errors
    ///
    /// [`TraceLoadError::Io`] if the file cannot be read,
    /// [`TraceLoadError::Parse`] / [`TraceLoadError::Binary`] if its
    /// contents are malformed for the sniffed format.
    pub fn from_file(path: &std::path::Path) -> Result<Self, TraceLoadError> {
        let bytes = std::fs::read(path)?;
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace").to_string();
        if crate::trace_bin::BinaryTrace::sniff(&bytes) {
            let bin = crate::trace_bin::BinaryTrace::decode(&bytes)?;
            return Ok(Self::from_binary(bin, name));
        }
        let text = core::str::from_utf8(&bytes).map_err(|e| {
            TraceLoadError::Parse(ParseTraceError { line: 1, message: format!("trace is not UTF-8: {e}") })
        })?;
        let trace = Trace::from_text(text)?;
        Ok(Self::new(trace, name))
    }

    /// True when this kernel replays a binary container through
    /// streaming cursors (false for decoded text streams).
    pub fn is_streamed(&self) -> bool {
        matches!(self.source, TraceSource::Binary(_))
    }

    /// Bytes the trace source keeps resident for replay: the decoded
    /// stream estimate for text ingestion, the shared backing buffer
    /// (plus index) for binary.
    pub fn resident_bytes(&self) -> usize {
        match &self.source {
            TraceSource::Decoded(t) => t.decoded_bytes_estimate(),
            TraceSource::Binary(b) => b.resident_bytes(),
        }
    }
}

#[derive(Debug)]
struct Replay {
    insts: Vec<Inst>,
    pos: usize,
}

impl WarpProgram for Replay {
    fn next_inst(&mut self) -> Inst {
        let inst = self.insts.get(self.pos).cloned().unwrap_or(Inst::Exit);
        self.pos += 1;
        inst
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.pos as u64);
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), StateError> {
        crate::kernel::expect_state_len(state, 1, "trace replay")?;
        // One past the end is legal (the implicit Exit was consumed);
        // anything further means the state belongs to a different trace.
        let pos =
            usize::try_from(state[0]).map_err(|_| StateError::new("trace replay", "position overflow"))?;
        if pos > self.insts.len() + 1 {
            return Err(StateError::new(
                "trace replay",
                format!("position {pos} beyond stream of {} instructions", self.insts.len()),
            ));
        }
        self.pos = pos;
        Ok(())
    }
}

impl Kernel for TraceKernel {
    fn active_sms(&self, available: u32) -> u32 {
        match &self.source {
            TraceSource::Decoded(t) => t.streams.keys().map(|k| k.0 + 1).max().unwrap_or(1).min(available),
            TraceSource::Binary(b) => b.active_sms(available),
        }
    }

    fn warps_per_sm(&self, sm: u32) -> u32 {
        match &self.source {
            TraceSource::Decoded(t) => {
                t.streams.keys().filter(|k| k.0 == sm).map(|k| k.1 + 1).max().unwrap_or(1)
            }
            TraceSource::Binary(b) => b.warps_per_sm(sm),
        }
    }

    fn spawn(&self, sm: u32, warp: u32) -> Box<dyn WarpProgram + Send> {
        match &self.source {
            TraceSource::Decoded(t) => {
                let insts = t.stream(sm, warp).map(<[Inst]>::to_vec).unwrap_or_default();
                Box::new(Replay { insts, pos: 0 })
            }
            TraceSource::Binary(b) => Box::new(b.cursor(sm, warp)),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PassthroughBackend;
    use crate::config::GpuConfig;
    use crate::kernel::StreamKernel;
    use crate::sim::Simulator;
    use crate::types::FULL_SECTOR_MASK;

    fn sample_insts() -> Vec<Inst> {
        vec![
            Inst::Alu { stall: 3, wait_mem: false },
            Inst::Load {
                accesses: vec![
                    Access { line_addr: 0x1a80, sectors: SectorMask(0b0011) },
                    Access { line_addr: 0x2b00, sectors: SectorMask(0b0001) },
                ],
                dependent: true,
            },
            Inst::Alu { stall: 1, wait_mem: true },
            Inst::Store { accesses: vec![Access { line_addr: 0x3c80, sectors: FULL_SECTOR_MASK }] },
            Inst::Exit,
        ]
    }

    #[test]
    fn text_roundtrip() {
        let mut trace = Trace::new();
        trace.insert(0, 0, sample_insts());
        trace.insert(1, 3, vec![Inst::alu(), Inst::Exit]);
        let text = trace.to_text();
        assert!(text.starts_with(TRACE_HEADER));
        let back = Trace::from_text(&text).expect("parses");
        assert_eq!(back, trace);
    }

    #[test]
    fn serialize_forms() {
        assert_eq!(serialize_inst(&Inst::alu()), "A 1");
        assert_eq!(serialize_inst(&Inst::use_mem()), "U 1");
        assert_eq!(serialize_inst(&Inst::Exit), "X");
        let l = serialize_inst(&sample_insts()[1]);
        assert_eq!(l, "L 1 1a80:3 2b00:1");
        assert_eq!(parse_inst(&l, 1).expect("parses"), sample_insts()[1]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::from_text("not a trace").is_err());
        let bad_op = format!("{TRACE_HEADER}\nwarp 0 0\nZ 1\n");
        let err = Trace::from_text(&bad_op).expect_err("bad opcode");
        assert_eq!(err.line, 3);
        let bad_mask = format!("{TRACE_HEADER}\nwarp 0 0\nL 0 80:ff\n");
        assert!(Trace::from_text(&bad_mask).is_err());
        let orphan = format!("{TRACE_HEADER}\nA 1\n");
        assert!(Trace::from_text(&orphan).is_err());
    }

    #[test]
    fn oversized_indices_and_counts_rejected() {
        let huge_sm = format!("{TRACE_HEADER}\nwarp 4000000000 0\nX\n");
        let err = Trace::from_text(&huge_sm).expect_err("absurd SM index");
        assert!(err.message.contains("exceeds limits"), "message: {}", err.message);
        let huge_warp = format!("{TRACE_HEADER}\nwarp 0 999999\nX\n");
        assert!(Trace::from_text(&huge_warp).is_err());
        let wide = (0..=MAX_ACCESSES_PER_INST).map(|i| format!("{:x}:f", i * 128)).collect::<Vec<_>>();
        let line = format!("L 0 {}", wide.join(" "));
        let err = parse_inst(&line, 1).expect_err("too many accesses");
        assert!(err.message.contains("limit"), "message: {}", err.message);
        // Exactly at the limit still parses.
        let line = format!("L 0 {}", wide[..MAX_ACCESSES_PER_INST].join(" "));
        assert!(parse_inst(&line, 1).is_ok());
    }

    #[test]
    fn truncated_records_rejected() {
        for bad in ["A", "U", "L", "L 0", "S", "L 1 80"] {
            let text = format!("{TRACE_HEADER}\nwarp 0 0\n{bad}\n");
            assert!(Trace::from_text(&text).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn replay_state_roundtrip() {
        let mut trace = Trace::new();
        trace.insert(0, 0, sample_insts());
        let k = TraceKernel::new(trace, "t");
        let mut p = k.spawn(0, 0);
        let _ = p.next_inst();
        let _ = p.next_inst();
        let mut state = Vec::new();
        p.save_state(&mut state);
        let mut q = k.spawn(0, 0);
        q.restore_state(&state).expect("restores");
        assert_eq!(q.next_inst(), sample_insts()[2]);
        assert!(q.restore_state(&[99]).is_err(), "position beyond stream");
        assert!(q.restore_state(&[0, 0]).is_err(), "wrong word count");
    }

    #[test]
    fn duplicate_warp_header_rejected() {
        let text = format!("{TRACE_HEADER}\nwarp 0 0\nA 1\nwarp 0 0\nA 2\nX\n");
        let err = Trace::from_text(&text).expect_err("duplicate stream");
        assert_eq!(err.line, 4);
        assert!(err.message.contains("duplicate"), "message: {}", err.message);
        // Distinct warps on the same SM are of course still fine.
        let ok = format!("{TRACE_HEADER}\nwarp 0 0\nX\nwarp 0 1\nX\n");
        assert_eq!(Trace::from_text(&ok).expect("parses").warp_count(), 2);
    }

    #[test]
    fn trailing_tokens_after_exit_rejected() {
        let text = format!("{TRACE_HEADER}\nwarp 0 0\nX 1\n");
        let err = Trace::from_text(&text).expect_err("garbage after X");
        assert_eq!(err.line, 3);
        assert!(err.message.contains("trailing"), "message: {}", err.message);
        assert!(parse_inst("X junk", 1).is_err());
        // A trailing comment is stripped before parsing and stays legal.
        let commented = format!("{TRACE_HEADER}\nwarp 0 0\nX # done\n");
        assert!(Trace::from_text(&commented).is_ok());
    }

    #[test]
    fn rejection_roundtrip_of_valid_traces_unaffected() {
        // Round-trip through text twice: rejects nothing valid, and the
        // second pass reproduces the first exactly.
        let kernel = StreamKernel { alu_per_mem: 1, bytes_per_warp: 4096, warps: 3 };
        let trace = Trace::record(&kernel, 2, 32);
        let text = trace.to_text();
        let back = Trace::from_text(&text).expect("valid text parses");
        assert_eq!(back, trace);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = format!("{TRACE_HEADER}\n\nwarp 0 0  # first warp\nA 4 # compute\nX\n");
        let trace = Trace::from_text(&text).expect("parses");
        assert_eq!(
            trace.stream(0, 0).expect("warp recorded"),
            &[Inst::Alu { stall: 4, wait_mem: false }, Inst::Exit]
        );
    }

    #[test]
    fn record_captures_kernel() {
        let kernel = StreamKernel { alu_per_mem: 1, bytes_per_warp: 4096, warps: 2 };
        let trace = Trace::record(&kernel, 2, 16);
        assert_eq!(trace.warp_count(), 4);
        let s = trace.stream(0, 0).expect("recorded");
        assert_eq!(s.len(), 16, "infinite kernel truncated at max_insts");
        assert!(s.iter().any(|i| matches!(i, Inst::Load { .. })));
    }

    #[test]
    fn recorded_trace_replays_equivalently() {
        let kernel = StreamKernel { alu_per_mem: 2, bytes_per_warp: 1 << 16, warps: 4 };
        let trace = Trace::record(&kernel, 4, 200);
        let replay = TraceKernel::new(trace, "stream-replay");
        let cfg = GpuConfig::small();
        let mut sim = Simulator::new(cfg, &replay, |_, g| PassthroughBackend::from_config(g));
        let report = sim.run(50_000);
        // 4 SMs x 4 warps x 200 instructions, all retired.
        assert_eq!(report.warp_instructions, 4 * 4 * 200);
    }

    #[test]
    fn trace_kernel_reports_shape() {
        let mut trace = Trace::new();
        trace.insert(0, 0, vec![Inst::Exit]);
        trace.insert(2, 5, vec![Inst::Exit]);
        let k = TraceKernel::new(trace, "t");
        assert_eq!(k.active_sms(8), 3);
        assert_eq!(k.warps_per_sm(2), 6);
        assert_eq!(k.warps_per_sm(0), 1);
        assert_eq!(k.name(), "t");
    }

    #[test]
    fn file_roundtrip() {
        let mut trace = Trace::new();
        trace.insert(0, 0, sample_insts());
        let dir = std::env::temp_dir().join("secmem_trace_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("sample.trace");
        std::fs::write(&path, trace.to_text()).expect("write");
        let k = TraceKernel::from_file(&path).expect("loads");
        assert_eq!(k.name(), "sample");
        assert_eq!(k.warps_per_sm(0), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
