//! The memory backend abstraction: what sits between an L2 bank's miss
//! path and the DRAM channel of a partition.
//!
//! The baseline GPU uses [`PassthroughBackend`] (requests go straight to
//! DRAM). The secure memory engine in `secmem-core` implements
//! [`MemoryBackend`] too, inserting encryption, MAC and integrity-tree
//! processing — exactly where the paper places the secure memory hardware
//! (inside each memory controller, Fig. 1).

use secmem_checkpoint::{CheckpointError, Reader, Snapshot, Writer};
use secmem_telemetry::{EventKind, Telemetry, TelemetryEvent};

use crate::dram::{Dram, DramRequest, DramStats};
use crate::fault::{FaultEvent, FaultInjector, FaultStats};
use crate::stats::EngineStats;
use crate::types::{BackendReq, Cycle, TrafficClass};

/// A memory-side engine + DRAM channel for one partition.
///
/// Contract: the partition checks `can_accept_*` before calling
/// `submit_*`; submitting when not accepting is a programming error and
/// may panic. Completed reads surface through `pop_read_response` with the
/// same `BackendReq` (id, line, sectors, bank) that was submitted; writes
/// complete silently.
///
/// `Send` is a supertrait: partitions step on pool worker threads during
/// the parallel phase of [`crate::sim::Simulator::step`].
pub trait MemoryBackend: Send {
    /// True if a read can be submitted this cycle.
    fn can_accept_read(&self) -> bool;
    /// True if a write (L2 dirty eviction) can be submitted this cycle.
    fn can_accept_write(&self) -> bool;
    /// Submits a data-sector read.
    fn submit_read(&mut self, now: Cycle, req: BackendReq);
    /// Submits a data-sector writeback.
    fn submit_write(&mut self, now: Cycle, req: BackendReq);
    /// Advances internal state to cycle `now`.
    fn cycle(&mut self, now: Cycle);
    /// Pops one completed read, if any.
    fn pop_read_response(&mut self) -> Option<BackendReq>;
    /// DRAM statistics for this partition.
    fn dram_stats(&self) -> &DramStats;
    /// Secure-engine statistics (all-zero default for plain backends).
    fn engine_stats(&self) -> EngineStats {
        EngineStats::default()
    }
    /// Fault-injection statistics (all-zero when no injector installed).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }
    /// Typed integrity events observed for injected faults (empty for
    /// backends without an injector or integrity machinery).
    fn fault_events(&self) -> &[FaultEvent] {
        &[]
    }
    /// Work items the backend still holds (queued + in-flight + pending
    /// responses); used by the watchdog's stall diagnostic.
    fn pending_work(&self) -> usize {
        0
    }
    /// True when no work is pending anywhere in the backend.
    fn is_idle(&self) -> bool;
    /// Earliest cycle at or after `now` at which this backend can make
    /// progress, or `None` when idle. The conservative default ("active
    /// now whenever not idle") is always correct; backends with precise
    /// event knowledge override it so the idle-skip scheduler can
    /// fast-forward quiescent gaps.
    fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        if self.is_idle() {
            None
        } else {
            Some(now)
        }
    }
    /// Resets statistics (state preserved) — used to discard warmup.
    fn reset_stats(&mut self);
    /// Attaches a telemetry sink stamped with this backend's partition
    /// id. Default: ignore (backends without instrumentation).
    fn set_telemetry(&mut self, _telemetry: Telemetry, _partition: u32) {}
    /// Metadata-cache MSHR occupancy (waiters parked on in-flight
    /// metadata fills). Zero for backends without metadata caches.
    fn meta_mshr_occupancy(&self) -> usize {
        0
    }
    /// Serializes the backend's complete mutable state (queues, in-flight
    /// work, caches, counters, RNG streams) into a checkpoint payload.
    fn save_state(&self, w: &mut Writer);
    /// Restores state saved by [`MemoryBackend::save_state`] into a
    /// backend freshly built from the same configuration.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] when the payload is malformed or does not
    /// match this backend's geometry.
    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError>;
}

/// Token carried through the baseline DRAM channel.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Read(BackendReq),
    Write,
}

impl Snapshot for Token {
    fn save(&self, w: &mut Writer) {
        match self {
            Token::Read(req) => {
                w.put_u8(0);
                req.save(w);
            }
            Token::Write => w.put_u8(1),
        }
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        match r.get_u8()? {
            0 => Ok(Token::Read(BackendReq::load(r)?)),
            1 => Ok(Token::Write),
            d => Err(CheckpointError::Malformed(format!("dram token discriminant {d}"))),
        }
    }
}

/// The baseline backend: a bare DRAM channel, no security processing.
#[derive(Debug)]
pub struct PassthroughBackend {
    dram: Dram<Token>,
    ready: Vec<BackendReq>,
    events: Vec<FaultEvent>,
    telemetry: Telemetry,
    partition: u32,
}

impl PassthroughBackend {
    /// Creates a backend over a DRAM channel with the given bandwidth
    /// (22.10 fixed-point bytes/cycle), latency and queue capacity.
    pub fn new(bytes_per_cycle_fp: u64, latency: u32, queue_cap: usize) -> Self {
        Self {
            dram: Dram::new(bytes_per_cycle_fp, latency, queue_cap),
            ready: Vec::new(),
            events: Vec::new(),
            telemetry: Telemetry::disabled(),
            partition: 0,
        }
    }

    /// Creates a backend from a GPU configuration (honoring the banked
    /// row-buffer model when `dram_banks > 0`).
    pub fn from_config(cfg: &crate::config::GpuConfig) -> Self {
        Self {
            dram: Dram::with_banks(
                cfg.dram_bytes_per_cycle_fp(),
                cfg.dram_latency,
                cfg.dram_queue_cap,
                cfg.dram_banks,
                cfg.dram_row_bytes,
                cfg.dram_row_miss_penalty,
            ),
            ready: Vec::new(),
            events: Vec::new(),
            telemetry: Telemetry::disabled(),
            partition: 0,
        }
    }

    /// Installs a fault injector on the DRAM channel. The baseline has
    /// no integrity machinery, so every corruption it receives passes
    /// through undetected (and is accounted as such).
    pub fn install_faults(&mut self, injector: FaultInjector) {
        self.dram.install_faults(injector);
    }
}

impl MemoryBackend for PassthroughBackend {
    fn can_accept_read(&self) -> bool {
        // A sectored L2 miss submits up to 4 per-sector reads at once.
        self.dram.free_capacity() >= 4
    }

    fn can_accept_write(&self) -> bool {
        !self.dram.is_full()
    }

    fn submit_read(&mut self, _now: Cycle, req: BackendReq) {
        let bytes = req.sectors.bytes();
        let pushed = self.dram.try_push(DramRequest {
            bytes,
            addr: req.line_addr,
            is_write: false,
            class: TrafficClass::Data,
            token: Token::Read(req),
        });
        // `can_accept_read` gates every caller; a full queue here is a
        // caller bug, not a runtime condition worth a panic path.
        debug_assert!(pushed.is_ok(), "submit_read called while full");
    }

    fn submit_write(&mut self, _now: Cycle, req: BackendReq) {
        let bytes = req.sectors.bytes();
        let pushed = self.dram.try_push(DramRequest {
            bytes,
            addr: req.line_addr,
            is_write: true,
            class: TrafficClass::Data,
            token: Token::Write,
        });
        debug_assert!(pushed.is_ok(), "submit_write called while full");
    }

    fn cycle(&mut self, now: Cycle) {
        self.dram.cycle(now);
        while let Some((done, fault)) = self.dram.pop_completed_with_fault() {
            if let Some(kind) = fault {
                if kind.corrupts() {
                    // No MACs, no tree: the corruption sails through.
                    self.events.push(FaultEvent {
                        cycle: now,
                        line_addr: done.addr,
                        class: done.class,
                        kind,
                        detected: false,
                    });
                    if let Some(inj) = self.dram.injector_mut() {
                        inj.record_detection(done.class, false);
                    }
                    if self.telemetry.is_enabled() {
                        record_fault_event(&self.telemetry, self.partition, now, done.class, kind);
                    }
                }
            }
            if let Token::Read(req) = done.token {
                self.ready.push(req);
            }
        }
    }

    fn pop_read_response(&mut self) -> Option<BackendReq> {
        self.ready.pop()
    }

    fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    fn fault_stats(&self) -> FaultStats {
        self.dram.fault_stats()
    }

    fn fault_events(&self) -> &[FaultEvent] {
        &self.events
    }

    fn pending_work(&self) -> usize {
        self.dram.queue_len() + self.ready.len()
    }

    fn is_idle(&self) -> bool {
        self.dram.is_idle() && self.ready.is_empty()
    }

    fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        if !self.ready.is_empty() {
            return Some(now);
        }
        self.dram.next_event_cycle(now)
    }

    fn reset_stats(&mut self) {
        self.dram.reset_stats();
        self.events.clear();
    }

    fn set_telemetry(&mut self, telemetry: Telemetry, partition: u32) {
        self.dram.set_telemetry(telemetry.clone(), partition);
        self.telemetry = telemetry;
        self.partition = partition;
    }

    fn save_state(&self, w: &mut Writer) {
        self.dram.save_state(w);
        self.ready.save(w);
        self.events.save(w);
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.dram.restore_state(r)?;
        self.ready = Vec::load(r)?;
        self.events = Vec::load(r)?;
        Ok(())
    }
}

/// Records an undetected-corruption instant. Outlined from `cycle` so
/// its event allocation stays off the steady-state per-cycle path:
/// faults are rare and the call is telemetry-gated.
#[cold]
fn record_fault_event(
    telemetry: &Telemetry,
    partition: u32,
    now: Cycle,
    class: TrafficClass,
    kind: crate::fault::FaultKind,
) {
    telemetry.record_event(TelemetryEvent {
        cycle: now,
        kind: EventKind::Fault { partition, class: class.label(), kind: kind.label(), detected: Some(false) },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SectorMask;

    fn req(id: u64) -> BackendReq {
        BackendReq { id, line_addr: 0x1000, sectors: SectorMask::single(1), bank: 0 }
    }

    #[test]
    fn read_roundtrip() {
        let mut b = PassthroughBackend::new(24 * 1024, 10, 8);
        assert!(b.can_accept_read());
        b.submit_read(0, req(5));
        let mut got = None;
        for now in 0..50 {
            b.cycle(now);
            if let Some(r) = b.pop_read_response() {
                got = Some(r);
                break;
            }
        }
        assert_eq!(got.expect("read completes").id, 5);
        assert!(b.is_idle());
        assert_eq!(b.dram_stats().class(TrafficClass::Data).reads, 1);
    }

    #[test]
    fn writes_complete_silently() {
        let mut b = PassthroughBackend::new(24 * 1024, 10, 8);
        b.submit_write(0, req(9));
        for now in 0..50 {
            b.cycle(now);
        }
        assert!(b.pop_read_response().is_none());
        assert!(b.is_idle());
        assert_eq!(b.dram_stats().class(TrafficClass::Data).writes, 1);
    }

    #[test]
    fn backpressure_reported() {
        let mut b = PassthroughBackend::new(24 * 1024, 10, 2);
        b.submit_read(0, req(1));
        b.submit_read(0, req(2));
        assert!(!b.can_accept_read());
        assert!(!b.can_accept_write());
    }
}
