//! The memory coalescer: merges the 32 per-thread addresses of a warp
//! memory instruction into the minimal set of line/sector accesses,
//! exactly as GPU hardware does. Used by trace converters and custom
//! kernels; the built-in synthetic workloads emit pre-coalesced accesses.

use crate::types::{Access, Addr, SectorMask, LINE_SIZE};

/// Coalesces per-thread byte addresses (`None` = thread inactive) into
/// line/sector accesses, ordered by first-touching thread.
///
/// Each thread is assumed to access `bytes_per_thread` consecutive bytes
/// (1..=32; accesses never straddle a 32 B sector in real GPUs unless
/// misaligned, which we allow — a straddling access touches both sectors).
///
/// # Panics
///
/// Panics if `bytes_per_thread` is 0 or greater than 128.
pub fn coalesce(threads: &[Option<Addr>], bytes_per_thread: u64) -> Vec<Access> {
    assert!((1..=128).contains(&bytes_per_thread), "unsupported access size");
    let mut out: Vec<Access> = Vec::new();
    for addr in threads.iter().flatten() {
        let first = *addr;
        let last = addr + bytes_per_thread - 1;
        let mut sector_addr = first - first % 32;
        while sector_addr <= last {
            let line = sector_addr & !(LINE_SIZE - 1);
            let mask = SectorMask::single(crate::narrow::u64_to_u32(
                (sector_addr % LINE_SIZE) / 32,
                "sector index within a 128 B line is < 4",
            ));
            match out.iter_mut().find(|a| a.line_addr == line) {
                Some(existing) => existing.sectors = existing.sectors.union(mask),
                None => out.push(Access { line_addr: line, sectors: mask }),
            }
            sector_addr += 32;
        }
    }
    out
}

/// Convenience: coalesces a fully active warp accessing
/// `base + lane * stride`, `bytes_per_thread` bytes each.
pub fn coalesce_strided(base: Addr, stride: u64, bytes_per_thread: u64, lanes: u32) -> Vec<Access> {
    let threads: Vec<Option<Addr>> = (0..lanes as u64).map(|lane| Some(base + lane * stride)).collect();
    coalesce(&threads, bytes_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FULL_SECTOR_MASK;

    #[test]
    fn unit_stride_f32_coalesces_to_one_line() {
        // 32 threads x 4 B consecutive = 128 B = one full line.
        let accesses = coalesce_strided(0x1000, 4, 4, 32);
        assert_eq!(accesses, vec![Access { line_addr: 0x1000, sectors: FULL_SECTOR_MASK }]);
    }

    #[test]
    fn unit_stride_f64_spans_two_lines() {
        // 32 threads x 8 B = 256 B = two full lines.
        let accesses = coalesce_strided(0x1000, 8, 8, 32);
        assert_eq!(accesses.len(), 2);
        assert!(accesses.iter().all(|a| a.sectors == FULL_SECTOR_MASK));
        assert_eq!(accesses[0].line_addr, 0x1000);
        assert_eq!(accesses[1].line_addr, 0x1080);
    }

    #[test]
    fn large_stride_fully_diverges() {
        // Column-major style: each lane in its own line, one sector each.
        let accesses = coalesce_strided(0, 4096, 4, 32);
        assert_eq!(accesses.len(), 32);
        assert!(accesses.iter().all(|a| a.sectors.count() == 1));
    }

    #[test]
    fn half_warp_same_sector_merges() {
        // 16 threads hitting the same 4 bytes -> one sector.
        let threads: Vec<Option<Addr>> = (0..16).map(|_| Some(0x2004)).collect();
        let accesses = coalesce(&threads, 4);
        assert_eq!(accesses, vec![Access { line_addr: 0x2000, sectors: SectorMask::single(0) }]);
    }

    #[test]
    fn inactive_threads_skipped() {
        let mut threads: Vec<Option<Addr>> = vec![None; 32];
        threads[7] = Some(0x80);
        threads[19] = Some(0xA0);
        let accesses = coalesce(&threads, 4);
        assert_eq!(accesses.len(), 1);
        assert_eq!(accesses[0].line_addr, 0x80);
        assert_eq!(accesses[0].sectors, SectorMask(0b0011));
    }

    #[test]
    fn misaligned_access_straddles_sectors() {
        // A 4 B access at sector boundary - 2 touches two sectors.
        let accesses = coalesce(&[Some(0x1E)], 4);
        assert_eq!(accesses.len(), 1);
        assert_eq!(accesses[0].sectors, SectorMask(0b0011));
    }

    #[test]
    fn empty_warp_produces_nothing() {
        assert!(coalesce(&[None; 32], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn zero_size_rejected() {
        let _ = coalesce(&[Some(0)], 0);
    }
}
