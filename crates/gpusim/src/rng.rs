//! A small, dependency-free, deterministic pseudo-random number
//! generator (SplitMix64) used by fault injection and the synthetic
//! workload generator.
//!
//! The simulator must be bit-reproducible across runs and platforms, so
//! all stochastic behavior is derived from explicit seeds through this
//! generator rather than an external crate or OS entropy.

/// A SplitMix64 generator. Passes BigCrush for the word sizes used here
/// and recovers from any seed (including 0) within one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`. Returns 0 for `bound == 0`.
    ///
    /// Uses the widening-multiply technique; the modulo bias is at most
    /// `bound / 2^64`, far below anything observable in simulation.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// True with probability `1/n` (always false for `n == 0`).
    pub fn one_in(&mut self, n: u64) -> bool {
        n != 0 && self.gen_range(n) == 0
    }

    /// The raw generator state, for checkpointing. Restoring it with
    /// [`Rng64::set_state`] resumes the stream exactly.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Overwrites the generator state (checkpoint restore).
    pub fn set_state(&mut self, state: u64) {
        self.state = state;
    }
}

impl secmem_checkpoint::Snapshot for Rng64 {
    fn save(&self, w: &mut secmem_checkpoint::Writer) {
        w.put_u64(self.state);
    }
    fn load(r: &mut secmem_checkpoint::Reader<'_>) -> Result<Self, secmem_checkpoint::CheckpointError> {
        Ok(Self { state: r.get_u64()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_recovers() {
        let mut r = Rng64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            assert!(r.gen_range(13) < 13);
        }
        assert_eq!(r.gen_range(0), 0);
        assert_eq!(r.gen_range(1), 0);
    }

    #[test]
    fn gen_range_covers_values() {
        let mut r = Rng64::new(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }
}
