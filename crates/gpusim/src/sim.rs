//! The top-level simulator: wires SMs, interconnect and memory partitions
//! together and advances them cycle by cycle.

use std::collections::VecDeque;

use secmem_checkpoint::{CheckpointError, Frame, Reader, Snapshot, Writer};
use secmem_telemetry::{EventKind, Telemetry, TelemetryEvent, TelemetrySnapshot};

use crate::backend::MemoryBackend;
use crate::config::{AddressMap, GpuConfig};
use crate::error::{PartitionStall, SimError, StallReport};
use crate::icnt::{DelayQueue, Interconnect};
use crate::kernel::Kernel;
use crate::par::WorkerPool;
use crate::partition::MemPartition;
use crate::sm::{Sm, SmOutput};
use crate::stats::SimReport;
use crate::types::{Cycle, MemRequest};

/// A full-GPU simulation instance.
///
/// `B` is the memory backend type installed in every partition:
/// [`crate::backend::PassthroughBackend`] for the baseline GPU, or the
/// secure memory engine from `secmem-core`.
#[derive(Debug)]
pub struct Simulator<B> {
    cfg: GpuConfig,
    map: AddressMap,
    sms: Vec<Sm>,
    overflow: Vec<VecDeque<MemRequest>>,
    partitions: Vec<MemPartition<B>>,
    icnt: Interconnect,
    now: Cycle,
    /// Set when the forward-progress watchdog fired.
    stall: Option<StallReport>,
    /// Watchdog cursor: the last observed progress signature. A field
    /// (not a `run_checked` local) so chunked runs — and checkpoint
    /// resume — observe the identical stall window as one long run.
    wd_last_sig: (u64, u64, u64),
    /// Watchdog cursor: the last cycle at which the signature changed.
    wd_last_progress: Cycle,
    /// Telemetry sink shared with every partition (disabled by default).
    telemetry: Telemetry,
    /// Periodic sampling state; present only when telemetry is enabled,
    /// so the per-step cost of disabled telemetry is one `Option` check.
    sampler: Option<SimSampler>,
    /// Per-SM request buffers for the phased step: SMs issue into their
    /// own slot during the parallel phase; the coordinator drains the
    /// slots onto the interconnect in SM-id order afterwards.
    sm_out: Vec<SmOutput>,
    /// Per-partition telemetry staging sinks (empty until
    /// [`Simulator::set_telemetry`]). Partitions record into their own
    /// sink during the parallel phase; the coordinator commits the
    /// buffered events to the master sink in partition-id order, so the
    /// event stream is byte-identical to the serial schedule.
    staging: Vec<Telemetry>,
    /// Thread count for the per-entity phase of [`Simulator::step`].
    threads: usize,
    /// Worker pool backing `threads > 1`; `None` runs inline.
    pool: Option<WorkerPool>,
    /// Precomputed phase-A chunk assignment, one id per step entity
    /// (SMs first, then partitions), dealing each entity kind
    /// round-robin across chunks so every worker gets an even share of
    /// heavy SM steps and light partition steps. Rebuilt by
    /// [`Simulator::set_threads`]; empty while running inline.
    phase_groups: Vec<u32>,
}

/// Metric names for the per-class DRAM byte series, in
/// [`crate::types::TrafficClass::ALL`] order.
const CLASS_SERIES: [&str; 4] = ["dram.data_bytes", "dram.ctr_bytes", "dram.mac_bytes", "dram.bmt_bytes"];

/// Counter values at the previous sample, for windowed deltas and rates.
#[derive(Debug, Clone, Copy, Default)]
struct PrevCounters {
    class_bytes: [u64; 4],
    row_hits: u64,
    row_misses: u64,
    l1_hits: u64,
    l1_accesses: u64,
    l2_hits: u64,
    l2_accesses: u64,
    mdc_hits: u64,
    mdc_accesses: u64,
}

/// Periodic sampling state driven by [`Simulator::step`].
#[derive(Debug)]
struct SimSampler {
    interval: Cycle,
    next_at: Cycle,
    last_at: Cycle,
    prev: PrevCounters,
}

impl<B: MemoryBackend> Simulator<B> {
    /// Builds a simulator for `kernel` with one backend per partition,
    /// produced by `backend_factory(partition_id, &cfg)`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation; use
    /// [`Simulator::try_new`] for a typed error instead.
    pub fn new(
        cfg: GpuConfig,
        kernel: &dyn Kernel,
        backend_factory: impl FnMut(u32, &GpuConfig) -> B,
    ) -> Self {
        match Self::try_new(cfg, kernel, backend_factory) {
            Ok(sim) => sim,
            // lint:allow(H1): documented panicking convenience constructor; try_new is the typed-error form
            Err(e) => panic!("invalid GPU configuration: {e}"),
        }
    }

    /// Builds a simulator, returning a typed error if the configuration
    /// fails validation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] naming the violated constraint.
    pub fn try_new(
        cfg: GpuConfig,
        kernel: &dyn Kernel,
        mut backend_factory: impl FnMut(u32, &GpuConfig) -> B,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        let active = kernel.active_sms(cfg.num_sms).min(cfg.num_sms);
        let sms = (0..cfg.num_sms)
            .map(|sm| {
                let warps = if sm < active { kernel.warps_per_sm(sm).min(cfg.max_warps_per_sm) } else { 0 };
                let programs = (0..warps).map(|w| kernel.spawn(sm, w)).collect();
                Sm::new(sm, &cfg, programs)
            })
            .collect();
        let partitions =
            (0..cfg.num_partitions).map(|p| MemPartition::new(p, &cfg, backend_factory(p, &cfg))).collect();
        Ok(Self {
            map: AddressMap::new(&cfg),
            icnt: Interconnect::new(&cfg),
            sms,
            overflow: vec![VecDeque::new(); cfg.num_sms as usize],
            partitions,
            sm_out: (0..cfg.num_sms).map(|_| SmOutput::default()).collect(),
            cfg,
            now: 0,
            stall: None,
            wd_last_sig: (0, 0, 0),
            wd_last_progress: 0,
            telemetry: Telemetry::disabled(),
            sampler: None,
            staging: Vec::new(),
            threads: 1,
            pool: None,
            phase_groups: Vec::new(),
        })
    }

    /// Sets how many OS threads [`Simulator::step`] fans its per-entity
    /// phase over (clamped to at least 1; 1 — the default — runs fully
    /// inline). This is purely a wall-clock knob: the same phase
    /// functions run in every configuration and all cross-entity effects
    /// are applied by the coordinating thread in canonical entity order,
    /// so reports, telemetry and checkpoints are byte-identical at every
    /// thread count.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        self.threads = threads;
        if self.pool.as_ref().map_or(0, WorkerPool::chunks) != threads {
            self.pool = (threads > 1).then(|| WorkerPool::new(threads - 1));
        }
        // The grouped assignment is pure load balancing (phase A is
        // order-free), computed once here rather than per cycle.
        self.phase_groups = match &self.pool {
            Some(pool) => phase_group_ids(self.sms.len(), self.partitions.len(), pool.chunks()),
            None => Vec::new(),
        };
    }

    /// The configured step-phase thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a telemetry sink. Each partition (and from there each
    /// backend and DRAM channel) receives its own *staging* sink; the
    /// step loop commits staged events to the master in partition-id
    /// order every cycle, which keeps the event stream identical to the
    /// serial schedule even when partitions step on worker threads. An
    /// enabled sink arms the periodic sampler; a disabled one detaches
    /// everything.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.staging.clear();
        for p in &mut self.partitions {
            let stage = telemetry.staging();
            p.set_telemetry(stage.clone());
            self.staging.push(stage);
        }
        let prev = self.gather_counters();
        let interval = telemetry.sample_interval().max(1);
        self.sampler = telemetry.is_enabled().then_some(SimSampler {
            interval,
            next_at: self.now + interval,
            last_at: self.now,
            prev,
        });
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle (disabled unless
    /// [`Simulator::set_telemetry`] installed an enabled one).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Everything telemetry recorded so far; `None` when disabled.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.telemetry.snapshot()
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Access to a partition (e.g. to inspect a secure backend).
    pub fn partition(&self, index: u32) -> &MemPartition<B> {
        &self.partitions[index as usize]
    }

    /// Advances the whole GPU by one cycle.
    ///
    /// The cycle is phased so the per-entity work can fan out over
    /// [`Simulator::set_threads`] OS threads without changing results —
    /// the same phase functions run at every thread count, and all
    /// cross-entity effects are applied by the coordinating thread in
    /// canonical entity order:
    ///
    /// - **Phase A (parallel over SMs and partitions):** each SM drains
    ///   its response lane and — when it has no overflow to retry —
    ///   issues into its private [`SmOutput`] slot; each partition
    ///   drains its request lane and advances, leaving responses in its
    ///   own buffer. Every entity touches only its own state plus the
    ///   interconnect lanes it exclusively owns.
    /// - **Phase B (coordinator, SM-id order):** overflow retries, the
    ///   deferred SMs' cycles, and the buffered requests go onto the
    ///   interconnect exactly as the serial loop dispatched them.
    ///   Pushes use [`Interconnect::push_request_occupied`] so
    ///   accept/reject decisions replay the pre-pop queue occupancy the
    ///   serial schedule observed (phase A popped arrivals the serial
    ///   loop would only have popped after these pushes; with the
    ///   interconnect latency ≥ 1 the pushes themselves can never be
    ///   popped in the same cycle, so occupancy is the only coupling).
    /// - **Phase C (coordinator, partition-id order):** responses are
    ///   forwarded to their SMs and staged telemetry events are
    ///   committed to the master sink.
    pub fn step(&mut self) {
        let now = self.now;
        let l1_ports = self.cfg.l1_ports as usize;

        // Phase A: per-entity work, fanned out when a pool is attached.
        {
            let Self { sms, overflow, partitions, icnt, sm_out, pool, phase_groups, .. } = self;
            let (to_part, to_sm) = icnt.split_lanes();
            // lint:allow(H2): one bounded, short-lived buffer of borrows per cycle; the buffers it points into are reused
            let mut entities: Vec<StepEntity<'_, B>> = Vec::with_capacity(sms.len() + partitions.len());
            for (((sm, lane), out), overflow) in
                sms.iter_mut().zip(to_sm.iter_mut()).zip(sm_out.iter_mut()).zip(overflow.iter())
            {
                entities.push(StepEntity::Sm { sm, lane, out, has_overflow: !overflow.is_empty(), l1_ports });
            }
            for (part, lane) in partitions.iter_mut().zip(to_part.iter_mut()) {
                entities.push(StepEntity::Partition { part, lane });
            }
            match pool {
                Some(pool) => {
                    // lint:allow(T1): the entity step reaches warp-program instruction fetch, whose coalesced-access list is heap-backed by design (trace format)
                    pool.for_each_grouped(&mut entities, phase_groups, &|_, e| e.phase_a(now))
                }
                None => {
                    for e in &mut entities {
                        // lint:allow(T1): same instruction-fetch access-list allocation as the pooled branch
                        e.phase_a(now);
                    }
                }
            }
        }

        // Phase B: dispatch onto the interconnect in SM-id order.
        for (i, sm) in self.sms.iter_mut().enumerate() {
            let overflow = &mut self.overflow[i];
            let out = &mut self.sm_out[i];
            if !overflow.is_empty() {
                // Deferred in phase A: replay the serial path — retry
                // requests that could not be placed last cycle (a reject
                // goes back to the queue head untouched), then issue
                // with the gated port count.
                while let Some(req) = overflow.pop_front() {
                    let p = self.map.partition_of(req.line_addr);
                    if let Err(req) = self.icnt.push_request_occupied(now, p, req) {
                        overflow.push_front(req);
                        break;
                    }
                }
                let room = if overflow.is_empty() { l1_ports } else { 0 };
                out.requests.clear();
                sm.cycle(now, room, out);
            }
            for req in out.requests.drain(..) {
                let p = self.map.partition_of(req.line_addr);
                if let Err(back) = self.icnt.push_request_occupied(now, p, req) {
                    overflow.push_back(back);
                }
            }
        }

        // Phase C: forward responses and commit staged telemetry, both
        // in partition-id order.
        for part in &mut self.partitions {
            for resp in part.responses.drain(..) {
                if let Some(warp) = resp.warp {
                    self.icnt.push_response(now, warp.sm, resp);
                }
            }
        }
        if self.telemetry.is_enabled() {
            for stage in &self.staging {
                for ev in stage.take_events() {
                    self.telemetry.record_event(ev);
                }
            }
        }

        self.now += 1;
        // lint:allow(T1): sampling fires once per sample-interval, not per cycle; gauge-name formatting is amortized across the window
        self.maybe_sample();
    }

    /// Earliest cycle at or after `now` at which any component can make
    /// progress, or `None` when every component is event-less (drained,
    /// or deadlocked waiting on responses that will never come).
    fn next_activity_cycle(&self) -> Option<Cycle> {
        let now = self.now;
        let mut next: Option<Cycle> = None;
        let mut merge = |c: Cycle| next = Some(next.map_or(c, |n: Cycle| n.min(c)));
        if self.overflow.iter().any(|q| !q.is_empty()) {
            merge(now);
        }
        for sm in &self.sms {
            if let Some(c) = sm.next_event_cycle(now) {
                merge(c);
            }
        }
        if let Some(c) = self.icnt.next_event_cycle(now) {
            merge(c);
        }
        for p in &self.partitions {
            if let Some(c) = p.next_event_cycle(now) {
                merge(c);
            }
        }
        next
    }

    /// Fast-forwards over a quiescent gap: jumps `now` to the next cycle
    /// at which any component has an event, capped at `limit` (and at the
    /// sampler's next due cycle, so time series keep their cadence).
    ///
    /// Correctness contract: every skipped cycle is one where [`Simulator::step`]
    /// would have changed no state other than memory-stall accounting,
    /// which [`Sm::account_idle_stall`] replays exactly. When no component
    /// reports an event while work is still outstanding (a true deadlock,
    /// e.g. under fault injection), the jump proceeds to `limit` so the
    /// watchdog observes the identical stall window.
    fn advance_idle(&mut self, limit: Cycle) {
        let mut target = match self.next_activity_cycle() {
            Some(c) => c.min(limit),
            None => limit,
        };
        if let Some(s) = &self.sampler {
            target = target.min(s.next_at);
        }
        if target <= self.now {
            return;
        }
        let gap = target - self.now;
        let now = self.now;
        for sm in &mut self.sms {
            sm.account_idle_stall(now, gap);
        }
        self.now = target;
        // lint:allow(T1): interval-gated, as in step()
        self.maybe_sample();
    }

    /// Takes a periodic sample when one is due. Disabled telemetry costs
    /// one `Option` discriminant check here.
    fn maybe_sample(&mut self) {
        let due = matches!(&self.sampler, Some(s) if self.now >= s.next_at);
        if due {
            self.take_sample();
        }
    }

    /// Closes the final (possibly partial) sampling window so series
    /// totals cover the whole run.
    fn final_sample(&mut self) {
        let due = matches!(&self.sampler, Some(s) if self.now > s.last_at);
        if due {
            self.take_sample();
        }
    }

    /// Reads every counter the sampler windows over.
    fn gather_counters(&self) -> PrevCounters {
        let mut c = PrevCounters::default();
        for sm in &self.sms {
            let l1 = sm.l1_stats();
            c.l1_hits += l1.hits;
            c.l1_accesses += l1.hits + l1.misses;
        }
        for p in &self.partitions {
            let d = p.backend().dram_stats();
            for (i, cs) in d.per_class.iter().enumerate() {
                c.class_bytes[i] += cs.bytes_read + cs.bytes_written;
            }
            c.row_hits += d.row_hits;
            c.row_misses += d.row_misses;
            let l2 = p.l2_stats();
            c.l2_hits += l2.hits;
            c.l2_accesses += l2.hits + l2.misses;
            let engine = p.backend().engine_stats();
            for m in &engine.meta {
                c.mdc_hits += m.cache.hits;
                c.mdc_accesses += m.cache.hits + m.cache.misses;
            }
        }
        c
    }

    /// Records one sample: per-class DRAM byte deltas, windowed hit
    /// rates, occupancy gauges and active warps.
    fn take_sample(&mut self) {
        let Some(mut sampler) = self.sampler.take() else { return };
        let now = self.now;
        let cur = self.gather_counters();
        let prev = sampler.prev;
        for (i, name) in CLASS_SERIES.iter().enumerate() {
            let delta = cur.class_bytes[i].saturating_sub(prev.class_bytes[i]);
            self.telemetry.record_delta(name, now, delta as f64);
        }
        self.record_rate(
            "dram.row_hit_rate",
            now,
            cur.row_hits.saturating_sub(prev.row_hits),
            (cur.row_hits + cur.row_misses).saturating_sub(prev.row_hits + prev.row_misses),
        );
        self.record_rate(
            "l1.hit_rate",
            now,
            cur.l1_hits.saturating_sub(prev.l1_hits),
            cur.l1_accesses.saturating_sub(prev.l1_accesses),
        );
        self.record_rate(
            "l2.hit_rate",
            now,
            cur.l2_hits.saturating_sub(prev.l2_hits),
            cur.l2_accesses.saturating_sub(prev.l2_accesses),
        );
        self.record_rate(
            "mdc.hit_rate",
            now,
            cur.mdc_hits.saturating_sub(prev.mdc_hits),
            cur.mdc_accesses.saturating_sub(prev.mdc_accesses),
        );
        let mut mdc_occupancy = 0usize;
        for p in &self.partitions {
            let i = p.id();
            self.telemetry.record_gauge(&format!("part{i}.input_q"), now, p.input_occupancy() as f64);
            self.telemetry.record_gauge(&format!("part{i}.wb_q"), now, p.wb_occupancy() as f64);
            self.telemetry.record_gauge(&format!("part{i}.l2_mshr"), now, p.mshr_occupancy() as f64);
            self.telemetry.record_gauge(
                &format!("part{i}.backend_pending"),
                now,
                p.backend().pending_work() as f64,
            );
            mdc_occupancy += p.meta_mshr_occupancy();
        }
        self.telemetry.record_gauge("mdc.mshr_occupancy", now, mdc_occupancy as f64);
        let warps: u64 = self.sms.iter().map(|sm| sm.unfinished_warps() as u64).sum();
        self.telemetry.record_gauge("active_warps", now, warps as f64);
        sampler.prev = cur;
        sampler.last_at = now;
        sampler.next_at = now + sampler.interval;
        self.sampler = Some(sampler);
    }

    /// Records a windowed rate gauge, skipping empty windows (no
    /// accesses means no meaningful rate).
    fn record_rate(&self, name: &str, cycle: Cycle, hits: u64, accesses: u64) {
        if accesses > 0 {
            self.telemetry.record_gauge(name, cycle, hits as f64 / accesses as f64);
        }
    }

    /// Records a phase begin/end event when telemetry is enabled.
    fn phase_event(&self, begin: bool, name: &str) {
        if self.telemetry.is_enabled() {
            let kind = if begin {
                EventKind::PhaseBegin { name: name.to_string() }
            } else {
                EventKind::PhaseEnd { name: name.to_string() }
            };
            self.telemetry.record_event(TelemetryEvent { cycle: self.now, kind });
        }
    }

    /// Runs until `max_cycles` have elapsed or every warp has retired and
    /// the memory system has drained. Returns the report.
    ///
    /// A forward-progress watchdog (see [`GpuConfig::watchdog_cycles`])
    /// guards the loop: if the machine dead- or livelocks, the run stops
    /// early and the report carries a [`StallReport`] in
    /// [`SimReport::stall`]. Use [`Simulator::run_checked`] to receive
    /// the stall as a typed error instead.
    pub fn run(&mut self, max_cycles: Cycle) -> SimReport {
        match self.run_checked(max_cycles) {
            Ok(report) => report,
            // The stall is recorded in `self.stall`; the report carries it.
            Err(_) => self.report(),
        }
    }

    /// Like [`Simulator::run`], but surfaces a watchdog stall as a typed
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] with a diagnostic [`StallReport`]
    /// when no warp instruction issues and no DRAM channel performs any
    /// service for [`GpuConfig::watchdog_cycles`] consecutive cycles
    /// while work is still outstanding.
    pub fn run_checked(&mut self, max_cycles: Cycle) -> Result<SimReport, Box<SimError>> {
        let window = self.cfg.watchdog_cycles;
        self.phase_event(true, "run");
        while self.now < max_cycles {
            self.step();
            if self.finished() {
                break;
            }
            let sig = self.progress_signature();
            if sig != self.wd_last_sig {
                self.wd_last_sig = sig;
                self.wd_last_progress = self.now;
                continue;
            }
            if window > 0 && self.now - self.wd_last_progress >= window {
                let stall = self.stall_report(self.now - self.wd_last_progress);
                self.stall = Some(stall.clone());
                if self.telemetry.is_enabled() {
                    self.telemetry.record_event(TelemetryEvent {
                        cycle: self.now,
                        kind: EventKind::Stall { detail: stall.to_string() },
                    });
                }
                self.final_sample();
                self.phase_event(false, "run");
                return Err(Box::new(SimError::Stalled(stall)));
            }
            // Idle-skip: the cycle made no externally visible progress, so
            // fast-forward to the next component event. The cap keeps the
            // watchdog honest — the next real step still lands exactly on
            // the cycle where `now - last_progress == window`.
            let mut limit = max_cycles;
            if window > 0 {
                limit = limit.min(self.wd_last_progress + window - 1);
            }
            self.advance_idle(limit);
        }
        self.final_sample();
        self.phase_event(false, "run");
        Ok(self.report())
    }

    /// Runs `warmup` cycles, discards all statistics, then runs until
    /// `max_cycles` total. The report covers only the measured window.
    ///
    /// If the kernel finishes before the warmup window elapses the
    /// measured window is empty; the report is then flagged with
    /// [`SimReport::warmup_truncated`] and its statistics must not be
    /// interpreted.
    pub fn run_with_warmup(&mut self, warmup: Cycle, max_cycles: Cycle) -> SimReport {
        let truncated = self.warm_up(warmup);
        let mut report = self.run(max_cycles);
        report.cycles = self.now.saturating_sub(warmup);
        report.warmup_truncated = truncated;
        debug_assert!(
            !truncated || report.cycles == 0 || self.now >= warmup,
            "warmup accounting: now={} warmup={warmup}",
            self.now
        );
        report
    }

    /// Runs the warmup window alone: `warmup` cycles (or until the
    /// kernel finishes early), then discards all statistics gathered so
    /// far. Returns true when the window was truncated — the kernel
    /// retired before `warmup` elapsed — in which case a subsequent
    /// measured run is empty and must not be interpreted.
    ///
    /// The post-warmup machine is exactly what
    /// [`Simulator::save_checkpoint`] captures, so sweeps whose jobs
    /// share an identical (kernel, configuration, warmup) prefix can
    /// warm one simulator, snapshot it, and fork that snapshot into the
    /// remaining jobs instead of re-simulating the prefix each time.
    pub fn warm_up(&mut self, warmup: Cycle) -> bool {
        self.phase_event(true, "warmup");
        let mut last_sig = self.progress_signature();
        while self.now < warmup {
            self.step();
            if self.finished() {
                break;
            }
            let sig = self.progress_signature();
            if sig != last_sig {
                last_sig = sig;
                continue;
            }
            self.advance_idle(warmup);
        }
        let truncated = self.now < warmup || self.finished();
        self.phase_event(false, "warmup");
        self.reset_stats();
        truncated
    }

    /// A value that changes whenever the machine makes forward progress:
    /// instructions issued or DRAM service/queue activity. Deliberately
    /// excludes retry-style counters (e.g. DRAM rejections) that advance
    /// even while livelocked.
    fn progress_signature(&self) -> (u64, u64, u64) {
        let instructions: u64 = self.sms.iter().map(|sm| sm.instructions).sum();
        let mut dram_busy = 0u64;
        let mut l2_activity = 0u64;
        for p in &self.partitions {
            let d = p.backend().dram_stats();
            dram_busy += d.busy_fp;
            let l2 = p.l2_stats();
            l2_activity += l2.hits + l2.misses;
        }
        (instructions, dram_busy, l2_activity)
    }

    /// Snapshot of every queue the watchdog cares about.
    fn stall_report(&self, stalled_for: Cycle) -> StallReport {
        StallReport {
            cycle: self.now,
            stalled_for,
            unfinished_warps: self.sms.iter().map(|sm| sm.unfinished_warps() as u64).sum(),
            sm_overflow: self.overflow.iter().map(VecDeque::len).collect(),
            partitions: self
                .partitions
                .iter()
                .map(|p| PartitionStall {
                    input: p.input.len(),
                    writebacks: p.wb_occupancy(),
                    mshrs: p.mshr_occupancy(),
                    backend_pending: p.backend().pending_work(),
                    backend_idle: p.backend().is_idle(),
                })
                .collect(),
            icnt_requests: self.icnt.request_depths(),
            icnt_responses: self.icnt.response_depths(),
        }
    }

    /// Discards all statistics gathered so far (simulation state — cache
    /// contents, queues, warp positions — is preserved).
    pub fn reset_stats(&mut self) {
        for sm in &mut self.sms {
            sm.reset_stats();
        }
        for p in &mut self.partitions {
            p.reset_stats();
        }
        // Rebaseline the sampler and drop pre-reset samples (events are
        // kept) so series totals keep reconciling with the measured
        // window's aggregates.
        if let Some(s) = &mut self.sampler {
            s.prev = PrevCounters::default();
            s.last_at = self.now;
            s.next_at = self.now + s.interval;
        }
        // The statistics reset changed the progress signature without any
        // forward progress; re-baseline the watchdog so it measures from
        // here rather than crediting the reset as activity.
        self.wd_last_sig = self.progress_signature();
        self.wd_last_progress = self.now;
        self.telemetry.clear_series();
    }

    /// True when all warps retired and all queues drained.
    pub fn finished(&self) -> bool {
        self.sms.iter().all(Sm::finished)
            && self.overflow.iter().all(VecDeque::is_empty)
            && self.icnt.is_idle()
            && self.partitions.iter().all(MemPartition::is_idle)
    }

    /// Produces the aggregated end-of-run report.
    pub fn report(&self) -> SimReport {
        let mut report = SimReport { cycles: self.now, ..SimReport::default() };
        for sm in &self.sms {
            report.warp_instructions += sm.instructions;
            report.thread_instructions += sm.instructions * self.cfg.threads_per_warp as u64;
            report.mem_stall_cycles += sm.mem_stall_cycles;
            report.warps += sm.warp_count() as u64;
            let l1 = sm.l1_stats();
            report.l1.hits += l1.hits;
            report.l1.misses += l1.misses;
            report.l1.fills += l1.fills;
            report.l1.evictions += l1.evictions;
            report.l1.dirty_evictions += l1.dirty_evictions;
        }
        for part in &self.partitions {
            let l2 = part.l2_stats();
            report.l2.hits += l2.hits;
            report.l2.misses += l2.misses;
            report.l2.fills += l2.fills;
            report.l2.evictions += l2.evictions;
            report.l2.dirty_evictions += l2.dirty_evictions;
            let m = part.l2_mshr_stats();
            report.l2_mshr.primary += m.primary;
            report.l2_mshr.secondary += m.secondary;
            report.l2_mshr.stalls += m.stalls;
            let d = part.backend().dram_stats();
            for (i, c) in d.per_class.iter().enumerate() {
                report.dram.per_class[i].reads += c.reads;
                report.dram.per_class[i].writes += c.writes;
                report.dram.per_class[i].bytes_read += c.bytes_read;
                report.dram.per_class[i].bytes_written += c.bytes_written;
            }
            report.dram.busy_fp += d.busy_fp;
            report.dram.rejected += d.rejected;
            report.engine.merge(&part.backend().engine_stats());
            report.faults.merge(&part.backend().fault_stats());
        }
        report.stall = self.stall.clone();
        if let Some(snap) = self.telemetry.snapshot() {
            let summary = secmem_telemetry::spark::summary(&snap);
            if !summary.is_empty() {
                report.telemetry_summary = Some(summary);
            }
        }
        report
    }

    /// FNV-1a fingerprint of the configuration's `Debug` rendering.
    /// Stored in every checkpoint frame so a snapshot can only be
    /// restored into a simulator built from the identical configuration.
    pub fn config_fingerprint(&self) -> u64 {
        secmem_checkpoint::fnv1a(format!("{:?}", self.cfg).as_bytes())
    }

    /// Captures the complete simulator state into a checkpoint frame.
    ///
    /// The frame covers every SM (warp programs, L1, MSHRs, dispatch and
    /// return queues), the interconnect, every partition (L2 banks,
    /// backend, staging queues) and the watchdog/sampler cursors.
    /// Restoring it into a simulator freshly built from the same
    /// configuration, kernel and backend factory — then running to the
    /// end — produces a report byte-identical to an uninterrupted run
    /// (with telemetry disabled; an enabled sampler closes its current
    /// window at the snapshot cycle, which shifts subsequent sample
    /// boundaries).
    ///
    /// A pending [`StallReport`] is deliberately *not* captured: a
    /// resumed stalled machine re-trips its watchdog deterministically.
    pub fn save_checkpoint(&self) -> Frame {
        let mut w = Writer::new();
        w.tag(TAG_SMS);
        w.put_usize(self.sms.len());
        for sm in &self.sms {
            sm.save_state(&mut w);
        }
        w.tag(TAG_OVERFLOW);
        self.overflow.save(&mut w);
        w.tag(TAG_PARTITIONS);
        w.put_usize(self.partitions.len());
        for p in &self.partitions {
            p.save_state(&mut w);
        }
        w.tag(TAG_ICNT);
        self.icnt.save_state(&mut w);
        w.tag(TAG_WATCHDOG);
        self.wd_last_sig.save(&mut w);
        w.put_u64(self.wd_last_progress);
        w.tag(TAG_SAMPLER);
        match &self.sampler {
            Some(s) => {
                w.put_bool(true);
                w.put_u64(s.interval);
                w.put_u64(s.next_at);
                w.put_u64(s.last_at);
                s.prev.save(&mut w);
            }
            None => w.put_bool(false),
        }
        Frame { config_fp: self.config_fingerprint(), cycle: self.now, payload: w.into_bytes() }
    }

    /// Restores a checkpoint captured by [`Simulator::save_checkpoint`]
    /// into this simulator, which must have been freshly built from the
    /// identical configuration, kernel and backend factory.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::ConfigMismatch`] when the frame was captured
    /// under a different configuration; any decode or validation error
    /// otherwise. On error the simulator may be partially overwritten
    /// and must be discarded.
    pub fn restore_checkpoint(&mut self, frame: &Frame) -> Result<(), CheckpointError> {
        let expected = self.config_fingerprint();
        if frame.config_fp != expected {
            return Err(CheckpointError::ConfigMismatch { stored: frame.config_fp, expected });
        }
        let mut r = Reader::new(&frame.payload);
        r.expect_tag(TAG_SMS)?;
        let sms = r.get_usize()?;
        if sms != self.sms.len() {
            return Err(CheckpointError::Malformed(format!(
                "simulator has {} SMs, checkpoint has {sms}",
                self.sms.len()
            )));
        }
        for sm in &mut self.sms {
            sm.restore_state(&mut r)?;
        }
        r.expect_tag(TAG_OVERFLOW)?;
        let overflow: Vec<VecDeque<MemRequest>> = Vec::load(&mut r)?;
        if overflow.len() != self.overflow.len() {
            return Err(CheckpointError::Malformed(format!(
                "simulator has {} overflow queues, checkpoint has {}",
                self.overflow.len(),
                overflow.len()
            )));
        }
        self.overflow = overflow;
        r.expect_tag(TAG_PARTITIONS)?;
        let parts = r.get_usize()?;
        if parts != self.partitions.len() {
            return Err(CheckpointError::Malformed(format!(
                "simulator has {} partitions, checkpoint has {parts}",
                self.partitions.len()
            )));
        }
        for p in &mut self.partitions {
            p.restore_state(&mut r)?;
        }
        r.expect_tag(TAG_ICNT)?;
        self.icnt.restore_state(&mut r)?;
        r.expect_tag(TAG_WATCHDOG)?;
        self.wd_last_sig = Snapshot::load(&mut r)?;
        self.wd_last_progress = r.get_u64()?;
        r.expect_tag(TAG_SAMPLER)?;
        let has_sampler = r.get_bool()?;
        if has_sampler != self.sampler.is_some() {
            return Err(CheckpointError::Malformed(format!(
                "checkpoint telemetry sampler {} but simulator sampler {}",
                if has_sampler { "present" } else { "absent" },
                if self.sampler.is_some() { "present" } else { "absent" },
            )));
        }
        if let Some(s) = &mut self.sampler {
            s.interval = r.get_u64()?.max(1);
            s.next_at = r.get_u64()?;
            s.last_at = r.get_u64()?;
            s.prev = PrevCounters::restore(&mut r)?;
        }
        r.expect_end()?;
        self.now = frame.cycle;
        self.stall = None;
        Ok(())
    }
}

/// Section tags inside a simulator checkpoint payload, so encoder and
/// decoder drift fails loudly instead of misreading bytes.
const TAG_SMS: u32 = 0x534D_5F30;
const TAG_OVERFLOW: u32 = 0x4F56_465F;
const TAG_PARTITIONS: u32 = 0x5052_545F;
const TAG_ICNT: u32 = 0x4943_4E54;
const TAG_WATCHDOG: u32 = 0x5744_4F47;
const TAG_SAMPLER: u32 = 0x534D_504C;

impl PrevCounters {
    fn save(&self, w: &mut Writer) {
        self.class_bytes.save(w);
        w.put_u64(self.row_hits);
        w.put_u64(self.row_misses);
        w.put_u64(self.l1_hits);
        w.put_u64(self.l1_accesses);
        w.put_u64(self.l2_hits);
        w.put_u64(self.l2_accesses);
        w.put_u64(self.mdc_hits);
        w.put_u64(self.mdc_accesses);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(Self {
            class_bytes: <[u64; 4]>::load(r)?,
            row_hits: r.get_u64()?,
            row_misses: r.get_u64()?,
            l1_hits: r.get_u64()?,
            l1_accesses: r.get_u64()?,
            l2_hits: r.get_u64()?,
            l2_accesses: r.get_u64()?,
            mdc_hits: r.get_u64()?,
            mdc_accesses: r.get_u64()?,
        })
    }
}

/// Chunk assignment for the phase-A entity list (SMs first, then
/// partitions): each entity kind is dealt round-robin across chunks so
/// every worker gets an even share of heavy SM steps and light
/// partition steps. A contiguous split would hand all SMs to the early
/// chunks and all partitions to the late ones, serialising the run on
/// the SM-heavy workers. Computed once per thread-count change, not per
/// cycle.
fn phase_group_ids(sms: usize, partitions: usize, chunks: usize) -> Vec<u32> {
    let chunks = chunks.max(1);
    let mut groups = Vec::with_capacity(sms + partitions);
    for i in 0..sms {
        groups.push(crate::narrow::usize_to_u32(i % chunks, "reduced mod chunk count"));
    }
    for p in 0..partitions {
        groups.push(crate::narrow::usize_to_u32(p % chunks, "reduced mod chunk count"));
    }
    groups
}

/// One unit of phase-A work: an SM or a partition, bundled with the
/// interconnect lane it exclusively owns for the cycle. The simulator
/// builds one entity per SM and per partition each step and hands the
/// slice to [`WorkerPool::for_each`]; every entity is independent of
/// every other, which is what makes the fan-out order-free.
enum StepEntity<'a, B> {
    /// An SM with its response lane and private request buffer.
    Sm {
        sm: &'a mut Sm,
        lane: &'a mut DelayQueue<MemRequest>,
        out: &'a mut SmOutput,
        /// Rejected requests from last cycle are waiting; the retry and
        /// this SM's `cycle` must run on the coordinator (phase B)
        /// because the retry pushes onto shared interconnect queues.
        has_overflow: bool,
        l1_ports: usize,
    },
    /// A partition with its request lane.
    Partition { part: &'a mut MemPartition<B>, lane: &'a mut DelayQueue<MemRequest> },
}

impl<B: MemoryBackend> StepEntity<'_, B> {
    /// The per-entity slice of one cycle (see [`Simulator::step`]).
    /// Touches only the entity's own state and lane, so it is safe to
    /// run concurrently with any other entity's `phase_a`.
    fn phase_a(&mut self, now: Cycle) {
        match self {
            StepEntity::Sm { sm, lane, out, has_overflow, l1_ports } => {
                // Deliver memory responses, then issue. Responses pushed
                // this cycle (phase C) ride the ≥ 1-cycle interconnect
                // latency, so this drain sees exactly what the serial
                // schedule saw.
                while let Some(resp) = lane.pop(now) {
                    sm.on_response(&resp);
                }
                if !*has_overflow {
                    out.requests.clear();
                    sm.cycle(now, *l1_ports, out);
                }
            }
            StepEntity::Partition { part, lane } => {
                while !part.input_full() {
                    let Some(req) = lane.pop(now) else { break };
                    part.input.push_back(req);
                }
                // A partition with no event due this cycle would run a
                // no-op `cycle` (same event model `advance_idle` skips
                // whole steps on); responses only ever appear as a
                // result of `cycle`.
                if part.next_event_cycle(now) == Some(now) {
                    part.cycle(now);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PassthroughBackend;
    use crate::kernel::StreamKernel;
    use crate::types::TrafficClass;

    fn run_stream(alu_per_mem: u32, cycles: Cycle) -> SimReport {
        let cfg = GpuConfig::small();
        let kernel = StreamKernel { alu_per_mem, bytes_per_warp: 1 << 20, warps: 16 };
        let mut sim = Simulator::new(cfg, &kernel, |_, c| PassthroughBackend::from_config(c));
        sim.run(cycles)
    }

    #[test]
    fn streaming_kernel_makes_progress() {
        let report = run_stream(4, 20_000);
        assert!(report.warp_instructions > 1000, "issued {}", report.warp_instructions);
        assert!(report.dram.class(TrafficClass::Data).reads > 100);
        assert!(report.ipc() > 0.0);
    }

    #[test]
    fn memory_bound_kernel_saturates_bandwidth() {
        let report = run_stream(0, 30_000);
        let cfg = GpuConfig::small();
        let util = report.bandwidth_utilization(&cfg);
        assert!(util > 0.5, "bandwidth utilization only {util:.3}");
    }

    #[test]
    fn compute_bound_kernel_low_bandwidth() {
        let report = run_stream(1000, 20_000);
        let cfg = GpuConfig::small();
        let util = report.bandwidth_utilization(&cfg);
        assert!(util < 0.2, "expected low bandwidth, got {util:.3}");
        // IPC should be near peak: every SM issues almost every cycle.
        assert!(report.ipc() > 0.5 * cfg.peak_ipc(), "ipc {}", report.ipc());
    }

    #[test]
    fn warmup_discards_early_statistics() {
        let cfg = GpuConfig::small();
        let kernel = StreamKernel { alu_per_mem: 2, bytes_per_warp: 1 << 20, warps: 8 };
        let mut sim = Simulator::new(cfg.clone(), &kernel, |_, c| PassthroughBackend::from_config(c));
        let warm = sim.run_with_warmup(4_000, 8_000);
        assert_eq!(warm.cycles, 4_000, "report covers the measured window only");
        let mut sim2 = Simulator::new(cfg, &kernel, |_, c| PassthroughBackend::from_config(c));
        let cold = sim2.run(8_000);
        // The warmed window has no cold-start ramp: its rate can only be
        // higher or equal, and it must have made progress.
        assert!(warm.thread_instructions > 0);
        assert!(warm.ipc() >= cold.ipc() * 0.9, "warm {} vs cold {}", warm.ipc(), cold.ipc());
    }

    #[test]
    fn determinism() {
        let a = run_stream(2, 5_000);
        let b = run_stream(2, 5_000);
        assert_eq!(a.warp_instructions, b.warp_instructions);
        assert_eq!(a.dram.total_requests(), b.dram.total_requests());
    }

    #[test]
    fn more_compute_means_less_dram_traffic() {
        let heavy = run_stream(0, 10_000);
        let light = run_stream(50, 10_000);
        assert!(heavy.dram.total_bytes() > light.dram.total_bytes(), "memory-bound should move more bytes");
    }

    #[test]
    fn try_new_reports_config_errors() {
        let mut cfg = GpuConfig::small();
        cfg.num_partitions = 3;
        let kernel = StreamKernel { alu_per_mem: 1, bytes_per_warp: 4096, warps: 1 };
        let err = Simulator::try_new(cfg, &kernel, |_, c| PassthroughBackend::from_config(c))
            .err()
            .expect("three partitions is invalid");
        match err {
            crate::error::SimError::Config(e) => assert_eq!(e.field, "num_partitions"),
            other => panic!("expected config error, got {other:?}"),
        }
    }

    /// A kernel whose warps each issue a fixed number of loads and exit
    /// (`StreamKernel` never exits, so warmup truncation needs this).
    struct ShortKernel {
        loads: u32,
        warps: u32,
    }

    struct ShortProgram {
        left: u32,
        next: u64,
    }

    impl crate::kernel::WarpProgram for ShortProgram {
        fn next_inst(&mut self) -> crate::types::Inst {
            if self.left == 0 {
                return crate::types::Inst::Exit;
            }
            self.left -= 1;
            let addr = self.next;
            self.next += 128;
            crate::types::Inst::load(crate::types::Access::new(addr, crate::types::FULL_SECTOR_MASK))
        }

        fn save_state(&self, out: &mut Vec<u64>) {
            out.push(u64::from(self.left));
            out.push(self.next);
        }

        fn restore_state(&mut self, state: &[u64]) -> Result<(), crate::kernel::StateError> {
            crate::kernel::expect_state_len(state, 2, "short program")?;
            self.left = u32::try_from(state[0])
                .map_err(|_| crate::kernel::StateError::new("short program", "left overflow"))?;
            self.next = state[1];
            Ok(())
        }
    }

    impl crate::kernel::Kernel for ShortKernel {
        fn warps_per_sm(&self, _sm: u32) -> u32 {
            self.warps
        }

        fn spawn(&self, sm: u32, warp: u32) -> Box<dyn crate::kernel::WarpProgram + Send> {
            let idx = sm as u64 * 64 + warp as u64;
            Box::new(ShortProgram { left: self.loads, next: idx << 20 })
        }
    }

    #[test]
    fn warmup_truncation_is_flagged() {
        let cfg = GpuConfig::small();
        // A tiny kernel that finishes long before the warmup window.
        let kernel = ShortKernel { loads: 8, warps: 1 };
        let mut sim = Simulator::new(cfg, &kernel, |_, c| PassthroughBackend::from_config(c));
        let report = sim.run_with_warmup(1_000_000, 2_000_000);
        assert!(report.warmup_truncated, "kernel finished inside warmup");
        assert_eq!(report.cycles, 0, "no measured window");
        // The long-running configuration from `warmup_discards_early_statistics`
        // must stay unflagged; re-check here to pin the polarity.
        let busy = StreamKernel { alu_per_mem: 2, bytes_per_warp: 1 << 20, warps: 8 };
        let mut sim2 = Simulator::new(GpuConfig::small(), &busy, |_, c| PassthroughBackend::from_config(c));
        let ok = sim2.run_with_warmup(4_000, 8_000);
        assert!(!ok.warmup_truncated);
    }

    mod telemetry {
        use super::*;
        use secmem_telemetry::{EventKind, Telemetry, TelemetryConfig};

        fn sim_with_telemetry(interval: u64) -> Simulator<PassthroughBackend> {
            let cfg = GpuConfig::small();
            let kernel = StreamKernel { alu_per_mem: 0, bytes_per_warp: 1 << 20, warps: 16 };
            let mut sim = Simulator::new(cfg, &kernel, |_, c| PassthroughBackend::from_config(c));
            sim.set_telemetry(Telemetry::enabled(TelemetryConfig {
                sample_interval: interval,
                ..TelemetryConfig::default()
            }));
            sim
        }

        #[test]
        fn byte_series_reconcile_with_report_aggregates() {
            let mut sim = sim_with_telemetry(256);
            let report = sim.run(10_000);
            let snap = sim.telemetry_snapshot().expect("enabled");
            let series = snap.series("dram.data_bytes").expect("data bytes sampled");
            let agg = report.dram.class(TrafficClass::Data);
            let expected = (agg.bytes_read + agg.bytes_written) as f64;
            assert!(
                (series.total() - expected).abs() < 1e-6,
                "series total {} vs aggregate {expected}",
                series.total()
            );
            assert!(report.telemetry_summary.is_some(), "summary attached to report");
        }

        #[test]
        fn run_phase_span_recorded() {
            let mut sim = sim_with_telemetry(512);
            let _ = sim.run(5_000);
            let snap = sim.telemetry_snapshot().expect("enabled");
            let labels: Vec<&str> = snap.events.iter().map(|e| e.kind.label()).collect();
            assert!(labels.contains(&"phase_begin"));
            assert!(labels.contains(&"phase_end"));
        }

        #[test]
        fn warmup_reset_keeps_series_reconciled() {
            let mut sim = sim_with_telemetry(256);
            let report = sim.run_with_warmup(4_000, 8_000);
            let snap = sim.telemetry_snapshot().expect("enabled");
            let series = snap.series("dram.data_bytes").expect("sampled");
            let agg = report.dram.class(TrafficClass::Data);
            let expected = (agg.bytes_read + agg.bytes_written) as f64;
            assert!(
                (series.total() - expected).abs() < 1e-6,
                "measured-window series total {} vs aggregate {expected}",
                series.total()
            );
            // The warmup span survives the statistics reset.
            assert!(snap
                .events
                .iter()
                .any(|e| matches!(&e.kind, EventKind::PhaseBegin { name } if name == "warmup")));
        }

        #[test]
        fn disabled_telemetry_changes_nothing() {
            let baseline = run_stream(2, 5_000);
            let mut sim = {
                let cfg = GpuConfig::small();
                let kernel = StreamKernel { alu_per_mem: 2, bytes_per_warp: 1 << 20, warps: 16 };
                Simulator::new(cfg, &kernel, |_, c| PassthroughBackend::from_config(c))
            };
            sim.set_telemetry(Telemetry::disabled());
            let report = sim.run(5_000);
            assert_eq!(report.warp_instructions, baseline.warp_instructions);
            assert_eq!(report.dram.total_bytes(), baseline.dram.total_bytes());
            assert!(report.telemetry_summary.is_none());
            assert!(sim.telemetry_snapshot().is_none());
        }

        #[test]
        fn enabled_telemetry_does_not_perturb_timing() {
            let plain = run_stream(2, 5_000);
            // Same kernel parameters as run_stream(2, _), plus sampling.
            let cfg = GpuConfig::small();
            let kernel = StreamKernel { alu_per_mem: 2, bytes_per_warp: 1 << 20, warps: 16 };
            let mut sim = Simulator::new(cfg, &kernel, |_, c| PassthroughBackend::from_config(c));
            sim.set_telemetry(Telemetry::enabled(TelemetryConfig {
                sample_interval: 128,
                ..TelemetryConfig::default()
            }));
            let sampled = sim.run(5_000);
            assert_eq!(sampled.warp_instructions, plain.warp_instructions);
            assert_eq!(sampled.dram.total_requests(), plain.dram.total_requests());
        }
    }

    mod checkpoint {
        use super::*;

        fn fresh() -> Simulator<PassthroughBackend> {
            let cfg = GpuConfig::small();
            let kernel = StreamKernel { alu_per_mem: 2, bytes_per_warp: 1 << 18, warps: 8 };
            Simulator::new(cfg, &kernel, |_, c| PassthroughBackend::from_config(c))
        }

        #[test]
        fn snapshot_resume_matches_uninterrupted_run() {
            let mut whole = fresh();
            let expected = whole.run(6_000);
            for cut in [1, 1_500, 3_000, 5_999] {
                let mut first = fresh();
                let _ = first.run(cut);
                let frame = first.save_checkpoint();
                assert_eq!(frame.cycle, cut);
                // Round-trip through the encoded byte stream, as a file would.
                let frame = Frame::decode(&frame.encode()).expect("frame roundtrips");
                let mut resumed = fresh();
                resumed.restore_checkpoint(&frame).expect("restores");
                assert_eq!(resumed.now(), cut);
                let report = resumed.run(6_000);
                assert_eq!(
                    format!("{expected:?}"),
                    format!("{report:?}"),
                    "resume from cycle {cut} diverged"
                );
            }
        }

        #[test]
        fn chunked_runs_match_one_long_run() {
            let mut whole = fresh();
            let expected = whole.run(6_000);
            let mut chunked = fresh();
            let _ = chunked.run(1_000);
            let _ = chunked.run(4_000);
            let report = chunked.run(6_000);
            assert_eq!(format!("{expected:?}"), format!("{report:?}"));
        }

        #[test]
        fn config_mismatch_rejected() {
            let mut donor = fresh();
            let _ = donor.run(500);
            let frame = donor.save_checkpoint();
            let mut cfg = GpuConfig::small();
            cfg.l2_assoc *= 2;
            let kernel = StreamKernel { alu_per_mem: 2, bytes_per_warp: 1 << 18, warps: 8 };
            let mut other = Simulator::new(cfg, &kernel, |_, c| PassthroughBackend::from_config(c));
            match other.restore_checkpoint(&frame) {
                Err(CheckpointError::ConfigMismatch { .. }) => {}
                other => panic!("expected config mismatch, got {other:?}"),
            }
        }

        #[test]
        fn truncated_payload_rejected() {
            let mut donor = fresh();
            let _ = donor.run(500);
            let mut frame = donor.save_checkpoint();
            frame.payload.truncate(frame.payload.len() / 2);
            let err = fresh().restore_checkpoint(&frame).expect_err("truncated payload");
            // Any typed error is acceptable; a panic is not.
            let _ = err.to_string();
        }

        #[test]
        fn sampler_presence_mismatch_rejected() {
            let mut donor = fresh();
            let _ = donor.run(500);
            let frame = donor.save_checkpoint();
            let mut with_telemetry = fresh();
            with_telemetry.set_telemetry(secmem_telemetry::Telemetry::enabled(
                secmem_telemetry::TelemetryConfig::default(),
            ));
            let err = with_telemetry.restore_checkpoint(&frame).expect_err("sampler mismatch");
            assert!(err.to_string().contains("sampler"), "error: {err}");
        }

        #[test]
        fn watchdog_fires_at_same_cycle_after_resume() {
            let mut cfg = GpuConfig::small();
            cfg.watchdog_cycles = 2_000;
            let plan = crate::fault::FaultPlan::new(11).with(
                crate::fault::FaultSpec::new(
                    crate::fault::FaultKind::Drop,
                    crate::fault::FaultTrigger::Always,
                )
                .on_class(TrafficClass::Data),
            );
            let kernel = StreamKernel { alu_per_mem: 0, bytes_per_warp: 1 << 18, warps: 4 };
            let mk = |cfg: &GpuConfig, plan: &crate::fault::FaultPlan| {
                let plan = plan.clone();
                Simulator::new(cfg.clone(), &kernel, move |p, c| {
                    let mut b = PassthroughBackend::from_config(c);
                    b.install_faults(plan.injector_for(p));
                    b
                })
            };
            let mut whole = mk(&cfg, &plan);
            let whole_err = whole.run_checked(1_000_000).expect_err("stalls");
            let mut first = mk(&cfg, &plan);
            let _ = first.run(300);
            let frame = first.save_checkpoint();
            let mut resumed = mk(&cfg, &plan);
            resumed.restore_checkpoint(&frame).expect("restores");
            let resumed_err = resumed.run_checked(1_000_000).expect_err("still stalls");
            let crate::error::SimError::Stalled(a) = *whole_err else { panic!("stall") };
            let crate::error::SimError::Stalled(b) = *resumed_err else { panic!("stall") };
            assert_eq!(a.cycle, b.cycle, "watchdog cycle must not shift across resume");
        }
    }

    mod watchdog {
        use super::*;
        use crate::error::SimError;
        use crate::fault::{FaultKind, FaultPlan, FaultSpec, FaultTrigger};

        /// Dropping every data-read completion wedges all warps: the
        /// watchdog must stop the run well before `max_cycles`.
        fn drop_all_sim() -> Simulator<PassthroughBackend> {
            let mut cfg = GpuConfig::small();
            cfg.watchdog_cycles = 2_000;
            let plan = FaultPlan::new(11)
                .with(FaultSpec::new(FaultKind::Drop, FaultTrigger::Always).on_class(TrafficClass::Data));
            let kernel = StreamKernel { alu_per_mem: 0, bytes_per_warp: 1 << 18, warps: 4 };
            Simulator::new(cfg, &kernel, move |p, c| {
                let mut b = PassthroughBackend::from_config(c);
                b.install_faults(plan.injector_for(p));
                b
            })
        }

        #[test]
        fn livelock_returns_stall_report() {
            let mut sim = drop_all_sim();
            let err = sim.run_checked(1_000_000).err().expect("must stall");
            let SimError::Stalled(stall) = *err else { panic!("expected stall, got {err:?}") };
            assert!(stall.cycle < 100_000, "stopped early, not at max_cycles");
            assert!(stall.stalled_for >= 2_000);
            assert!(stall.unfinished_warps > 0);
            let text = stall.to_string();
            assert!(text.contains("stalled"), "diagnostic text: {text}");
        }

        #[test]
        fn run_reports_stall_in_report() {
            let mut sim = drop_all_sim();
            let report = sim.run(1_000_000);
            assert!(report.cycles < 100_000, "watchdog truncated the run");
            let stall = report.stall.as_ref().expect("stall recorded in report");
            assert!(stall.unfinished_warps > 0);
            assert!(report.faults.total_dropped() > 0, "drops accounted");
        }

        #[test]
        fn healthy_run_never_trips_the_watchdog() {
            let mut cfg = GpuConfig::small();
            cfg.watchdog_cycles = 2_000;
            let kernel = StreamKernel { alu_per_mem: 4, bytes_per_warp: 1 << 20, warps: 16 };
            let mut sim = Simulator::new(cfg, &kernel, |_, c| PassthroughBackend::from_config(c));
            let report = sim.run_checked(20_000).expect("no stall");
            assert!(report.stall.is_none());
            assert!(report.warp_instructions > 0);
        }
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;
    use crate::backend::PassthroughBackend;
    use crate::kernel::StreamKernel;
    use crate::types::TrafficClass;

    /// Cross-checks the aggregated report against first principles for a
    /// pure-load streaming kernel.
    #[test]
    fn report_is_internally_consistent() {
        let cfg = GpuConfig::small();
        let kernel = StreamKernel { alu_per_mem: 0, bytes_per_warp: 1 << 20, warps: 16 };
        let mut sim = Simulator::new(cfg.clone(), &kernel, |_, c| PassthroughBackend::from_config(c));
        let report = sim.run(10_000);
        assert_eq!(report.cycles, 10_000);
        assert_eq!(report.thread_instructions, report.warp_instructions * 32);
        assert_eq!(report.warps, 16 * cfg.num_sms as u64);
        // Pure loads to fresh lines: every L1 access misses, and all DRAM
        // traffic is data reads.
        assert_eq!(report.l1.hits, 0);
        let d = report.dram;
        assert_eq!(d.total_requests(), d.class(TrafficClass::Data).reads);
        // Bytes = 32 B per (sectored) read.
        assert_eq!(d.total_bytes(), d.class(TrafficClass::Data).reads * 32);
        // Memory-bound: bandwidth near the efficiency ceiling, and the
        // report utilization never exceeds 1.
        let util = report.bandwidth_utilization(&cfg);
        assert!(util > 0.7 && util <= 1.0, "util {util}");
        assert_eq!(report.engine, crate::stats::EngineStats::default(), "baseline has no engine stats");
    }
}
