//! The streaming multiprocessor (SM) model.
//!
//! Each SM holds a set of resident warps, a greedy-then-oldest (GTO)
//! scheduler issuing up to `issue_width` warp instructions per cycle, a
//! sectored write-through L1 with MSHRs, and a dispatch queue that feeds
//! coalesced accesses into the interconnect. The model captures what the
//! paper's analysis depends on: thread-level parallelism hides memory
//! latency until either warps run out (small kernels like `nw`) or a
//! downstream resource (MSHRs, DRAM bandwidth) saturates.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use secmem_checkpoint::{CheckpointError, Reader, Snapshot, Writer};

use crate::cache::{Probe, SectoredCache};
use crate::config::{GpuConfig, SchedulerPolicy};
use crate::kernel::WarpProgram;
use crate::mshr::{FillOutcome, MshrFile, MshrOutcome};
use crate::types::{Access, AccessKind, Cycle, Inst, MemRequest, SectorMask, WarpRef};

/// Maximum occupancy of the access dispatch queue before instruction
/// issue pauses (keeps divergent loads from ballooning memory).
const DISPATCH_HIGH_WATERMARK: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingAccess {
    warp: u32,
    access: Access,
    kind: AccessKind,
}

/// Result of an issue-eligibility check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueCheck {
    Yes,
    BlockedOnMem,
    No,
}

struct WarpSlot {
    program: Box<dyn WarpProgram + Send>,
    /// Fetched but not yet issued instruction (held across stall cycles).
    next: Option<Inst>,
    ready_at: Cycle,
    outstanding: u32,
    finished: bool,
}

impl core::fmt::Debug for WarpSlot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WarpSlot")
            .field("ready_at", &self.ready_at)
            .field("outstanding", &self.outstanding)
            .field("finished", &self.finished)
            .finish()
    }
}

/// Requests an SM wants to place on the interconnect this cycle.
#[derive(Debug, Default)]
pub struct SmOutput {
    /// Memory requests bound for partitions.
    pub requests: Vec<MemRequest>,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: u32,
    issue_width: u32,
    scheduler: SchedulerPolicy,
    threads_per_warp: u32,
    l1_latency: Cycle,
    l1_ports: u32,
    max_outstanding: u32,
    warps: Vec<WarpSlot>,
    l1: SectoredCache,
    l1_mshrs: MshrFile<u32>,
    /// Scratch for draining completed MSHR targets (reused every fill).
    fill_targets: Vec<u32>,
    dispatch: VecDeque<PendingAccess>,
    hit_returns: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// Scratch issue bitmap (reused every cycle).
    issued_scratch: Vec<bool>,
    /// Cached no-issue verdict: while `now < issue_idle_until` the issue
    /// scan is guaranteed to pick nothing, so it is skipped (with the
    /// memory-stall counter still advancing when `issue_idle_blocked`).
    /// Any event that could unblock a warp resets this to 0.
    issue_idle_until: Cycle,
    issue_idle_blocked: bool,
    last_issued: u32,
    next_req_id: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Cycles with zero issue while at least one warp waited on memory.
    pub mem_stall_cycles: u64,
}

impl Sm {
    /// Creates an SM with `programs` resident warps.
    pub fn new(id: u32, cfg: &GpuConfig, programs: Vec<Box<dyn WarpProgram + Send>>) -> Self {
        let warps = programs
            .into_iter()
            .map(|program| WarpSlot { program, next: None, ready_at: 0, outstanding: 0, finished: false })
            .collect();
        Self {
            id,
            issue_width: cfg.issue_width,
            scheduler: cfg.scheduler,
            threads_per_warp: cfg.threads_per_warp,
            l1_latency: cfg.l1_latency as Cycle,
            l1_ports: cfg.l1_ports,
            max_outstanding: cfg.max_outstanding_loads.max(1),
            warps,
            l1: SectoredCache::new(cfg.l1_bytes, cfg.l1_assoc),
            l1_mshrs: MshrFile::new(cfg.l1_mshrs as usize, cfg.l1_mshr_merge as usize),
            fill_targets: Vec::new(),
            dispatch: VecDeque::new(),
            hit_returns: BinaryHeap::new(),
            issued_scratch: Vec::new(),
            issue_idle_until: 0,
            issue_idle_blocked: false,
            last_issued: 0,
            next_req_id: (id as u64) << 40,
            instructions: 0,
            mem_stall_cycles: 0,
        }
    }

    /// This SM's index.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Resets statistics (warp state preserved) — used to discard warmup.
    pub fn reset_stats(&mut self) {
        self.instructions = 0;
        self.mem_stall_cycles = 0;
        self.l1.reset_stats();
        self.l1_mshrs.reset_stats();
    }

    /// Number of thread instructions issued so far.
    pub fn thread_instructions(&self) -> u64 {
        self.instructions * self.threads_per_warp as u64
    }

    /// The L1 cache statistics.
    pub fn l1_stats(&self) -> crate::cache::CacheStats {
        self.l1.stats()
    }

    /// True when every warp has retired.
    pub fn finished(&self) -> bool {
        self.warps.iter().all(|w| w.finished)
    }

    /// Number of resident warps.
    pub fn warp_count(&self) -> usize {
        self.warps.len()
    }

    /// Number of resident warps that have not yet retired (stall
    /// diagnostics).
    pub fn unfinished_warps(&self) -> usize {
        self.warps.iter().filter(|w| !w.finished).count()
    }

    /// Delivers a memory response (an L2/engine fill) to this SM.
    pub fn on_response(&mut self, resp: &MemRequest) {
        self.issue_idle_until = 0;
        let line = resp.line_addr;
        self.fill_targets.clear();
        match self.l1_mshrs.note_fill(line, resp.sectors, &mut self.fill_targets) {
            FillOutcome::Untracked => {
                // No waiter (e.g. the entry was satisfied already).
                self.l1.fill(line, resp.sectors, SectorMask::EMPTY);
            }
            FillOutcome::Partial => {}
            FillOutcome::Complete(sectors) => {
                // Fill exactly the sectors the entry requested, as before.
                self.l1.fill(line, sectors, SectorMask::EMPTY);
                for &warp in &self.fill_targets {
                    let slot = &mut self.warps[warp as usize];
                    debug_assert!(slot.outstanding > 0);
                    slot.outstanding = slot.outstanding.saturating_sub(1);
                }
            }
        }
    }

    /// True when the warp's fetched instruction cannot issue until an
    /// outstanding memory response returns (the `BlockedOnMem` cases of
    /// [`Sm::issuable`], evaluated without side effects).
    fn warp_mem_blocked(&self, w: &WarpSlot) -> bool {
        match w.next.as_ref() {
            Some(Inst::Alu { wait_mem, .. }) => *wait_mem && w.outstanding > 0,
            Some(Inst::Load { accesses, dependent }) => {
                w.outstanding > 0
                    && (*dependent
                        || w.outstanding
                            + crate::narrow::usize_to_u32(
                                accesses.len(),
                                "warp access list is bounded by threads_per_warp",
                            )
                            > self.max_outstanding)
            }
            _ => false,
        }
    }

    /// Earliest cycle at or after `now` at which this SM can make
    /// progress on its own (dispatch queued accesses, retire an L1 hit,
    /// or issue a warp instruction). `None` when every warp is finished
    /// or blocked on memory — external responses re-awaken the SM via
    /// the interconnect's own events. Used by the idle-skip scheduler.
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut merge = |c: Cycle| next = Some(next.map_or(c, |n: Cycle| n.min(c)));
        if !self.dispatch.is_empty() {
            merge(now);
        }
        if let Some(Reverse((at, _))) = self.hit_returns.peek() {
            merge((*at).max(now));
        }
        if now < self.issue_idle_until {
            // A valid no-issue verdict already knows the answer: every
            // ready warp is memory-blocked (no self-contained event) and
            // the earliest sleeper wakes exactly at `issue_idle_until`.
            if self.issue_idle_until != Cycle::MAX {
                merge(self.issue_idle_until);
            }
            return next;
        }
        for w in &self.warps {
            if w.finished {
                continue;
            }
            // A memory-blocked warp has no self-contained wakeup time; an
            // unblocked (or not-yet-fetched) warp acts at `ready_at`.
            if w.next.is_some() && self.warp_mem_blocked(w) {
                continue;
            }
            merge(w.ready_at.max(now));
        }
        next
    }

    /// Accounts `cycles` fast-forwarded quiescent cycles: a gap cycle in
    /// which at least one warp waits on memory is a memory-stall cycle,
    /// exactly as the per-cycle issue loop would have counted it.
    pub fn account_idle_stall(&mut self, now: Cycle, cycles: u64) {
        if cycles == 0 {
            return;
        }
        // A valid no-issue verdict was computed with an empty dispatch
        // queue (a gap cannot open otherwise), so its blocked flag equals
        // the per-warp predicate below.
        let blocked = if now < self.issue_idle_until {
            self.issue_idle_blocked
        } else {
            self.warps.iter().any(|w| !w.finished && w.ready_at <= now && self.warp_mem_blocked(w))
        };
        if blocked {
            self.mem_stall_cycles += cycles;
        }
    }

    /// Advances the SM by one cycle. Outgoing requests are appended to
    /// `out`; `icnt_room` reports how many of them the interconnect can
    /// still take (the SM stops dispatching when it reaches zero).
    pub fn cycle(&mut self, now: Cycle, icnt_room: usize, out: &mut SmOutput) {
        self.drain_hit_returns(now);
        let before = self.dispatch.len();
        self.dispatch_accesses(now, icnt_room, out);
        if self.dispatch.len() != before {
            // Draining the dispatch queue can reopen it for blocked warps.
            self.issue_idle_until = 0;
        }
        self.issue(now);
    }

    fn drain_hit_returns(&mut self, now: Cycle) {
        while let Some(Reverse((at, warp))) = self.hit_returns.peek().copied() {
            if at > now {
                break;
            }
            self.hit_returns.pop();
            let slot = &mut self.warps[warp as usize];
            slot.outstanding = slot.outstanding.saturating_sub(1);
            self.issue_idle_until = 0;
        }
    }

    fn dispatch_accesses(&mut self, now: Cycle, mut icnt_room: usize, out: &mut SmOutput) {
        for _ in 0..self.l1_ports {
            let Some(pa) = self.dispatch.front().copied() else { break };
            match pa.kind {
                AccessKind::Load => {
                    let want = match self.l1.peek(pa.access.line_addr, pa.access.sectors) {
                        Probe::Hit => {
                            // Count the hit / refresh LRU now that it is consumed.
                            let _ = self.l1.probe(pa.access.line_addr, pa.access.sectors);
                            self.hit_returns.push(Reverse((now + self.l1_latency, pa.warp)));
                            self.dispatch.pop_front();
                            continue;
                        }
                        Probe::PartialMiss(missing) => missing,
                        Probe::Miss => pa.access.sectors,
                    };
                    // Without interconnect room we cannot risk allocating an
                    // MSHR whose request we could not send.
                    if icnt_room == 0 {
                        return;
                    }
                    match self.l1_mshrs.access(pa.access.line_addr, want, pa.warp) {
                        MshrOutcome::Allocated => {
                            let _ = self.l1.probe(pa.access.line_addr, pa.access.sectors);
                            out.requests.push(self.make_request(
                                pa.access.line_addr,
                                want,
                                AccessKind::Load,
                                Some(pa.warp),
                            ));
                            icnt_room -= 1;
                            self.dispatch.pop_front();
                        }
                        MshrOutcome::MergedNewSectors(m) => {
                            let _ = self.l1.probe(pa.access.line_addr, pa.access.sectors);
                            out.requests.push(self.make_request(
                                pa.access.line_addr,
                                m,
                                AccessKind::Load,
                                Some(pa.warp),
                            ));
                            icnt_room -= 1;
                            self.dispatch.pop_front();
                        }
                        MshrOutcome::Merged => {
                            let _ = self.l1.probe(pa.access.line_addr, pa.access.sectors);
                            self.dispatch.pop_front();
                        }
                        MshrOutcome::Full(_) => return,
                    }
                }
                AccessKind::Store => {
                    if icnt_room == 0 {
                        return;
                    }
                    // Write-through, write-no-allocate L1: drop stale sectors.
                    self.l1.invalidate_sectors(pa.access.line_addr, pa.access.sectors);
                    out.requests.push(self.make_request(
                        pa.access.line_addr,
                        pa.access.sectors,
                        AccessKind::Store,
                        None,
                    ));
                    icnt_room -= 1;
                    self.dispatch.pop_front();
                }
            }
        }
    }

    fn make_request(
        &mut self,
        line_addr: u64,
        sectors: SectorMask,
        kind: AccessKind,
        warp: Option<u32>,
    ) -> MemRequest {
        self.next_req_id += 1;
        MemRequest {
            id: self.next_req_id,
            line_addr,
            sectors,
            kind,
            warp: warp.map(|w| WarpRef { sm: self.id, warp: w }),
        }
    }

    /// Decides whether warp `w`'s pending instruction can issue now, after
    /// fetching it if needed. Retires the warp on `Exit`.
    fn issuable(&mut self, w: usize, now: Cycle, dispatch_open: bool) -> IssueCheck {
        let slot = &mut self.warps[w];
        if slot.finished {
            return IssueCheck::No;
        }
        if slot.ready_at > now {
            return IssueCheck::No;
        }
        if slot.next.is_none() {
            // lint:allow(T1): warp programs materialize one Inst per fetch; its coalesced-access list is heap-backed by design (trace format)
            let inst = slot.program.next_inst();
            if matches!(inst, Inst::Exit) {
                slot.finished = true;
                return IssueCheck::No;
            }
            slot.next = Some(inst);
        }
        let Some(next) = slot.next.as_ref() else {
            debug_assert!(false, "fetch above guarantees a pending instruction");
            return IssueCheck::No;
        };
        match next {
            Inst::Alu { wait_mem, .. } => {
                if *wait_mem && slot.outstanding > 0 {
                    IssueCheck::BlockedOnMem
                } else {
                    IssueCheck::Yes
                }
            }
            Inst::Load { accesses, dependent } => {
                if *dependent && slot.outstanding > 0 {
                    return IssueCheck::BlockedOnMem;
                }
                // The cap throttles *additional* loads; a single load wider
                // than the cap (divergent scatter) still issues when the
                // warp has nothing outstanding.
                if slot.outstanding > 0
                    && slot.outstanding
                        + crate::narrow::usize_to_u32(
                            accesses.len(),
                            "warp access list is bounded by threads_per_warp",
                        )
                        > self.max_outstanding
                {
                    return IssueCheck::BlockedOnMem;
                }
                if dispatch_open {
                    IssueCheck::Yes
                } else {
                    IssueCheck::BlockedOnMem
                }
            }
            Inst::Store { .. } => {
                if dispatch_open {
                    IssueCheck::Yes
                } else {
                    IssueCheck::BlockedOnMem
                }
            }
            Inst::Exit => {
                // Fetch retires `Exit` before it can reach the scoreboard.
                debug_assert!(false, "Exit is handled at fetch");
                IssueCheck::No
            }
        }
    }

    fn issue(&mut self, now: Cycle) {
        let n = self.warps.len();
        if n == 0 {
            return;
        }
        if now < self.issue_idle_until {
            // A previous full scan proved nothing can issue before
            // `issue_idle_until` absent an unblocking event (which would
            // have reset it); replay its stall accounting and skip.
            if self.issue_idle_blocked {
                self.mem_stall_cycles += 1;
            }
            return;
        }
        let dispatch_open = self.dispatch.len() < DISPATCH_HIGH_WATERMARK;
        let mut issued_any = false;
        let mut blocked_on_mem = false;
        self.issued_scratch.clear();
        self.issued_scratch.resize(n, false);
        for _slot in 0..self.issue_width {
            let mut pick = None;
            // GTO: last issued warp first (greedy), then oldest-first.
            // LRR: rotate, starting after the last issued warp.
            let candidates = match self.scheduler {
                SchedulerPolicy::Gto => n + 1,
                SchedulerPolicy::Lrr => n,
            };
            for k in 0..candidates {
                let w = match self.scheduler {
                    SchedulerPolicy::Gto => {
                        if k == 0 {
                            self.last_issued as usize
                        } else {
                            k - 1
                        }
                    }
                    SchedulerPolicy::Lrr => (self.last_issued as usize + 1 + k) % n,
                };
                if self.issued_scratch[w] {
                    continue;
                }
                match self.issuable(w, now, dispatch_open) {
                    IssueCheck::Yes => {
                        pick = Some(w);
                        break;
                    }
                    // A non-issuable verdict cannot change within this
                    // cycle (`dispatch_open` is frozen and issuing some
                    // other warp only mutates that warp's slot), so mark
                    // the warp skipped for the remaining issue slots.
                    IssueCheck::BlockedOnMem => {
                        blocked_on_mem = true;
                        self.issued_scratch[w] = true;
                    }
                    IssueCheck::No => self.issued_scratch[w] = true,
                }
            }
            let Some(w) = pick else { break };
            self.issued_scratch[w] = true;
            self.last_issued = crate::narrow::usize_to_u32(w, "warp index < max_warps_per_sm");
            let Some(inst) = self.warps[w].next.take() else {
                debug_assert!(false, "issuable implies fetched");
                break;
            };
            match inst {
                Inst::Alu { stall, .. } => {
                    self.warps[w].ready_at = now + stall.max(1) as Cycle;
                }
                Inst::Load { accesses, .. } => {
                    self.warps[w].outstanding += crate::narrow::usize_to_u32(
                        accesses.len(),
                        "warp access list is bounded by threads_per_warp",
                    );
                    self.warps[w].ready_at = now + 1;
                    for access in accesses {
                        self.dispatch.push_back(PendingAccess {
                            warp: crate::narrow::usize_to_u32(w, "warp index < max_warps_per_sm"),
                            access,
                            kind: AccessKind::Load,
                        });
                    }
                }
                Inst::Store { accesses } => {
                    self.warps[w].ready_at = now + 1;
                    for access in accesses {
                        self.dispatch.push_back(PendingAccess {
                            warp: crate::narrow::usize_to_u32(w, "warp index < max_warps_per_sm"),
                            access,
                            kind: AccessKind::Store,
                        });
                    }
                }
                // Fetch retires `Exit`; it never reaches the issue queue.
                Inst::Exit => debug_assert!(false, "exit never stored"),
            }
            self.instructions += 1;
            issued_any = true;
        }
        if !issued_any {
            if blocked_on_mem {
                self.mem_stall_cycles += 1;
            }
            // The slot-0 scan visited (and fetched) every runnable warp,
            // so the verdict holds until the earliest sleeping warp wakes
            // or an unblocking event clears the cache.
            let mut until = Cycle::MAX;
            for w in &self.warps {
                if !w.finished && w.ready_at > now && w.ready_at < until {
                    until = w.ready_at;
                }
            }
            self.issue_idle_until = until;
            self.issue_idle_blocked = blocked_on_mem;
        }
    }

    /// Serializes the SM's dynamic state: warp progress (via
    /// [`WarpProgram::save_state`]), the L1 and its MSHRs, the dispatch
    /// queue, pending hit returns, the no-issue cache and the issue
    /// bookkeeping. Scratch buffers are not saved. The no-issue cache
    /// (`issue_idle_until`/`issue_idle_blocked`) is saved exactly so
    /// stall accounting on resume is byte-identical to an uninterrupted
    /// run.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_usize(self.warps.len());
        let mut words: Vec<u64> = Vec::new();
        for slot in &self.warps {
            words.clear();
            slot.program.save_state(&mut words);
            words.save(w);
            slot.next.save(w);
            w.put_u64(slot.ready_at);
            w.put_u32(slot.outstanding);
            w.put_bool(slot.finished);
        }
        self.l1.save_state(w);
        self.l1_mshrs.save_state(w);
        w.put_usize(self.dispatch.len());
        for pa in &self.dispatch {
            w.put_u32(pa.warp);
            pa.access.save(w);
            pa.kind.save(w);
        }
        let mut hits: Vec<(Cycle, u32)> = self.hit_returns.iter().map(|Reverse(e)| *e).collect();
        hits.sort_unstable();
        hits.save(w);
        w.put_u64(self.issue_idle_until);
        w.put_bool(self.issue_idle_blocked);
        w.put_u32(self.last_issued);
        w.put_u64(self.next_req_id);
        w.put_u64(self.instructions);
        w.put_u64(self.mem_stall_cycles);
    }

    /// Restores state saved by [`Sm::save_state`] into an SM rebuilt from
    /// the same configuration and kernel (same warp count and geometry).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] on a warp-count mismatch, a warp
    /// index out of range, or a program that rejects its saved progress;
    /// any decode error otherwise.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let n = r.get_usize()?;
        if n != self.warps.len() {
            return Err(CheckpointError::Malformed(format!(
                "SM {} has {} warps, checkpoint has {n}",
                self.id,
                self.warps.len()
            )));
        }
        for slot in &mut self.warps {
            let words: Vec<u64> = Vec::load(r)?;
            slot.program.restore_state(&words).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
            slot.next = Option::load(r)?;
            slot.ready_at = r.get_u64()?;
            slot.outstanding = r.get_u32()?;
            slot.finished = r.get_bool()?;
        }
        self.l1.restore_state(r)?;
        self.l1_mshrs.restore_state(r)?;
        let dispatch_len = r.get_count()?;
        let mut dispatch = VecDeque::with_capacity(dispatch_len);
        for _ in 0..dispatch_len {
            let warp = r.get_u32()?;
            if warp as usize >= n {
                return Err(CheckpointError::Malformed(format!("dispatch entry for warp {warp} of {n}")));
            }
            dispatch.push_back(PendingAccess { warp, access: Access::load(r)?, kind: AccessKind::load(r)? });
        }
        self.dispatch = dispatch;
        let hits: Vec<(Cycle, u32)> = Vec::load(r)?;
        for &(_, warp) in &hits {
            if warp as usize >= n {
                return Err(CheckpointError::Malformed(format!("hit return for warp {warp} of {n}")));
            }
        }
        self.hit_returns = hits.into_iter().map(Reverse).collect();
        self.issue_idle_until = r.get_u64()?;
        self.issue_idle_blocked = r.get_bool()?;
        let last_issued = r.get_u32()?;
        if n > 0 && last_issued as usize >= n {
            return Err(CheckpointError::Malformed(format!("last issued warp {last_issued} of {n}")));
        }
        self.last_issued = last_issued;
        self.next_req_id = r.get_u64()?;
        self.instructions = r.get_u64()?;
        self.mem_stall_cycles = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FULL_SECTOR_MASK;

    struct Script(Vec<Inst>);
    impl WarpProgram for Script {
        fn next_inst(&mut self) -> Inst {
            if self.0.is_empty() {
                Inst::Exit
            } else {
                self.0.remove(0)
            }
        }

        fn save_state(&self, out: &mut Vec<u64>) {
            out.push(self.0.len() as u64);
        }

        fn restore_state(&mut self, state: &[u64]) -> Result<(), crate::kernel::StateError> {
            crate::kernel::expect_state_len(state, 1, "script")?;
            let remaining = state[0] as usize;
            if remaining > self.0.len() {
                return Err(crate::kernel::StateError::new(
                    "script",
                    format!("{remaining} instructions left of {}", self.0.len()),
                ));
            }
            self.0.drain(..self.0.len() - remaining);
            Ok(())
        }
    }

    fn cfg() -> GpuConfig {
        GpuConfig::small()
    }

    fn load(addr: u64) -> Inst {
        // Dependent loads serialize, making the tests' blocking behaviour
        // deterministic.
        Inst::dependent_load(Access::new(addr, FULL_SECTOR_MASK))
    }

    #[test]
    fn alu_only_warp_finishes_and_counts() {
        let prog: Box<dyn WarpProgram + Send> = Box::new(Script(vec![Inst::alu(), Inst::alu()]));
        let mut sm = Sm::new(0, &cfg(), vec![prog]);
        let mut out = SmOutput::default();
        for now in 0..10 {
            sm.cycle(now, 8, &mut out);
        }
        assert!(sm.finished());
        assert_eq!(sm.instructions, 2);
        assert_eq!(sm.thread_instructions(), 64);
        assert!(out.requests.is_empty());
    }

    #[test]
    fn load_miss_generates_request_and_blocks() {
        let prog: Box<dyn WarpProgram + Send> = Box::new(Script(vec![load(0x1000), Inst::use_mem()]));
        let mut sm = Sm::new(0, &cfg(), vec![prog]);
        let mut out = SmOutput::default();
        for now in 0..5 {
            sm.cycle(now, 8, &mut out);
        }
        assert_eq!(out.requests.len(), 1);
        let req = out.requests[0].clone();
        assert_eq!(req.line_addr, 0x1000);
        assert_eq!(req.kind, AccessKind::Load);
        // Warp is blocked: only the load has issued.
        assert_eq!(sm.instructions, 1);
        // Respond; the warp unblocks and issues the ALU op.
        sm.on_response(&req);
        for now in 5..10 {
            sm.cycle(now, 8, &mut out);
        }
        assert_eq!(sm.instructions, 2);
        assert!(sm.finished());
    }

    #[test]
    fn l1_hit_serves_without_request() {
        let prog: Box<dyn WarpProgram + Send> = Box::new(Script(vec![load(0x80), load(0x80)]));
        let mut sm = Sm::new(0, &cfg(), vec![prog]);
        let mut out = SmOutput::default();
        // First load misses.
        for now in 0..3 {
            sm.cycle(now, 8, &mut out);
        }
        assert_eq!(out.requests.len(), 1);
        sm.on_response(&out.requests[0].clone());
        // Second load should hit in L1: no new request.
        for now in 3..80 {
            sm.cycle(now, 8, &mut out);
        }
        assert_eq!(out.requests.len(), 1);
        assert!(sm.finished());
        assert!(sm.l1_stats().hits >= 1);
    }

    #[test]
    fn secondary_miss_merges_in_l1_mshr() {
        let p1: Box<dyn WarpProgram + Send> = Box::new(Script(vec![load(0x100)]));
        let p2: Box<dyn WarpProgram + Send> = Box::new(Script(vec![load(0x100)]));
        let mut sm = Sm::new(0, &cfg(), vec![p1, p2]);
        let mut out = SmOutput::default();
        for now in 0..5 {
            sm.cycle(now, 8, &mut out);
        }
        // Both warps loaded the same line: one request only.
        assert_eq!(out.requests.len(), 1);
        sm.on_response(&out.requests[0].clone());
        for now in 5..10 {
            sm.cycle(now, 8, &mut out);
        }
        assert!(sm.finished(), "both warps must unblock from one fill");
    }

    #[test]
    fn store_is_fire_and_forget() {
        let prog: Box<dyn WarpProgram + Send> =
            Box::new(Script(vec![Inst::store(Access::new(0x200, SectorMask::single(0))), Inst::alu()]));
        let mut sm = Sm::new(0, &cfg(), vec![prog]);
        let mut out = SmOutput::default();
        for now in 0..6 {
            sm.cycle(now, 8, &mut out);
        }
        assert!(sm.finished(), "store must not block the warp");
        assert_eq!(out.requests.len(), 1);
        assert_eq!(out.requests[0].kind, AccessKind::Store);
        assert!(out.requests[0].warp.is_none());
    }

    #[test]
    fn no_icnt_room_stalls_dispatch() {
        let prog: Box<dyn WarpProgram + Send> = Box::new(Script(vec![load(0x400)]));
        let mut sm = Sm::new(0, &cfg(), vec![prog]);
        let mut out = SmOutput::default();
        for now in 0..5 {
            sm.cycle(now, 0, &mut out);
        }
        assert!(out.requests.is_empty());
        // Room opens up; the request goes out.
        for now in 5..8 {
            sm.cycle(now, 4, &mut out);
        }
        assert_eq!(out.requests.len(), 1);
    }

    #[test]
    fn lrr_scheduler_rotates_warps() {
        let mut cfg_lrr = cfg();
        cfg_lrr.scheduler = crate::config::SchedulerPolicy::Lrr;
        cfg_lrr.issue_width = 1;
        let progs: Vec<Box<dyn WarpProgram + Send>> = (0..4)
            .map(|_| Box::new(Script(vec![Inst::alu(), Inst::alu()])) as Box<dyn WarpProgram + Send>)
            .collect();
        let mut sm = Sm::new(0, &cfg_lrr, progs);
        let mut out = SmOutput::default();
        // With LRR and 1-wide issue, 4 warps x 2 ALUs retire in ~8 cycles,
        // visiting each warp alternately.
        for now in 0..12 {
            sm.cycle(now, 8, &mut out);
        }
        assert!(sm.finished());
        assert_eq!(sm.instructions, 8);
    }

    #[test]
    fn gto_prefers_last_issued_warp() {
        let mut c = cfg();
        c.issue_width = 1;
        let progs: Vec<Box<dyn WarpProgram + Send>> =
            (0..2).map(|_| Box::new(Script(vec![Inst::alu(); 4])) as Box<dyn WarpProgram + Send>).collect();
        let mut sm = Sm::new(0, &c, progs);
        let mut out = SmOutput::default();
        for now in 0..20 {
            sm.cycle(now, 8, &mut out);
        }
        assert!(sm.finished());
        assert_eq!(sm.instructions, 8);
    }

    #[test]
    fn divergent_load_produces_many_requests() {
        let accesses: Vec<Access> =
            (0..8).map(|i| Access::new(0x10_000 + i * 4096, SectorMask::single(0))).collect();
        let prog: Box<dyn WarpProgram + Send> =
            Box::new(Script(vec![Inst::Load { accesses, dependent: false }, Inst::use_mem()]));
        let mut sm = Sm::new(0, &cfg(), vec![prog]);
        let mut out = SmOutput::default();
        for now in 0..20 {
            sm.cycle(now, 8, &mut out);
        }
        assert_eq!(out.requests.len(), 8);
        // All 8 fills required before the warp retires.
        for r in out.requests.clone() {
            sm.on_response(&r);
        }
        for now in 20..25 {
            sm.cycle(now, 8, &mut out);
        }
        assert!(sm.finished());
    }
}
