//! Deterministic fault injection for the memory system.
//!
//! A [`FaultPlan`] describes *what* to corrupt (traffic class, address,
//! read/write direction), *how* (bit flip, drop, delay, metadata
//! corruption, replay of stale data) and *when* (every match, the Nth
//! match, or a seeded pseudo-random rate). Each memory partition derives
//! its own [`FaultInjector`] from the plan via [`FaultPlan::injector_for`],
//! so a plan plus a seed fully determines every injection in a run —
//! two simulations with the same plan produce bit-identical
//! [`FaultStats`] and detection outcomes.
//!
//! Faults are applied at DRAM completion time (see
//! [`Dram::pop_completed_with_fault`](crate::dram::Dram::pop_completed_with_fault)):
//! this models data corrupted on the bus or in the array, the scope of
//! the paper's threat model. Backends translate the surviving fault flag
//! into detection outcomes: a backend with integrity metadata
//! ([`SecureBackend`](../../secmem_core) schemes with MACs or a Merkle
//! tree) flags the corruption, while the baseline passes it through
//! silently — mirroring the functional model's attacker API at the
//! timing layer.

use secmem_checkpoint::{CheckpointError, Reader, Snapshot, Writer};

use crate::types::{line_of, Addr, Cycle, TrafficClass};

use crate::rng::Rng64;

/// The way a fault mutates a DRAM transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip bits in the returned line: detectable by any MAC scheme.
    BitFlip,
    /// Swallow the completion: the requester waits forever (the
    /// simulator's watchdog turns this into a [`StallReport`](crate::error::StallReport)).
    Drop,
    /// Complete the request this many cycles late.
    Delay(u32),
    /// Corrupt the metadata payload (counter / MAC / tree node) carried
    /// by the transaction.
    MetaCorrupt,
    /// Return stale-but-authentic data (a replay attack): only schemes
    /// with tree coverage of the relevant metadata can detect it.
    Replay,
}

impl FaultKind {
    /// Static label for telemetry events (the `Delay` amount is recorded
    /// in the injection config, not the event).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BitFlip => "BitFlip",
            FaultKind::Drop => "Drop",
            FaultKind::Delay(_) => "Delay",
            FaultKind::MetaCorrupt => "MetaCorrupt",
            FaultKind::Replay => "Replay",
        }
    }

    /// True for kinds that corrupt the payload (and are therefore
    /// candidates for integrity detection), as opposed to timing faults.
    pub fn corrupts(self) -> bool {
        matches!(self, FaultKind::BitFlip | FaultKind::MetaCorrupt | FaultKind::Replay)
    }
}

/// When a matching transaction actually receives the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Every matching transaction.
    Always,
    /// Only the Nth matching transaction (0-based).
    Nth(u64),
    /// Every Nth matching transaction (period ≥ 1).
    EveryNth(u64),
    /// Each matching transaction independently with probability `1/n`,
    /// drawn from the injector's seeded generator.
    OneIn(u64),
}

/// One fault rule: a kind, a filter, and a trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What the fault does.
    pub kind: FaultKind,
    /// Restrict to one traffic class (`None` = any).
    pub class: Option<TrafficClass>,
    /// Apply only to reads (writes are never corrupted in-flight by
    /// this model when set; the functional model covers stored-data
    /// tampering).
    pub reads_only: bool,
    /// Restrict to one 128 B line (`None` = any address).
    pub line_addr: Option<Addr>,
    /// When a matching transaction is hit.
    pub trigger: FaultTrigger,
    /// Stop after this many applications (`None` = unlimited).
    pub max_injections: Option<u64>,
}

impl FaultSpec {
    /// A rule matching every read of `class`, fired per `trigger`.
    pub fn new(kind: FaultKind, trigger: FaultTrigger) -> Self {
        Self { kind, class: None, reads_only: true, line_addr: None, trigger, max_injections: None }
    }

    /// Restricts the rule to one traffic class.
    pub fn on_class(mut self, class: TrafficClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Restricts the rule to the line containing `addr`.
    pub fn on_line(mut self, addr: Addr) -> Self {
        self.line_addr = Some(line_of(addr));
        self
    }

    /// Caps the number of times this rule fires.
    pub fn limit(mut self, n: u64) -> Self {
        self.max_injections = Some(n);
        self
    }

    fn matches(&self, class: TrafficClass, is_write: bool, addr: Addr) -> bool {
        if self.reads_only && is_write {
            return false;
        }
        if let Some(c) = self.class {
            if c != class {
                return false;
            }
        }
        if let Some(line) = self.line_addr {
            if line_of(addr) != line {
                return false;
            }
        }
        true
    }
}

/// A seeded set of fault rules, shared by every partition of a run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Base seed; each partition mixes in its id so streams differ but
    /// remain reproducible.
    pub seed: u64,
    /// The rules, evaluated in order (first match wins).
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, specs: Vec::new() }
    }

    /// Adds a rule (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Convenience: flip bits in the first data read of the line
    /// containing `addr`.
    pub fn bit_flip_on_line(seed: u64, addr: Addr) -> Self {
        Self::new(seed).with(
            FaultSpec::new(FaultKind::BitFlip, FaultTrigger::Nth(0))
                .on_class(TrafficClass::Data)
                .on_line(addr),
        )
    }

    /// Derives the injector for one partition. The per-partition seed is
    /// a fixed mix of the plan seed and the partition id, so adding
    /// partitions never perturbs other partitions' streams.
    pub fn injector_for(&self, partition: u32) -> FaultInjector {
        FaultInjector::new(
            self.specs.clone(),
            self.seed ^ (u64::from(partition).wrapping_mul(0xA076_1D64_78BD_642F)),
        )
    }
}

/// Counters for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultClassStats {
    /// Payload corruptions delivered (bit flips, metadata corruption,
    /// replays).
    pub injected: u64,
    /// Completions swallowed.
    pub dropped: u64,
    /// Completions delayed.
    pub delayed: u64,
    /// Corruptions the backend flagged as integrity violations.
    pub detected: u64,
    /// Corruptions that passed through unflagged.
    pub undetected: u64,
}

/// Per-class fault statistics, aggregated into
/// [`SimReport`](crate::stats::SimReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Stats per traffic class, indexed by `TrafficClass::ALL` order.
    pub per_class: [FaultClassStats; 4],
}

impl FaultStats {
    fn index(c: TrafficClass) -> usize {
        // Total by construction (TrafficClass::index matches ALL order);
        // no lookup, no panic path on the completion-handling hot path.
        c.index()
    }

    /// Stats for one class.
    pub fn class(&self, c: TrafficClass) -> FaultClassStats {
        self.per_class[Self::index(c)]
    }

    /// Mutable stats for one class.
    pub fn class_mut(&mut self, c: TrafficClass) -> &mut FaultClassStats {
        &mut self.per_class[Self::index(c)]
    }

    /// Adds another partition's counters into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        for (a, b) in self.per_class.iter_mut().zip(other.per_class.iter()) {
            a.injected += b.injected;
            a.dropped += b.dropped;
            a.delayed += b.delayed;
            a.detected += b.detected;
            a.undetected += b.undetected;
        }
    }

    /// Total payload corruptions delivered.
    pub fn total_injected(&self) -> u64 {
        self.per_class.iter().map(|c| c.injected).sum()
    }

    /// Total corruptions flagged.
    pub fn total_detected(&self) -> u64 {
        self.per_class.iter().map(|c| c.detected).sum()
    }

    /// Total corruptions missed.
    pub fn total_undetected(&self) -> u64 {
        self.per_class.iter().map(|c| c.undetected).sum()
    }

    /// Total completions swallowed.
    pub fn total_dropped(&self) -> u64 {
        self.per_class.iter().map(|c| c.dropped).sum()
    }

    /// True when no fault of any kind was applied.
    pub fn is_empty(&self) -> bool {
        self.per_class.iter().all(|c| c.injected == 0 && c.dropped == 0 && c.delayed == 0)
    }
}

/// One integrity-relevant fault observed by a backend: the typed event
/// surfaced alongside [`FaultStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the faulted completion was processed.
    pub cycle: Cycle,
    /// Line address of the faulted transaction.
    pub line_addr: Addr,
    /// Traffic class of the faulted transaction.
    pub class: TrafficClass,
    /// What was injected.
    pub kind: FaultKind,
    /// Whether the backend's integrity machinery flagged it.
    pub detected: bool,
}

/// The per-partition fault engine. Owned by the DRAM model; consulted
/// once per retiring transaction.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    specs: Vec<FaultSpec>,
    rng: Rng64,
    /// Matching-transaction count per spec (drives Nth / EveryNth).
    matched: Vec<u64>,
    /// Application count per spec (drives `max_injections`).
    applied: Vec<u64>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector from rules and a per-partition seed.
    pub fn new(specs: Vec<FaultSpec>, seed: u64) -> Self {
        let n = specs.len();
        Self {
            specs,
            rng: Rng64::new(seed),
            matched: vec![0; n],
            applied: vec![0; n],
            stats: FaultStats::default(),
        }
    }

    /// Decides whether the retiring transaction is faulted. Must be
    /// called exactly once per completion (the DRAM model guarantees
    /// this); both the match counters and the random stream advance.
    ///
    /// Records timing faults (drop/delay) and corruption injections in
    /// [`FaultInjector::stats`]; detection outcomes are recorded later by
    /// the backend via [`FaultInjector::record_detection`].
    pub fn decide(&mut self, class: TrafficClass, is_write: bool, addr: Addr) -> Option<FaultKind> {
        for (i, spec) in self.specs.iter().enumerate() {
            if !spec.matches(class, is_write, addr) {
                continue;
            }
            let seq = self.matched[i];
            self.matched[i] += 1;
            if let Some(cap) = spec.max_injections {
                if self.applied[i] >= cap {
                    continue;
                }
            }
            let fire = match spec.trigger {
                FaultTrigger::Always => true,
                FaultTrigger::Nth(n) => seq == n,
                FaultTrigger::EveryNth(n) => n > 0 && seq.is_multiple_of(n),
                FaultTrigger::OneIn(n) => self.rng.one_in(n),
            };
            if !fire {
                continue;
            }
            self.applied[i] += 1;
            let cs = self.stats.class_mut(class);
            match spec.kind {
                FaultKind::Drop => cs.dropped += 1,
                FaultKind::Delay(_) => cs.delayed += 1,
                _ => cs.injected += 1,
            }
            return Some(spec.kind);
        }
        None
    }

    /// Records whether a delivered corruption was flagged by the backend.
    pub fn record_detection(&mut self, class: TrafficClass, detected: bool) {
        let cs = self.stats.class_mut(class);
        if detected {
            cs.detected += 1;
        } else {
            cs.undetected += 1;
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Resets statistics (rule state and the random stream continue, so
    /// a warmup reset does not replay injections).
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::default();
    }

    /// Serializes the injector's dynamic state: the random stream, the
    /// per-rule match/application counters and the statistics. The rules
    /// themselves are rebuilt from the fault plan and only their count is
    /// cross-checked on restore.
    pub fn save_state(&self, w: &mut Writer) {
        self.rng.save(w);
        self.matched.save(w);
        self.applied.save(w);
        self.stats.save(w);
    }

    /// Restores state saved by [`FaultInjector::save_state`] into an
    /// injector rebuilt from the same fault plan.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] if the counter vectors do not match
    /// this injector's rule count; any decode error otherwise.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let rng = Rng64::load(r)?;
        let matched: Vec<u64> = Vec::load(r)?;
        let applied: Vec<u64> = Vec::load(r)?;
        if matched.len() != self.specs.len() || applied.len() != self.specs.len() {
            return Err(CheckpointError::Malformed(format!(
                "fault injector has {} rules, checkpoint has {} match / {} apply counters",
                self.specs.len(),
                matched.len(),
                applied.len()
            )));
        }
        self.rng = rng;
        self.matched = matched;
        self.applied = applied;
        self.stats = FaultStats::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: TrafficClass = TrafficClass::Data;

    #[test]
    fn nth_trigger_fires_once() {
        let plan = FaultPlan::new(1).with(FaultSpec::new(FaultKind::BitFlip, FaultTrigger::Nth(2)));
        let mut inj = plan.injector_for(0);
        let hits: Vec<_> = (0..6).map(|i| inj.decide(DATA, false, i * 128)).collect();
        assert_eq!(hits.iter().filter(|h| h.is_some()).count(), 1);
        assert_eq!(hits[2], Some(FaultKind::BitFlip));
        assert_eq!(inj.stats().class(DATA).injected, 1);
    }

    #[test]
    fn line_filter_restricts_matches() {
        let plan = FaultPlan::bit_flip_on_line(7, 0x1000 + 40);
        let mut inj = plan.injector_for(0);
        assert_eq!(inj.decide(DATA, false, 0x2000), None, "wrong line");
        assert_eq!(inj.decide(DATA, false, 0x1020), Some(FaultKind::BitFlip), "same line");
        assert_eq!(inj.decide(DATA, false, 0x1000), None, "Nth(0) already spent");
    }

    #[test]
    fn writes_skipped_when_reads_only() {
        let plan = FaultPlan::new(3).with(FaultSpec::new(FaultKind::Drop, FaultTrigger::Always));
        let mut inj = plan.injector_for(0);
        assert_eq!(inj.decide(DATA, true, 0), None);
        assert_eq!(inj.decide(DATA, false, 0), Some(FaultKind::Drop));
        assert_eq!(inj.stats().class(DATA).dropped, 1);
    }

    #[test]
    fn class_filter() {
        let plan = FaultPlan::new(3).with(
            FaultSpec::new(FaultKind::MetaCorrupt, FaultTrigger::Always).on_class(TrafficClass::Counter),
        );
        let mut inj = plan.injector_for(0);
        assert_eq!(inj.decide(DATA, false, 0), None);
        assert_eq!(inj.decide(TrafficClass::Counter, false, 0), Some(FaultKind::MetaCorrupt));
    }

    #[test]
    fn limit_caps_applications() {
        let plan = FaultPlan::new(3).with(FaultSpec::new(FaultKind::BitFlip, FaultTrigger::Always).limit(2));
        let mut inj = plan.injector_for(0);
        let fired = (0..10).filter(|_| inj.decide(DATA, false, 0).is_some()).count();
        assert_eq!(fired, 2);
    }

    #[test]
    fn one_in_is_deterministic_per_seed() {
        let plan = FaultPlan::new(99).with(FaultSpec::new(FaultKind::BitFlip, FaultTrigger::OneIn(4)));
        let run = || {
            let mut inj = plan.injector_for(2);
            (0..64).map(|i| inj.decide(DATA, false, i * 128).is_some()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "same plan + partition ⇒ same stream");
        let mut other = plan.injector_for(3);
        let other_hits: Vec<_> = (0..64).map(|i| other.decide(DATA, false, i * 128).is_some()).collect();
        assert_ne!(run(), other_hits, "partitions draw independent streams");
    }

    #[test]
    fn detection_accounting() {
        let mut stats = FaultStats::default();
        stats.class_mut(DATA).injected = 2;
        let mut other = FaultStats::default();
        other.class_mut(DATA).detected = 1;
        stats.merge(&other);
        assert_eq!(stats.total_injected(), 2);
        assert_eq!(stats.total_detected(), 1);
        assert!(!stats.is_empty());
        assert!(FaultStats::default().is_empty());
    }
}
