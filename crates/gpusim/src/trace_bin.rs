//! `SECMTRC` — the compact binary warp-trace container, with streaming
//! replay.
//!
//! The text format ([`crate::trace`]) is the archival/interchange form;
//! this module is the paper-scale form: the same streams, delta/varint
//! coded, checksummed, and replayed through chunked cursors over one
//! shared immutable backing buffer instead of fully-decoded
//! `Vec<Inst>` streams. A loaded [`BinaryTrace`] holds exactly the
//! file's data section plus a small index; per-warp decode state is a
//! bounded look-ahead of [`CHUNK_INSTS`] instructions.
//!
//! # Wire format (version 1)
//!
//! All fixed-width integers are little-endian; `varint` is the minimal
//! LEB128 encoding of [`secmem_checkpoint::Writer::put_varint`] and
//! `svarint` additionally zigzags ([`secmem_checkpoint::zigzag`]).
//!
//! ```text
//! magic      8  "SECMTRC\0"
//! version    u32
//! index_len  u64          # bytes of index body
//! index body:
//!   varint stream_count
//!   per stream, strictly ascending (sm, warp):
//!     varint sm           # <= MAX_TRACE_SM
//!     varint warp         # <= MAX_TRACE_WARP
//!     varint inst_count
//!     varint data_len     # bytes of this stream's records
//! index_sum  u64          # FNV-1a over the index body
//! data_len   u64          # bytes of data body (== sum of data_len)
//! data body: streams' records, concatenated in index order
//! data_sum   u64          # FNV-1a over the data body
//! ```
//!
//! Stream offsets are implied by the cumulative `data_len`s, so the
//! index carries no redundant offsets to cross-validate. Each record
//! starts with a packed tag byte — kind in bits 0..3, a 5-bit argument
//! in bits 3..8:
//!
//! ```text
//! kind: 0 A | 1 U | 2 L dep=0 | 3 L dep=1 | 4 S | 5 X
//! A/U:  arg = stall; arg 31 means a varint stall (>= 31) follows
//! L/S:  arg = access count (1..=30); arg 0 means a varint count
//!       (31..=MAX_ACCESSES_PER_INST) follows
//! X:    arg must be 0
//! per access: varint((zigzag(block_delta) << 4) | sector_mask)
//!       where block_delta = line_addr/128 - previous access's block
//! ```
//!
//! The block delta is against the previous access *in the same stream*
//! (starting from block 0), so the dominant sequential-stride patterns
//! cost one byte per access — a typical `A 1` / `L 0 xxxx:f` text pair
//! (15 bytes) encodes to 3. Only the minimal spelling of every record
//! is accepted (minimal varints, no spilled value that fits the tag
//! byte), so encode/decode is a bijection. Decoding validates
//! everything once at load time — checksums, index ordering and
//! limits, and a full walk of every record — so the replay cursors
//! ([`WarpProgram::next_inst`] is infallible by signature) never need
//! an error path. See DESIGN.md §15.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

use secmem_checkpoint::{fnv1a, unzigzag, zigzag, CheckpointError, Reader, Writer};

use crate::kernel::{StateError, WarpProgram};
use crate::trace::{Trace, MAX_ACCESSES_PER_INST, MAX_TRACE_SM, MAX_TRACE_WARP};
use crate::types::{Access, Addr, Inst, SectorMask, LINE_SIZE};

/// Magic bytes at the start of every binary trace file.
pub const BIN_MAGIC: [u8; 8] = *b"SECMTRC\0";

/// Current binary trace format version. Bump on any layout change; as
/// with checkpoints there is no cross-version migration.
pub const BIN_FORMAT_VERSION: u32 = 1;

/// Instructions a replay cursor decodes ahead per refill: enough to
/// amortize the decode loop, small enough that per-warp resident state
/// stays bounded regardless of stream length.
pub const CHUNK_INSTS: usize = 32;

/// `log2(LINE_SIZE)`: addresses are line-aligned, so the low bits are
/// always zero and the delta coder works in line-block units.
const LINE_SHIFT: u32 = LINE_SIZE.trailing_zeros();

/// Largest line-block value whose address survives `block << LINE_SHIFT`
/// without losing bits.
const MAX_BLOCK: u64 = Addr::MAX >> LINE_SHIFT;

const KIND_ALU: u8 = 0;
const KIND_ALU_WAIT: u8 = 1;
const KIND_LOAD: u8 = 2;
const KIND_LOAD_DEP: u8 = 3;
const KIND_STORE: u8 = 4;
const KIND_EXIT: u8 = 5;

/// Mask selecting the record kind from a tag byte.
const KIND_MASK: u8 = 0x07;

/// Ceiling of the tag byte's 5-bit argument field. An ALU stall at or
/// above it spills to a trailing varint; a zero L/S argument means the
/// access count follows as a varint (a real count is never zero).
const TAG_ARG_SPILL: u8 = 31;

/// Packs a record kind and its 5-bit argument into one tag byte.
fn tag(kind: u8, arg: u8) -> u8 {
    debug_assert!(arg <= TAG_ARG_SPILL, "tag arg {arg} exceeds 5 bits");
    kind | (arg << 3)
}

/// Why a `SECMTRC` container could not be decoded or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinTraceError {
    /// The data ended before a complete value could be read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// The file does not start with [`BIN_MAGIC`].
    BadMagic,
    /// The format version does not match [`BIN_FORMAT_VERSION`].
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version this binary understands.
        expected: u32,
    },
    /// A section checksum does not match its contents.
    BadChecksum {
        /// Which section failed (`"index"` or `"data"`).
        section: &'static str,
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the section body.
        computed: u64,
    },
    /// A count prefix exceeds what the remaining bytes could hold
    /// (corruption; refusing to allocate).
    CountTooLarge {
        /// The count read.
        count: u64,
        /// Bytes remaining in the section.
        remaining: usize,
    },
    /// A decoded value violates a structural invariant (bad tag, mask
    /// out of range, index out of order, …).
    Malformed(String),
    /// An I/O failure while reading or writing a trace file.
    Io(String),
}

impl core::fmt::Display for BinTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BinTraceError::Truncated { needed, available } => {
                write!(f, "binary trace truncated: needed {needed} bytes, {available} available")
            }
            BinTraceError::BadMagic => write!(f, "not a SECMTRC binary trace (bad magic)"),
            BinTraceError::BadVersion { found, expected } => {
                write!(f, "binary trace format v{found} not supported (this binary reads v{expected})")
            }
            BinTraceError::BadChecksum { section, stored, computed } => write!(
                f,
                "binary trace {section} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            BinTraceError::CountTooLarge { count, remaining } => {
                write!(f, "binary trace count {count} exceeds {remaining} remaining bytes")
            }
            BinTraceError::Malformed(msg) => write!(f, "malformed binary trace: {msg}"),
            BinTraceError::Io(msg) => write!(f, "binary trace I/O error: {msg}"),
        }
    }
}

impl std::error::Error for BinTraceError {}

impl From<CheckpointError> for BinTraceError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Truncated { needed, available } => {
                BinTraceError::Truncated { needed, available }
            }
            CheckpointError::CountTooLarge { count, remaining } => {
                BinTraceError::CountTooLarge { count, remaining }
            }
            CheckpointError::Malformed(msg) => BinTraceError::Malformed(msg),
            CheckpointError::Io(msg) => BinTraceError::Io(msg),
            // The remaining variants are frame-level; the byte codec this
            // module borrows never produces them.
            other => BinTraceError::Malformed(other.to_string()),
        }
    }
}

/// Serializes a [`Trace`] into `SECMTRC` bytes.
pub fn encode(trace: &Trace) -> Vec<u8> {
    let mut index = Writer::new();
    let mut data = Writer::new();
    index.put_varint(trace.warp_count() as u64);
    for ((sm, warp), insts) in trace.streams() {
        let start = data.len();
        let mut prev_block = 0u64;
        for inst in insts {
            encode_inst(&mut data, inst, &mut prev_block);
        }
        index.put_varint(u64::from(sm));
        index.put_varint(u64::from(warp));
        index.put_varint(insts.len() as u64);
        index.put_varint((data.len() - start) as u64);
    }
    let index = index.into_bytes();
    let data = data.into_bytes();
    let mut out = Vec::with_capacity(BIN_MAGIC.len() + 4 + 16 + 16 + index.len() + data.len());
    out.extend_from_slice(&BIN_MAGIC);
    out.extend_from_slice(&BIN_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(index.len() as u64).to_le_bytes());
    out.extend_from_slice(&index);
    out.extend_from_slice(&fnv1a(&index).to_le_bytes());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&data);
    out.extend_from_slice(&fnv1a(&data).to_le_bytes());
    out
}

/// Encodes `trace` and writes it to `path` atomically (temporary file
/// in the same directory, then rename — the same crash discipline as
/// checkpoint frames).
///
/// # Errors
///
/// [`BinTraceError::Io`] on any filesystem failure.
pub fn write_file(trace: &Trace, path: &Path) -> Result<(), BinTraceError> {
    let bytes = encode(trace);
    let tmp = path.with_extension("smtrc.tmp");
    let io = |e: std::io::Error| BinTraceError::Io(format!("{}: {e}", path.display()));
    let mut f = std::fs::File::create(&tmp).map_err(io)?;
    f.write_all(&bytes).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(io)
}

fn encode_inst(w: &mut Writer, inst: &Inst, prev_block: &mut u64) {
    match inst {
        Inst::Alu { stall, wait_mem } => {
            let kind = if *wait_mem { KIND_ALU_WAIT } else { KIND_ALU };
            if *stall < u32::from(TAG_ARG_SPILL) {
                let arg = crate::narrow::u64_to_u8(u64::from(*stall), "stall below the tag-arg spill bound");
                w.put_u8(tag(kind, arg));
            } else {
                w.put_u8(tag(kind, TAG_ARG_SPILL));
                w.put_varint(u64::from(*stall));
            }
        }
        Inst::Load { accesses, dependent } => {
            let kind = if *dependent { KIND_LOAD_DEP } else { KIND_LOAD };
            encode_mem(w, kind, accesses, prev_block);
        }
        Inst::Store { accesses } => encode_mem(w, KIND_STORE, accesses, prev_block),
        Inst::Exit => w.put_u8(tag(KIND_EXIT, 0)),
    }
}

fn encode_mem(w: &mut Writer, kind: u8, accesses: &[Access], prev_block: &mut u64) {
    debug_assert!(!accesses.is_empty(), "memory instruction with no accesses");
    if !accesses.is_empty() && accesses.len() < usize::from(TAG_ARG_SPILL) {
        let arg = crate::narrow::u64_to_u8(accesses.len() as u64, "count below the tag-arg spill bound");
        w.put_u8(tag(kind, arg));
    } else {
        w.put_u8(tag(kind, 0));
        w.put_varint(accesses.len() as u64);
    }
    for a in accesses {
        let block = a.line_addr >> LINE_SHIFT;
        // Blocks fit in 57 bits, so the difference is exact in i64, and
        // its zigzag form shifted four bits stays inside u64.
        let delta = block.wrapping_sub(*prev_block) as i64;
        w.put_varint((zigzag(delta) << 4) | u64::from(a.sectors.0));
        *prev_block = block;
    }
}

/// Decodes the record at the reader's position. `prev_block` is the
/// per-stream delta state (callers reset it to 0 at each stream start).
fn decode_inst(r: &mut Reader<'_>, prev_block: &mut u64) -> Result<Inst, BinTraceError> {
    let t = r.get_u8()?;
    let kind = t & KIND_MASK;
    let arg = t >> 3;
    match kind {
        KIND_ALU | KIND_ALU_WAIT => {
            let stall = if arg < TAG_ARG_SPILL {
                u32::from(arg)
            } else {
                let stall = u32::try_from(r.get_varint()?)
                    .map_err(|_| BinTraceError::Malformed("ALU stall overflows u32".into()))?;
                if stall < u32::from(TAG_ARG_SPILL) {
                    return Err(BinTraceError::Malformed(format!(
                        "spilled stall {stall} fits the tag byte (non-canonical)"
                    )));
                }
                stall
            };
            Ok(Inst::Alu { stall, wait_mem: kind == KIND_ALU_WAIT })
        }
        KIND_LOAD | KIND_LOAD_DEP | KIND_STORE => {
            let n = if arg == 0 {
                let n = r.get_varint()?;
                if n < u64::from(TAG_ARG_SPILL) || n > MAX_ACCESSES_PER_INST as u64 {
                    return Err(BinTraceError::Malformed(format!(
                        "varint access count {n} outside {TAG_ARG_SPILL}..={MAX_ACCESSES_PER_INST}"
                    )));
                }
                n
            } else {
                u64::from(arg)
            };
            let mut accesses = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let v = r.get_varint()?;
                let mask = crate::narrow::u64_to_u8(v & 0xF, "masked to four bits");
                if mask == 0 {
                    return Err(BinTraceError::Malformed("empty sector mask".into()));
                }
                let delta = unzigzag(v >> 4);
                let block = prev_block.wrapping_add(delta as u64);
                if block > MAX_BLOCK {
                    return Err(BinTraceError::Malformed(format!(
                        "line block {block:#x} overflows the address space"
                    )));
                }
                *prev_block = block;
                accesses.push(Access { line_addr: block << LINE_SHIFT, sectors: SectorMask(mask) });
            }
            if kind == KIND_STORE {
                Ok(Inst::Store { accesses })
            } else {
                Ok(Inst::Load { accesses, dependent: kind == KIND_LOAD_DEP })
            }
        }
        KIND_EXIT => {
            if arg != 0 {
                return Err(BinTraceError::Malformed(format!("exit record with payload bits {arg}")));
            }
            Ok(Inst::Exit)
        }
        other => Err(BinTraceError::Malformed(format!("unknown record kind {other}"))),
    }
}

/// One stream's index entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StreamEntry {
    sm: u32,
    warp: u32,
    insts: u64,
    /// Byte offset of the stream's records in the data section.
    offset: usize,
    /// Byte length of the stream's records.
    len: usize,
}

/// Summary of one stream, as reported by [`BinaryTrace::streams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamInfo {
    /// SM index.
    pub sm: u32,
    /// Warp index within the SM.
    pub warp: u32,
    /// Number of recorded instructions.
    pub insts: u64,
    /// Encoded size of the stream's records.
    pub bytes: usize,
}

/// A validated `SECMTRC` container: the file's data section (shared,
/// immutable) plus the decoded stream index. Replay cursors borrow the
/// backing buffer via `Arc`, so a thousand warps replaying a gigabyte
/// trace hold one copy of the bytes and [`CHUNK_INSTS`] decoded
/// instructions each.
#[derive(Debug, Clone)]
pub struct BinaryTrace {
    data: Arc<[u8]>,
    index: Vec<StreamEntry>,
}

impl BinaryTrace {
    /// True when `bytes` starts with the `SECMTRC` magic — the sniff
    /// [`crate::trace::TraceKernel::from_file`] uses to pick a decoder.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= BIN_MAGIC.len() && bytes[..BIN_MAGIC.len()] == BIN_MAGIC
    }

    /// Decodes and fully validates a `SECMTRC` file: header, section
    /// checksums, index ordering and limits, and a complete walk of
    /// every stream's records. After a successful decode the replay
    /// cursors cannot encounter a malformed record.
    ///
    /// # Errors
    ///
    /// Any [`BinTraceError`]; corruption is always detected because
    /// every byte of the file is either validated structure or covered
    /// by a section checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, BinTraceError> {
        if bytes.len() < BIN_MAGIC.len() {
            return Err(BinTraceError::Truncated { needed: BIN_MAGIC.len(), available: bytes.len() });
        }
        if !Self::sniff(bytes) {
            return Err(BinTraceError::BadMagic);
        }
        let mut r = Reader::new(&bytes[BIN_MAGIC.len()..]);
        let version = r.get_u32()?;
        if version != BIN_FORMAT_VERSION {
            return Err(BinTraceError::BadVersion { found: version, expected: BIN_FORMAT_VERSION });
        }
        let index_body = checked_section(&mut r, "index")?;
        let data_body = checked_section(&mut r, "data")?;
        r.expect_end()?;

        let mut ir = Reader::new(index_body);
        let streams = ir.get_varint()?;
        // Every index entry costs at least four bytes, so a count beyond
        // the body length is corruption, not a request to allocate.
        if streams > index_body.len() as u64 {
            return Err(BinTraceError::CountTooLarge { count: streams, remaining: index_body.len() });
        }
        let mut index = Vec::with_capacity(streams as usize);
        let mut offset = 0usize;
        let mut prev_key: Option<(u32, u32)> = None;
        for _ in 0..streams {
            let sm = u32::try_from(ir.get_varint()?)
                .ok()
                .filter(|v| *v <= MAX_TRACE_SM)
                .ok_or_else(|| BinTraceError::Malformed(format!("SM index exceeds {MAX_TRACE_SM}")))?;
            let warp = u32::try_from(ir.get_varint()?)
                .ok()
                .filter(|v| *v <= MAX_TRACE_WARP)
                .ok_or_else(|| BinTraceError::Malformed(format!("warp index exceeds {MAX_TRACE_WARP}")))?;
            if prev_key.is_some_and(|p| p >= (sm, warp)) {
                return Err(BinTraceError::Malformed(format!(
                    "index entry (sm {sm}, warp {warp}) out of order or duplicated"
                )));
            }
            prev_key = Some((sm, warp));
            let insts = ir.get_varint()?;
            let len = usize::try_from(ir.get_varint()?)
                .map_err(|_| BinTraceError::Malformed("stream length overflows usize".into()))?;
            // Every record costs at least one byte.
            if insts > len as u64 {
                return Err(BinTraceError::Malformed(format!(
                    "stream (sm {sm}, warp {warp}) claims {insts} instructions in {len} bytes"
                )));
            }
            let end = offset.checked_add(len).filter(|e| *e <= data_body.len()).ok_or(
                BinTraceError::CountTooLarge { count: len as u64, remaining: data_body.len() - offset },
            )?;
            index.push(StreamEntry { sm, warp, insts, offset, len });
            offset = end;
        }
        ir.expect_end()?;
        if offset != data_body.len() {
            return Err(BinTraceError::Malformed(format!(
                "data section holds {} bytes but the index accounts for {offset}",
                data_body.len()
            )));
        }

        // Walk every record once so replay never sees a malformed one.
        for e in &index {
            let mut sr = Reader::new(&data_body[e.offset..e.offset + e.len]);
            let mut prev_block = 0u64;
            for i in 0..e.insts {
                decode_inst(&mut sr, &mut prev_block).map_err(|err| {
                    BinTraceError::Malformed(format!(
                        "stream (sm {}, warp {}) record {i}: {err}",
                        e.sm, e.warp
                    ))
                })?;
            }
            sr.expect_end().map_err(|_| {
                BinTraceError::Malformed(format!(
                    "stream (sm {}, warp {}) has trailing record bytes",
                    e.sm, e.warp
                ))
            })?;
        }
        Ok(Self { data: Arc::from(data_body), index })
    }

    /// Reads and decodes a `SECMTRC` file.
    ///
    /// # Errors
    ///
    /// [`BinTraceError::Io`] on filesystem failure, any decode error
    /// from [`BinaryTrace::decode`] otherwise.
    pub fn from_file(path: &Path) -> Result<Self, BinTraceError> {
        let bytes = std::fs::read(path).map_err(|e| BinTraceError::Io(format!("{}: {e}", path.display())))?;
        Self::decode(&bytes)
    }

    /// Number of recorded warp streams.
    pub fn warp_count(&self) -> usize {
        self.index.len()
    }

    /// Total recorded instructions across all streams.
    pub fn total_insts(&self) -> u64 {
        self.index.iter().map(|e| e.insts).sum()
    }

    /// Per-stream summaries, in ascending `(sm, warp)` order.
    pub fn streams(&self) -> impl Iterator<Item = StreamInfo> + '_ {
        self.index.iter().map(|e| StreamInfo { sm: e.sm, warp: e.warp, insts: e.insts, bytes: e.len })
    }

    /// Bytes this container keeps resident: the shared backing buffer
    /// plus the index. Replay adds only the bounded per-cursor state —
    /// never a decoded copy of the streams.
    pub fn resident_bytes(&self) -> usize {
        self.data.len() + self.index.len() * core::mem::size_of::<StreamEntry>()
    }

    /// Highest recorded SM index + 1, capped at `available` (the same
    /// shape the text [`crate::trace::TraceKernel`] reports).
    pub fn active_sms(&self, available: u32) -> u32 {
        self.index.iter().map(|e| e.sm + 1).max().unwrap_or(1).min(available)
    }

    /// Highest recorded warp index + 1 on `sm` (1 when none recorded).
    pub fn warps_per_sm(&self, sm: u32) -> u32 {
        self.index.iter().filter(|e| e.sm == sm).map(|e| e.warp + 1).max().unwrap_or(1)
    }

    /// Materializes the streams back into a decoded [`Trace`] (the
    /// binary→text conversion path; replay never calls this).
    pub fn to_trace(&self) -> Trace {
        let mut out = Trace::new();
        for e in &self.index {
            let mut insts = Vec::with_capacity(usize::try_from(e.insts).unwrap_or(0));
            let mut sr = Reader::new(&self.data[e.offset..e.offset + e.len]);
            let mut prev_block = 0u64;
            for _ in 0..e.insts {
                match decode_inst(&mut sr, &mut prev_block) {
                    Ok(inst) => insts.push(inst),
                    Err(_) => {
                        debug_assert!(false, "validated stream failed to decode");
                        break;
                    }
                }
            }
            out.insert(e.sm, e.warp, insts);
        }
        out
    }

    /// A streaming replay cursor for one warp. Unrecorded warps get an
    /// empty cursor that exits immediately.
    pub(crate) fn cursor(&self, sm: u32, warp: u32) -> BinCursor {
        let entry =
            self.index.binary_search_by_key(&(sm, warp), |e| (e.sm, e.warp)).ok().map(|i| self.index[i]);
        let (offset, len, total) = entry.map_or((0, 0, 0), |e| (e.offset, e.len, e.insts));
        BinCursor {
            data: Arc::clone(&self.data),
            start: offset,
            end: offset + len,
            total,
            at: 0,
            decoded: 0,
            prev_block: 0,
            pos: 0,
            chunk: VecDeque::with_capacity(CHUNK_INSTS),
        }
    }
}

/// Reads one length-prefixed, checksummed section body.
fn checked_section<'a>(r: &mut Reader<'a>, section: &'static str) -> Result<&'a [u8], BinTraceError> {
    let body = r.get_bytes()?;
    let stored = r.get_u64()?;
    let computed = fnv1a(body);
    if stored != computed {
        return Err(BinTraceError::BadChecksum { section, stored, computed });
    }
    Ok(body)
}

/// Streaming replay over one stream of a [`BinaryTrace`]: decodes
/// [`CHUNK_INSTS`] instructions ahead out of the shared backing buffer
/// and hands them out one at a time. `save_state` is the same single
/// `[pos]` word the text replay writes, so checkpoint frames are
/// byte-identical whichever format the trace was ingested from.
#[derive(Debug)]
pub(crate) struct BinCursor {
    data: Arc<[u8]>,
    /// Stream record range within `data`.
    start: usize,
    end: usize,
    /// Instructions in the stream.
    total: u64,
    /// Bytes of the stream decoded so far (relative to `start`).
    at: usize,
    /// Records decoded so far (`chunk` holds the tail of them).
    decoded: u64,
    /// Delta-coder state at the decode frontier.
    prev_block: u64,
    /// Instructions handed out via `next_inst`.
    pos: u64,
    /// Decode-ahead buffer: records `pos..decoded`.
    chunk: VecDeque<Inst>,
}

impl BinCursor {
    /// Decodes up to [`CHUNK_INSTS`] more records into the look-ahead
    /// buffer. Kept out of `next_inst` so the per-instruction path is
    /// a buffer pop; decode errors are impossible after load-time
    /// validation and degrade to an early exit in release builds.
    fn refill(&mut self) {
        if self.decoded >= self.total {
            return;
        }
        let Some(rest) = self.data.get(self.start + self.at..self.end) else {
            debug_assert!(false, "cursor range outside backing buffer");
            self.decoded = self.total;
            return;
        };
        let mut r = Reader::new(rest);
        while self.decoded < self.total && self.chunk.len() < CHUNK_INSTS {
            match decode_inst(&mut r, &mut self.prev_block) {
                Ok(inst) => {
                    self.decoded += 1;
                    self.chunk.push_back(inst);
                }
                Err(_) => {
                    debug_assert!(false, "validated stream failed to decode");
                    self.decoded = self.total;
                    break;
                }
            }
        }
        self.at += rest.len() - r.remaining();
    }
}

impl WarpProgram for BinCursor {
    fn next_inst(&mut self) -> Inst {
        if self.chunk.is_empty() {
            // lint:allow(T1): decode allocates instruction access lists and error messages once per trace block, not per instruction
            self.refill();
        }
        self.pos += 1;
        self.chunk.pop_front().unwrap_or(Inst::Exit)
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.pos);
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), StateError> {
        crate::kernel::expect_state_len(state, 1, "trace replay")?;
        let pos = state[0];
        // One past the end is legal (the implicit Exit was consumed);
        // anything further means the state belongs to a different trace.
        if pos > self.total + 1 {
            return Err(StateError::new(
                "trace replay",
                format!("position {pos} beyond stream of {} instructions", self.total),
            ));
        }
        // Re-decode forward from the stream start. Cold path: this runs
        // once per checkpoint restore, not per cycle.
        self.at = 0;
        self.decoded = 0;
        self.prev_block = 0;
        self.pos = pos;
        self.chunk.clear();
        let skip = pos.min(self.total);
        if skip > 0 {
            let Some(rest) = self.data.get(self.start..self.end) else {
                return Err(StateError::new("trace replay", "cursor range outside backing buffer"));
            };
            let mut r = Reader::new(rest);
            for _ in 0..skip {
                if decode_inst(&mut r, &mut self.prev_block).is_err() {
                    return Err(StateError::new("trace replay", "stream undecodable at restore"));
                }
            }
            self.at = rest.len() - r.remaining();
            self.decoded = skip;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, StreamKernel};
    use crate::types::FULL_SECTOR_MASK;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.insert(
            0,
            0,
            vec![
                Inst::Alu { stall: 3, wait_mem: false },
                Inst::Load {
                    accesses: vec![
                        Access { line_addr: 0x1a80, sectors: SectorMask(0b0011) },
                        Access { line_addr: 0x2b00, sectors: SectorMask(0b0001) },
                    ],
                    dependent: true,
                },
                Inst::Alu { stall: 1, wait_mem: true },
                Inst::Store { accesses: vec![Access { line_addr: 0x3c80, sectors: FULL_SECTOR_MASK }] },
                Inst::Exit,
            ],
        );
        t.insert(1, 3, vec![Inst::alu(), Inst::Exit]);
        t
    }

    #[test]
    fn roundtrip_preserves_streams() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        assert!(BinaryTrace::sniff(&bytes));
        let bin = BinaryTrace::decode(&bytes).expect("decodes");
        assert_eq!(bin.warp_count(), 2);
        assert_eq!(bin.total_insts(), 7);
        assert_eq!(bin.to_trace(), trace);
        // Decode is canonical: re-encoding the materialized trace
        // reproduces the file byte for byte.
        assert_eq!(encode(&bin.to_trace()), bytes);
    }

    #[test]
    fn binary_is_much_smaller_than_text() {
        let kernel = StreamKernel { alu_per_mem: 2, bytes_per_warp: 1 << 16, warps: 4 };
        let trace = Trace::record(&kernel, 4, 500);
        let text = trace.to_text();
        let bin = encode(&trace);
        assert!(
            bin.len() * 10 <= text.len() * 4,
            "binary {} bytes vs text {} bytes — want <= 40%",
            bin.len(),
            text.len()
        );
    }

    #[test]
    fn cursor_replays_identically_to_decoded_stream() {
        let kernel = StreamKernel { alu_per_mem: 1, bytes_per_warp: 1 << 14, warps: 2 };
        let trace = Trace::record(&kernel, 2, 200);
        let bin = BinaryTrace::decode(&encode(&trace)).expect("decodes");
        for ((sm, warp), insts) in trace.streams() {
            let mut cursor = bin.cursor(sm, warp);
            for (i, want) in insts.iter().enumerate() {
                assert_eq!(&cursor.next_inst(), want, "sm {sm} warp {warp} inst {i}");
            }
            // Past the end: implicit Exit, forever.
            assert_eq!(cursor.next_inst(), Inst::Exit);
            assert_eq!(cursor.next_inst(), Inst::Exit);
        }
    }

    #[test]
    fn unrecorded_warp_exits_immediately() {
        let bin = BinaryTrace::decode(&encode(&sample_trace())).expect("decodes");
        let mut cursor = bin.cursor(3, 9);
        assert_eq!(cursor.next_inst(), Inst::Exit);
    }

    #[test]
    fn cursor_state_roundtrip_matches_text_replay() {
        let trace = sample_trace();
        let bin = BinaryTrace::decode(&encode(&trace)).expect("decodes");
        let mut cursor = bin.cursor(0, 0);
        let _ = cursor.next_inst();
        let _ = cursor.next_inst();
        let mut state = Vec::new();
        cursor.save_state(&mut state);
        // Same wire state as the text replay: one position word.
        let text_kernel = crate::trace::TraceKernel::new(trace.clone(), "t");
        let mut text_prog = text_kernel.spawn(0, 0);
        let _ = text_prog.next_inst();
        let _ = text_prog.next_inst();
        let mut text_state = Vec::new();
        text_prog.save_state(&mut text_state);
        assert_eq!(state, text_state);

        let mut fresh = bin.cursor(0, 0);
        fresh.restore_state(&state).expect("restores");
        let expected = trace.stream(0, 0).expect("stream")[2].clone();
        assert_eq!(fresh.next_inst(), expected);
        assert!(fresh.restore_state(&[99]).is_err(), "position beyond stream");
        assert!(fresh.restore_state(&[0, 0]).is_err(), "wrong word count");
        // Restoring to exactly one-past-the-end is legal.
        let mut done = bin.cursor(0, 0);
        done.restore_state(&[6]).expect("one past end is legal");
        assert_eq!(done.next_inst(), Inst::Exit);
    }

    #[test]
    fn kernel_shape_helpers_match_text() {
        let bin = BinaryTrace::decode(&encode(&sample_trace())).expect("decodes");
        assert_eq!(bin.active_sms(8), 2);
        assert_eq!(bin.active_sms(1), 1);
        assert_eq!(bin.warps_per_sm(1), 4);
        assert_eq!(bin.warps_per_sm(0), 1);
        assert_eq!(bin.warps_per_sm(7), 1);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode(&sample_trace());
        for cut in 0..bytes.len() {
            assert!(
                BinaryTrace::decode(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let bytes = encode(&sample_trace());
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                assert!(BinaryTrace::decode(&bad).is_err(), "flip of bit {bit} at byte {i} must not decode");
            }
        }
    }

    #[test]
    fn structural_corruption_is_typed() {
        let good = encode(&sample_trace());
        let mut magic = good.clone();
        magic[0] ^= 0xFF;
        assert!(matches!(BinaryTrace::decode(&magic), Err(BinTraceError::BadMagic)));
        assert!(matches!(BinaryTrace::decode(&good[..4]), Err(BinTraceError::Truncated { .. })));
        // Rebuild with a bumped version so the checksum stays valid.
        let trace = sample_trace();
        let body = encode(&trace);
        let mut v2 = body.clone();
        v2[8..12].copy_from_slice(&(BIN_FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(BinaryTrace::decode(&v2), Err(BinTraceError::BadVersion { .. })));
        // A flipped data byte trips the data checksum specifically.
        let mut flipped = body.clone();
        let n = flipped.len();
        flipped[n - 10] ^= 0x01;
        assert!(matches!(
            BinaryTrace::decode(&flipped),
            Err(BinTraceError::BadChecksum { section: "data", .. })
        ));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = Trace::new();
        let bin = BinaryTrace::decode(&encode(&trace)).expect("decodes");
        assert_eq!(bin.warp_count(), 0);
        assert_eq!(bin.total_insts(), 0);
        assert_eq!(bin.to_trace(), trace);
    }

    #[test]
    fn file_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join("secmem-bintrace-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("t.smtrc");
        let trace = sample_trace();
        write_file(&trace, &path).expect("writes");
        let bin = BinaryTrace::from_file(&path).expect("loads");
        assert_eq!(bin.to_trace(), trace);
        assert!(!path.with_extension("smtrc.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resident_bytes_tracks_backing_buffer() {
        let kernel = StreamKernel { alu_per_mem: 1, bytes_per_warp: 1 << 14, warps: 2 };
        let trace = Trace::record(&kernel, 2, 200);
        let bytes = encode(&trace);
        let bin = BinaryTrace::decode(&bytes).expect("decodes");
        assert!(bin.resident_bytes() < bytes.len() + 1024);
        assert!(bin.resident_bytes() < trace.decoded_bytes_estimate());
    }
}
