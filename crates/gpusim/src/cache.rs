//! A sectored, set-associative, write-back cache with LRU replacement and
//! allocate-on-fill semantics.
//!
//! GPUs use 128 B lines split into four 32 B sectors: a miss fetches only
//! the missing sectors, and a line may hold any subset of valid sectors.
//! This structure backs the per-SM L1, the L2 banks, and (in `secmem-core`)
//! all metadata caches — the paper's metadata caches are explicitly
//! "128 B blk, allocate-on-fill" (Table III).

use secmem_checkpoint::{CheckpointError, Reader, Snapshot as _, Writer};

use crate::error::ConfigError;
use crate::types::{Addr, SectorMask, LINE_SIZE};

/// Result of probing the cache for a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// All requested sectors are valid in the cache.
    Hit,
    /// The line is present (or reserved) but some requested sectors are
    /// missing; the mask holds the missing sectors.
    PartialMiss(SectorMask),
    /// The line is entirely absent.
    Miss,
}

/// Result of a store access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The line was present; the written sectors are now valid + dirty.
    Hit,
    /// The line was absent. The caller decides whether to write-validate
    /// (install via [`SectoredCache::fill`] with dirty sectors) or forward.
    Miss,
}

/// A line evicted by [`SectoredCache::fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Base address of the evicted line.
    pub line_addr: Addr,
    /// Dirty sectors that must be written back (empty mask = clean evict).
    pub dirty: SectorMask,
}

/// Replacement policy for a [`SectoredCache`].
///
/// The paper (§V-D) observes that GPU streaming traffic thrashes
/// LRU-managed unified metadata caches and suggests "smart replacement
/// policies" as an alternative to splitting the caches; [`ReplacementPolicy::Srrip`]
/// implements 2-bit SRRIP (Jaleel et al., ISCA'10) to test that conjecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the default everywhere in the paper).
    #[default]
    Lru,
    /// Static re-reference interval prediction: new lines insert with a
    /// distant re-reference prediction, so a streaming burst evicts
    /// itself instead of the reused working set.
    Srrip,
}

/// Maximum re-reference prediction value for 2-bit SRRIP.
const RRPV_MAX: u8 = 3;

#[derive(Debug, Clone, Copy)]
struct LineState {
    tag: Addr,
    valid: SectorMask,
    dirty: SectorMask,
    lru: u64,
    rrpv: u8,
    present: bool,
}

impl LineState {
    const INVALID: LineState = LineState {
        tag: 0,
        valid: SectorMask::EMPTY,
        dirty: SectorMask::EMPTY,
        lru: 0,
        rrpv: RRPV_MAX,
        present: false,
    };
}

/// Aggregate hit/miss statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Sector-granularity accesses that hit.
    pub hits: u64,
    /// Sector-granularity accesses that missed (line or sector).
    pub misses: u64,
    /// Fill operations (allocations and merges into resident lines).
    pub fills: u64,
    /// Evictions with at least one dirty sector.
    pub dirty_evictions: u64,
    /// Total evictions of valid lines.
    pub evictions: u64,
}

impl CacheStats {
    /// Miss rate over all accesses (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// The sectored cache.
///
/// # Example
///
/// ```
/// use secmem_gpusim::cache::{Probe, SectoredCache};
/// use secmem_gpusim::types::{SectorMask, FULL_SECTOR_MASK};
///
/// let mut c = SectoredCache::new(4 * 1024, 4);
/// assert_eq!(c.probe(0x80, SectorMask::single(0)), Probe::Miss);
/// c.fill(0x80, FULL_SECTOR_MASK, SectorMask::EMPTY);
/// assert_eq!(c.probe(0x80, SectorMask::single(2)), Probe::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct SectoredCache {
    sets: Vec<LineState>,
    num_sets: usize,
    assoc: usize,
    tick: u64,
    policy: ReplacementPolicy,
    stats: CacheStats,
}

impl SectoredCache {
    /// Creates a cache of `bytes` capacity and `assoc` ways. If the line
    /// count is smaller than `assoc`, the cache degrades to fully
    /// associative. Set counts need not be powers of two (a 96 KB L2 bank
    /// at 12 ways has 64 sets, but a 6 KB unified metadata cache at
    /// 8 ways has 6 sets).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a positive multiple of the line size, or
    /// the line count is not divisible by the (clamped) associativity.
    pub fn new(bytes: u64, assoc: u32) -> Self {
        Self::with_policy(bytes, assoc, ReplacementPolicy::Lru)
    }

    /// Creates a cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Same geometry constraints as [`SectoredCache::new`].
    pub fn with_policy(bytes: u64, assoc: u32, policy: ReplacementPolicy) -> Self {
        match Self::try_with_policy("cache", bytes, assoc, policy) {
            Ok(cache) => cache,
            // Validated paths go through try_with_policy / GpuConfig::validate.
            // lint:allow(H1): documented panicking convenience constructor
            Err(e) => panic!("{}", e.message),
        }
    }

    /// Checks a (capacity, associativity) pair without building the cache.
    ///
    /// `field` names the configuration knob being validated (e.g.
    /// `"l2_bytes_per_bank/l2_assoc"`) so the error points at the input
    /// that must change. [`GpuConfig::validate`](crate::config::GpuConfig::validate)
    /// runs this for every cache the simulator will construct, which is
    /// what makes the panicking constructors unreachable after a
    /// successful validation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `bytes` is not a positive multiple of
    /// the line size, or the line count is not divisible by the (clamped)
    /// associativity.
    pub fn check_geometry(field: &'static str, bytes: u64, assoc: u32) -> Result<(), ConfigError> {
        if bytes < LINE_SIZE || !bytes.is_multiple_of(LINE_SIZE) {
            return Err(ConfigError::new(
                field,
                format!("capacity must be a multiple of {LINE_SIZE} B, got {bytes}"),
            ));
        }
        let lines = (bytes / LINE_SIZE) as usize;
        let clamped = (assoc as usize).clamp(1, lines);
        if !lines.is_multiple_of(clamped) {
            return Err(ConfigError::new(
                field,
                format!("cache of {bytes} B / assoc {assoc} is not well formed"),
            ));
        }
        Ok(())
    }

    /// Fallible form of [`SectoredCache::with_policy`].
    ///
    /// # Errors
    ///
    /// Returns the same [`ConfigError`] as [`SectoredCache::check_geometry`].
    pub fn try_with_policy(
        field: &'static str,
        bytes: u64,
        assoc: u32,
        policy: ReplacementPolicy,
    ) -> Result<Self, ConfigError> {
        Self::check_geometry(field, bytes, assoc)?;
        let lines = (bytes / LINE_SIZE) as usize;
        let assoc = (assoc as usize).clamp(1, lines);
        let num_sets = lines / assoc;
        Ok(Self {
            sets: vec![LineState::INVALID; lines],
            num_sets,
            assoc,
            tick: 0,
            policy,
            stats: CacheStats::default(),
        })
    }

    #[inline]
    fn set_index(&self, line_addr: Addr) -> usize {
        ((line_addr / LINE_SIZE) as usize) % self.num_sets
    }

    fn ways(&mut self, line_addr: Addr) -> &mut [LineState] {
        let set = self.set_index(line_addr);
        &mut self.sets[set * self.assoc..(set + 1) * self.assoc]
    }

    /// Probes for the given sectors of a line, updating LRU and statistics.
    pub fn probe(&mut self, line_addr: Addr, sectors: SectorMask) -> Probe {
        self.tick += 1;
        let tick = self.tick;
        let mut result = Probe::Miss;
        let ways = self.ways(line_addr);
        for way in ways.iter_mut() {
            if way.present && way.tag == line_addr {
                way.lru = tick;
                way.rrpv = 0;
                result = if way.valid.contains(sectors) {
                    Probe::Hit
                } else {
                    Probe::PartialMiss(sectors.minus(way.valid))
                };
                break;
            }
        }
        match result {
            Probe::Hit => self.stats.hits += 1,
            _ => self.stats.misses += 1,
        }
        result
    }

    /// Probes without updating LRU or statistics.
    pub fn peek(&self, line_addr: Addr, sectors: SectorMask) -> Probe {
        let set = self.set_index(line_addr);
        for way in &self.sets[set * self.assoc..(set + 1) * self.assoc] {
            if way.present && way.tag == line_addr {
                return if way.valid.contains(sectors) {
                    Probe::Hit
                } else {
                    Probe::PartialMiss(sectors.minus(way.valid))
                };
            }
        }
        Probe::Miss
    }

    /// Performs a store: if the line is present, the sectors become valid
    /// and dirty (write-validate within a resident line).
    pub fn write(&mut self, line_addr: Addr, sectors: SectorMask) -> WriteOutcome {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways(line_addr);
        for way in ways.iter_mut() {
            if way.present && way.tag == line_addr {
                way.lru = tick;
                way.rrpv = 0;
                way.valid = way.valid.union(sectors);
                way.dirty = way.dirty.union(sectors);
                self.stats.hits += 1;
                return WriteOutcome::Hit;
            }
        }
        self.stats.misses += 1;
        WriteOutcome::Miss
    }

    /// Installs sectors of a line (allocate-on-fill). Sectors listed in
    /// `dirty` are installed dirty (write-validate); they must be a subset
    /// of `sectors`.
    ///
    /// Returns the eviction this fill caused, if any.
    ///
    /// # Panics
    ///
    /// Panics if `dirty` is not a subset of `sectors`.
    pub fn fill(&mut self, line_addr: Addr, sectors: SectorMask, dirty: SectorMask) -> Option<Eviction> {
        assert!(sectors.contains(dirty), "dirty sectors must be filled");
        self.tick += 1;
        self.stats.fills += 1;
        let tick = self.tick;
        let ways = self.ways(line_addr);

        // Merge into an existing line if present.
        for way in ways.iter_mut() {
            if way.present && way.tag == line_addr {
                way.valid = way.valid.union(sectors);
                way.dirty = way.dirty.union(dirty);
                way.lru = tick;
                return None;
            }
        }
        // Otherwise pick a victim: any invalid way first, else by policy.
        let policy = self.policy;
        let ways = self.ways(line_addr);
        let victim = {
            let invalid = ways.iter().position(|w| !w.present);
            match (invalid, policy) {
                (Some(i), _) => i,
                (None, ReplacementPolicy::Lru) => {
                    let mut victim = 0usize;
                    let mut best = u64::MAX;
                    for (i, way) in ways.iter().enumerate() {
                        if way.lru < best {
                            best = way.lru;
                            victim = i;
                        }
                    }
                    victim
                }
                (None, ReplacementPolicy::Srrip) => loop {
                    if let Some(i) = ways.iter().position(|w| w.rrpv >= RRPV_MAX) {
                        break i;
                    }
                    for way in ways.iter_mut() {
                        way.rrpv = (way.rrpv + 1).min(RRPV_MAX);
                    }
                },
            }
        };
        let old = ways[victim];
        let insert_rrpv = match policy {
            ReplacementPolicy::Lru => 0,
            // SRRIP: predict a distant re-reference for new lines so a
            // streaming burst cannot flush the reused working set.
            ReplacementPolicy::Srrip => RRPV_MAX - 1,
        };
        ways[victim] =
            LineState { tag: line_addr, valid: sectors, dirty, lru: tick, rrpv: insert_rrpv, present: true };
        if old.present {
            self.stats.evictions += 1;
            if !old.dirty.is_empty() {
                self.stats.dirty_evictions += 1;
            }
            Some(Eviction { line_addr: old.tag, dirty: old.dirty })
        } else {
            None
        }
    }

    /// Invalidates the given sectors of a line if present (used by the
    /// write-through L1 on stores). Dirty state is discarded — only safe
    /// for write-through caches.
    pub fn invalidate_sectors(&mut self, line_addr: Addr, sectors: SectorMask) {
        let ways = self.ways(line_addr);
        for way in ways.iter_mut() {
            if way.present && way.tag == line_addr {
                way.valid = way.valid.minus(sectors);
                way.dirty = way.dirty.minus(sectors);
                if way.valid.is_empty() {
                    *way = LineState::INVALID;
                }
                return;
            }
        }
    }

    /// Marks the given sectors dirty if the line is resident (read-modify-
    /// write of metadata that is already cached).
    ///
    /// Returns true if the line was resident.
    pub fn mark_dirty(&mut self, line_addr: Addr, sectors: SectorMask) -> bool {
        let ways = self.ways(line_addr);
        for way in ways.iter_mut() {
            if way.present && way.tag == line_addr {
                way.dirty = way.dirty.union(sectors.intersect(way.valid));
                return true;
            }
        }
        false
    }

    /// Flushes every dirty line, returning the writebacks, and leaves the
    /// cache clean (contents stay valid).
    pub fn flush_dirty(&mut self) -> Vec<Eviction> {
        let mut out = Vec::new();
        for way in &mut self.sets {
            if way.present && !way.dirty.is_empty() {
                out.push(Eviction { line_addr: way.tag, dirty: way.dirty });
                way.dirty = SectorMask::EMPTY;
            }
        }
        out
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().filter(|w| w.present).count()
    }

    /// Total line slots.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len()
    }

    /// Access statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Serializes contents, replacement state and statistics into a
    /// checkpoint payload. Geometry (set count, associativity, policy) is
    /// not stored — it is rebuilt from the configuration and validated on
    /// restore.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_usize(self.sets.len());
        for way in &self.sets {
            w.put_u64(way.tag);
            way.valid.save(w);
            way.dirty.save(w);
            w.put_u64(way.lru);
            w.put_u8(way.rrpv);
            w.put_bool(way.present);
        }
        w.put_u64(self.tick);
        self.stats.save(w);
    }

    /// Restores state saved by [`SectoredCache::save_state`] into a cache
    /// rebuilt with identical geometry.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] if the stored line count does not
    /// match this cache, or a line violates sector-mask invariants; any
    /// decode error otherwise.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let lines = r.get_usize()?;
        if lines != self.sets.len() {
            return Err(CheckpointError::Malformed(format!(
                "cache geometry mismatch: checkpoint has {lines} lines, cache has {}",
                self.sets.len()
            )));
        }
        for way in &mut self.sets {
            let tag = r.get_u64()?;
            let valid = SectorMask::load(r)?;
            let dirty = SectorMask::load(r)?;
            let lru = r.get_u64()?;
            let rrpv = r.get_u8()?;
            let present = r.get_bool()?;
            if !valid.contains(dirty) {
                return Err(CheckpointError::Malformed(format!(
                    "cache line {tag:#x}: dirty sectors {dirty} not a subset of valid {valid}"
                )));
            }
            if rrpv > RRPV_MAX {
                return Err(CheckpointError::Malformed(format!("cache line rrpv {rrpv}")));
            }
            *way = LineState { tag, valid, dirty, lru, rrpv, present };
        }
        self.tick = r.get_u64()?;
        self.stats = CacheStats::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FULL_SECTOR_MASK;

    fn full() -> SectorMask {
        FULL_SECTOR_MASK
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = SectoredCache::new(2048, 4);
        assert_eq!(c.probe(0x100, SectorMask::single(1)), Probe::Miss);
        assert_eq!(c.fill(0x100, SectorMask::single(1), SectorMask::EMPTY), None);
        assert_eq!(c.probe(0x100, SectorMask::single(1)), Probe::Hit);
        assert_eq!(c.probe(0x100, SectorMask::single(2)), Probe::PartialMiss(SectorMask::single(2)));
    }

    #[test]
    fn sector_partial_miss_reports_missing_only() {
        let mut c = SectoredCache::new(2048, 4);
        c.fill(0x0, SectorMask(0b0011), SectorMask::EMPTY);
        match c.probe(0x0, full()) {
            Probe::PartialMiss(m) => assert_eq!(m, SectorMask(0b1100)),
            other => panic!("expected partial miss, got {other:?}"),
        }
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways.
        let mut c = SectoredCache::new(256, 2);
        c.fill(0x0, full(), SectorMask::EMPTY);
        c.fill(0x100, full(), SectorMask::EMPTY);
        // Touch 0x0 so 0x100 becomes LRU.
        assert_eq!(c.probe(0x0, full()), Probe::Hit);
        let ev = c.fill(0x200, full(), SectorMask::EMPTY).expect("must evict");
        assert_eq!(ev.line_addr, 0x100);
        assert_eq!(c.peek(0x0, full()), Probe::Hit);
        assert_eq!(c.peek(0x100, full()), Probe::Miss);
    }

    #[test]
    fn dirty_eviction_carries_dirty_mask() {
        let mut c = SectoredCache::new(256, 2);
        c.fill(0x0, full(), SectorMask::EMPTY);
        assert_eq!(c.write(0x0, SectorMask::single(3)), WriteOutcome::Hit);
        c.fill(0x100, full(), SectorMask::EMPTY);
        let ev = c.fill(0x200, full(), SectorMask::EMPTY).expect("evicts 0x0");
        assert_eq!(ev.line_addr, 0x0);
        assert_eq!(ev.dirty, SectorMask::single(3));
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn write_miss_reported() {
        let mut c = SectoredCache::new(256, 2);
        assert_eq!(c.write(0x40, SectorMask::single(0)), WriteOutcome::Miss);
    }

    #[test]
    fn write_validate_fill_installs_dirty() {
        let mut c = SectoredCache::new(256, 2);
        c.fill(0x0, SectorMask::single(0), SectorMask::single(0));
        c.fill(0x100, full(), SectorMask::EMPTY);
        let ev = c.fill(0x200, full(), SectorMask::EMPTY).expect("evict");
        assert_eq!(ev.line_addr, 0x0);
        assert_eq!(ev.dirty, SectorMask::single(0));
    }

    #[test]
    fn fill_merges_into_existing_line() {
        let mut c = SectoredCache::new(256, 2);
        c.fill(0x0, SectorMask::single(0), SectorMask::EMPTY);
        assert_eq!(c.fill(0x0, SectorMask::single(1), SectorMask::EMPTY), None);
        assert_eq!(c.peek(0x0, SectorMask(0b0011)), Probe::Hit);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_sectors_for_write_through_l1() {
        let mut c = SectoredCache::new(256, 2);
        c.fill(0x0, full(), SectorMask::EMPTY);
        c.invalidate_sectors(0x0, SectorMask::single(2));
        assert_eq!(c.peek(0x0, SectorMask::single(2)), Probe::PartialMiss(SectorMask::single(2)));
        c.invalidate_sectors(0x0, SectorMask(0b1011));
        assert_eq!(c.peek(0x0, SectorMask::single(0)), Probe::Miss);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn mark_dirty_requires_residency() {
        let mut c = SectoredCache::new(256, 2);
        assert!(!c.mark_dirty(0x0, SectorMask::single(0)));
        c.fill(0x0, SectorMask::single(0), SectorMask::EMPTY);
        assert!(c.mark_dirty(0x0, SectorMask::single(0)));
        let evs = c.flush_dirty();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].dirty, SectorMask::single(0));
        assert!(c.flush_dirty().is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut c = SectoredCache::new(256, 2);
        c.probe(0x0, full());
        c.fill(0x0, full(), SectorMask::EMPTY);
        c.probe(0x0, full());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.miss_rate() - 0.5).abs() < 1e-9);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = SectoredCache::new(1024, 4);
        for i in 0..1000u64 {
            c.fill(i * 128, full(), SectorMask::EMPTY);
            assert!(c.occupancy() <= c.capacity_lines());
        }
        assert_eq!(c.occupancy(), c.capacity_lines());
    }

    #[test]
    #[should_panic(expected = "not well formed")]
    fn bad_geometry_panics() {
        let _ = SectoredCache::new(3 * 128, 2);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn unaligned_capacity_panics() {
        let _ = SectoredCache::new(100, 2);
    }

    #[test]
    fn bad_geometry_yields_typed_error() {
        let err = SectoredCache::check_geometry("l2", 3 * 128, 2).unwrap_err();
        assert_eq!(err.field, "l2");
        assert!(err.message.contains("not well formed"));
        let err = SectoredCache::check_geometry("l1", 100, 2).unwrap_err();
        assert_eq!(err.field, "l1");
        assert!(err.message.contains("multiple of"));
        let err = SectoredCache::try_with_policy("l1", 100, 2, ReplacementPolicy::Lru).unwrap_err();
        assert_eq!(err.field, "l1");
    }

    #[test]
    fn try_with_policy_matches_with_policy() {
        let a = SectoredCache::with_policy(4 * 1024, 4, ReplacementPolicy::Srrip);
        let b = SectoredCache::try_with_policy("l1", 4 * 1024, 4, ReplacementPolicy::Srrip)
            .expect("valid geometry");
        assert_eq!(a.capacity_lines(), b.capacity_lines());
        assert_eq!(a.num_sets, b.num_sets);
    }

    #[test]
    fn check_geometry_accepts_clamped_assoc() {
        // assoc larger than the line count degrades to fully associative;
        // the check must clamp the same way the constructor does.
        SectoredCache::check_geometry("md", 4 * 128, 64).expect("clamped to 4 ways");
        let _ = SectoredCache::new(4 * 128, 64);
    }

    #[test]
    fn srrip_protects_reused_lines_from_streaming() {
        // One set, 4 ways. A hot line is reused while a stream floods by;
        // under SRRIP the hot line survives, under LRU it is evicted.
        let hot = 0x0;
        let run = |policy: ReplacementPolicy| {
            let mut c = SectoredCache::with_policy(4 * 128, 4, policy);
            c.fill(hot, full(), SectorMask::EMPTY);
            let _ = c.probe(hot, full()); // establish reuse
            let mut hits = 0;
            let mut line = 1u64;
            for _ in 0..16 {
                // A streaming burst larger than the associativity...
                for _ in 0..6 {
                    c.fill(line * 128, full(), SectorMask::EMPTY);
                    line += 1;
                }
                // ...then the hot line is reused.
                if c.probe(hot, full()) == Probe::Hit {
                    hits += 1;
                }
            }
            hits
        };
        let lru_hits = run(ReplacementPolicy::Lru);
        let srrip_hits = run(ReplacementPolicy::Srrip);
        assert_eq!(lru_hits, 0, "LRU must thrash: the burst flushes the set");
        assert!(srrip_hits > lru_hits, "SRRIP ({srrip_hits}) must beat LRU ({lru_hits}) under thrash");
    }

    #[test]
    fn srrip_victims_are_stream_lines() {
        let mut c = SectoredCache::with_policy(4 * 128, 4, ReplacementPolicy::Srrip);
        c.fill(0x0, full(), SectorMask::EMPTY);
        let _ = c.probe(0x0, full()); // promote to rrpv 0
        for i in 1..=8u64 {
            c.fill(i * 128, full(), SectorMask::EMPTY);
        }
        assert_eq!(c.peek(0x0, full()), Probe::Hit, "promoted line survives");
    }

    #[test]
    fn default_policy_is_lru() {
        let c = SectoredCache::new(1024, 2);
        let d = SectoredCache::with_policy(1024, 2, ReplacementPolicy::default());
        assert_eq!(c.capacity_lines(), d.capacity_lines());
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn non_power_of_two_sets_work() {
        // 6 KB, 8 ways -> 6 sets, like the unified metadata cache.
        let mut c = SectoredCache::new(6 * 1024, 8);
        assert_eq!(c.capacity_lines(), 48);
        for i in 0..200u64 {
            c.fill(i * 128, full(), SectorMask::EMPTY);
        }
        assert!(c.occupancy() <= 48);
    }
}
