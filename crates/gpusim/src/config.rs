//! GPU configuration (Table I of the paper: an Nvidia Volta-class GPU).

use crate::error::ConfigError;
use crate::types::{Addr, Cycle};

/// Warp scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest: keep issuing from the last warp until it
    /// stalls, then fall back to the oldest ready warp (GPGPU-Sim's
    /// default, used by the paper).
    #[default]
    Gto,
    /// Loose round-robin: rotate through warps each cycle.
    Lrr,
}

/// Full configuration of the simulated GPU.
///
/// [`GpuConfig::volta`] reproduces Table I: 80 SMs @ 1132 MHz, 6 MB L2
/// (32 partitions × 2 banks × 96 KB), 868 GB/s GDDR @ 850 MHz.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident warps per SM (kernel may use fewer).
    pub max_warps_per_sm: u32,
    /// Warp instructions issued per SM per cycle (number of schedulers).
    pub issue_width: u32,
    /// Warp scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Threads per warp (32 on all NVIDIA GPUs).
    pub threads_per_warp: u32,
    /// Core clock in MHz (only used for bandwidth conversion / reporting).
    pub core_clock_mhz: u64,
    /// Memory clock in MHz.
    pub mem_clock_mhz: u64,

    /// L1 data cache bytes per SM.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_assoc: u32,
    /// L1 hit latency in cycles.
    pub l1_latency: u32,
    /// L1 MSHR entries per SM.
    pub l1_mshrs: u32,
    /// Maximum merged requests per L1 MSHR entry.
    pub l1_mshr_merge: u32,
    /// Line/sector requests an SM can dispatch to its L1 per cycle.
    pub l1_ports: u32,
    /// Maximum outstanding (independent) loads per warp before it blocks.
    pub max_outstanding_loads: u32,

    /// Number of memory partitions (each with its own controller + engine).
    pub num_partitions: u32,
    /// Address interleave granularity across partitions in bytes.
    pub interleave_bytes: u64,
    /// L2 banks per partition.
    pub l2_banks_per_partition: u32,
    /// L2 bytes per bank.
    pub l2_bytes_per_bank: u64,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// L2 hit latency in cycles (bank access, excluding interconnect).
    pub l2_latency: u32,
    /// L2 MSHR entries per bank.
    pub l2_mshrs: u32,
    /// Maximum merged requests per L2 MSHR entry.
    pub l2_mshr_merge: u32,

    /// One-way interconnect latency in cycles.
    pub icnt_latency: u32,
    /// Messages the interconnect delivers per queue per cycle.
    pub icnt_flit_per_cycle: u32,

    /// DRAM access latency in core cycles (closed-page access, no queueing).
    pub dram_latency: u32,
    /// Peak DRAM bandwidth of the whole GPU in GB/s.
    pub dram_total_gbps: u64,
    /// Achievable fraction of peak bandwidth in percent (row misses,
    /// read/write turnaround, refresh; ~80-90% for GDDR).
    pub dram_efficiency_pct: u64,
    /// DRAM request queue capacity per partition.
    pub dram_queue_cap: usize,
    /// DRAM banks per partition for the row-buffer model (0 = flat-rate
    /// model, the default used for the paper reproduction).
    pub dram_banks: u32,
    /// Row-buffer size in bytes (power of two).
    pub dram_row_bytes: u64,
    /// Extra service cycles on a row-buffer miss.
    pub dram_row_miss_penalty: u32,

    /// XOR-hash the partition index (real GPUs hash channel bits to
    /// avoid partition camping on power-of-two strides). Off by default
    /// to match the paper's plain interleaving.
    pub partition_xor_hash: bool,

    /// Size of the protected address space in bytes (4 GB in the paper).
    pub protected_bytes: Addr,

    /// Forward-progress watchdog window: if no warp instruction issues
    /// and the DRAM channels perform no service for this many cycles
    /// while work is outstanding, [`Simulator::run`](crate::sim::Simulator::run)
    /// stops with a [`StallReport`](crate::error::StallReport) instead of
    /// burning the remaining cycle budget. `0` disables the watchdog.
    ///
    /// The default (50 000 cycles) is two orders of magnitude above the
    /// longest legitimate quiet period in this model (a fully serialized
    /// DRAM round trip plus interconnect latency is < 500 cycles).
    pub watchdog_cycles: Cycle,
}

impl GpuConfig {
    /// The paper's baseline Volta configuration (Table I).
    pub fn volta() -> Self {
        Self {
            num_sms: 80,
            max_warps_per_sm: 64,
            issue_width: 4,
            scheduler: SchedulerPolicy::Gto,
            threads_per_warp: 32,
            core_clock_mhz: 1132,
            mem_clock_mhz: 850,
            l1_bytes: 32 * 1024,
            l1_assoc: 8,
            l1_latency: 28,
            l1_mshrs: 64,
            l1_mshr_merge: 8,
            l1_ports: 2,
            max_outstanding_loads: 6,
            num_partitions: 32,
            interleave_bytes: 256,
            l2_banks_per_partition: 2,
            l2_bytes_per_bank: 96 * 1024,
            l2_assoc: 12,
            l2_latency: 30,
            l2_mshrs: 48,
            l2_mshr_merge: 8,
            icnt_latency: 40,
            icnt_flit_per_cycle: 2,
            dram_latency: 250,
            dram_total_gbps: 868,
            dram_efficiency_pct: 85,
            dram_queue_cap: 32,
            dram_banks: 0,
            dram_row_bytes: 2048,
            dram_row_miss_penalty: 8,
            partition_xor_hash: false,
            protected_bytes: 4 << 30,
            watchdog_cycles: 50_000,
        }
    }

    /// A scaled-down configuration for fast unit/integration tests:
    /// 8 SMs, 4 partitions, same per-partition geometry and per-partition
    /// DRAM bandwidth as [`GpuConfig::volta`].
    pub fn small() -> Self {
        Self {
            num_sms: 8,
            num_partitions: 4,
            dram_total_gbps: 868 / 8, // 4 of 32 partitions
            protected_bytes: 512 << 20,
            ..Self::volta()
        }
    }

    /// Total L2 capacity in bytes.
    pub fn l2_total_bytes(&self) -> u64 {
        self.num_partitions as u64 * self.l2_banks_per_partition as u64 * self.l2_bytes_per_bank
    }

    /// *Achievable* DRAM bandwidth per partition, in bytes per core cycle,
    /// as a 22.10 fixed-point value (peak scaled by the efficiency factor).
    pub fn dram_bytes_per_cycle_fp(&self) -> u64 {
        // GB/s -> bytes per core cycle: gbps * 1e9 / (partitions * core_mhz * 1e6)
        let num = self.dram_total_gbps * 1_000_000_000 * 1024 * self.dram_efficiency_pct;
        let den = self.num_partitions as u64 * self.core_clock_mhz * 1_000_000 * 100;
        num / den
    }

    /// Achievable DRAM bytes per cycle per partition (for reporting).
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bytes_per_cycle_fp() as f64 / 1024.0
    }

    /// *Peak* (nameplate) DRAM bytes per core cycle for the whole GPU.
    /// Bandwidth-utilization figures are reported against this, like the
    /// paper reports utilization of the 868 GB/s peak.
    pub fn dram_peak_total_bytes_per_cycle(&self) -> f64 {
        self.dram_total_gbps as f64 * 1e9 / (self.core_clock_mhz as f64 * 1e6)
    }

    /// Protected bytes mapped to each partition.
    pub fn protected_bytes_per_partition(&self) -> u64 {
        self.protected_bytes / self.num_partitions as u64
    }

    /// Peak theoretical IPC (thread instructions per cycle).
    pub fn peak_ipc(&self) -> f64 {
        (self.num_sms * self.issue_width * self.threads_per_warp) as f64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.num_partitions.is_power_of_two() {
            return Err(ConfigError::new(
                "num_partitions",
                format!("must be a power of two, got {}", self.num_partitions),
            ));
        }
        if !self.interleave_bytes.is_power_of_two() || self.interleave_bytes < crate::types::LINE_SIZE {
            return Err(ConfigError::new(
                "interleave_bytes",
                format!(
                    "must be a power of two >= {}, got {}",
                    crate::types::LINE_SIZE,
                    self.interleave_bytes
                ),
            ));
        }
        if !self.l2_banks_per_partition.is_power_of_two() {
            return Err(ConfigError::new("l2_banks_per_partition", "must be a power of two"));
        }
        if self.issue_width == 0 || self.num_sms == 0 || self.max_warps_per_sm == 0 {
            return Err(ConfigError::new(
                "num_sms/issue_width/max_warps_per_sm",
                "SM parameters must be nonzero",
            ));
        }
        if !self.protected_bytes.is_multiple_of(self.num_partitions as u64 * self.interleave_bytes) {
            return Err(ConfigError::new("protected_bytes", "must be a multiple of partitions * interleave"));
        }
        if self.icnt_latency == 0 {
            // The phased step loop replays the serial schedule only
            // because a message pushed at cycle `now` can never be
            // delivered at `now`; zero latency would break that.
            return Err(ConfigError::new("icnt_latency", "must be at least 1 cycle"));
        }
        // Pre-check every cache geometry the simulator will construct, so
        // the panicking SectoredCache constructors are provably
        // unreachable after a successful validation (a hostile sweep spec
        // fails here with a typed error instead of panicking a worker).
        crate::cache::SectoredCache::check_geometry("l1_bytes/l1_assoc", self.l1_bytes, self.l1_assoc)?;
        crate::cache::SectoredCache::check_geometry(
            "l2_bytes_per_bank/l2_assoc",
            self.l2_bytes_per_bank,
            self.l2_assoc,
        )?;
        Ok(())
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::volta()
    }
}

/// Maps global addresses to (partition, partition-local offset).
///
/// Memory is interleaved across partitions at [`GpuConfig::interleave_bytes`]
/// granularity, like real GPUs stripe consecutive 256 B chunks across
/// memory channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    interleave: u64,
    partitions: u64,
    xor_hash: bool,
}

impl AddressMap {
    /// Creates the map from a configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        Self {
            interleave: cfg.interleave_bytes,
            partitions: cfg.num_partitions as u64,
            xor_hash: cfg.partition_xor_hash,
        }
    }

    /// The partition owning `addr`.
    #[inline]
    pub fn partition_of(&self, addr: Addr) -> u32 {
        let chunk = addr / self.interleave;
        let base = chunk % self.partitions;
        if self.xor_hash {
            // Fold the next-higher chunk bits in; stays bijective per
            // (partition, local) because the folded bits are part of the
            // local offset.
            (base ^ ((chunk / self.partitions) % self.partitions)) as u32
        } else {
            base as u32
        }
    }

    /// The partition-local byte offset of `addr`.
    #[inline]
    pub fn local_offset(&self, addr: Addr) -> Addr {
        let chunk = addr / self.interleave;
        (chunk / self.partitions) * self.interleave + (addr % self.interleave)
    }

    /// Inverse of [`AddressMap::local_offset`]: reconstructs the global
    /// address from a partition id and local offset.
    #[inline]
    pub fn global_addr(&self, partition: u32, local: Addr) -> Addr {
        let chunk_div = local / self.interleave;
        let slot =
            if self.xor_hash { (partition as u64) ^ (chunk_div % self.partitions) } else { partition as u64 };
        (chunk_div * self.partitions + slot) * self.interleave + (local % self.interleave)
    }

    /// The L2 bank within the partition for `addr` (a *global* address).
    ///
    /// Banks are selected by the partition-local chunk index, i.e.
    /// `(local_offset / interleave) % banks`. This is deliberately
    /// independent of the `xor_hash` slot swizzle: the swizzle permutes
    /// which *partition* owns a chunk but never changes the chunk's
    /// partition-local offset, so a bank index computed from a global
    /// address agrees with one computed from the reconstructed
    /// `global_addr(partition_of(addr), local_offset(addr))` — pinned by
    /// the `bank_of_agrees_through_local_roundtrip` property test.
    #[inline]
    pub fn bank_of(&self, addr: Addr, banks: u32) -> u32 {
        crate::narrow::u64_to_u32(
            self.local_offset(addr) / self.interleave % banks as u64,
            "bank index is reduced mod banks: u32",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_matches_table1() {
        let cfg = GpuConfig::volta();
        assert_eq!(cfg.num_sms, 80);
        assert_eq!(cfg.l2_total_bytes(), 6 * 1024 * 1024);
        assert_eq!(cfg.num_partitions, 32);
        assert_eq!(cfg.protected_bytes, 4 << 30);
        cfg.validate().expect("volta config is valid");
    }

    #[test]
    fn bandwidth_conversion() {
        let mut cfg = GpuConfig::volta();
        cfg.dram_efficiency_pct = 100;
        // 868/32 GB/s at 1132 MHz ~= 23.96 B/cycle at 100% efficiency.
        let b = cfg.dram_bytes_per_cycle();
        assert!((b - 23.96).abs() < 0.05, "got {b}");
        // Whole-GPU nameplate peak.
        let p = cfg.dram_peak_total_bytes_per_cycle();
        assert!((p - 766.8).abs() < 1.0, "got {p}");
        // Default efficiency derates the achievable rate.
        let derated = GpuConfig::volta().dram_bytes_per_cycle();
        assert!((derated - 23.96 * 0.85).abs() < 0.1, "got {derated}");
    }

    #[test]
    fn peak_ipc_is_10240() {
        assert_eq!(GpuConfig::volta().peak_ipc(), 10240.0);
    }

    #[test]
    fn address_map_roundtrip() {
        let cfg = GpuConfig::volta();
        let map = AddressMap::new(&cfg);
        for addr in [0u64, 255, 256, 4096, 123_456_789, (4 << 30) - 1] {
            let p = map.partition_of(addr);
            let l = map.local_offset(addr);
            assert_eq!(map.global_addr(p, l), addr, "roundtrip failed for {addr:#x}");
        }
    }

    #[test]
    fn interleave_distributes_evenly() {
        let cfg = GpuConfig::volta();
        let map = AddressMap::new(&cfg);
        let mut counts = vec![0u32; cfg.num_partitions as usize];
        for chunk in 0..1024u64 {
            counts[map.partition_of(chunk * 256) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 32));
    }

    #[test]
    fn local_offsets_are_dense_per_partition() {
        let cfg = GpuConfig::small();
        let map = AddressMap::new(&cfg);
        // Within one partition, consecutive owned chunks have consecutive local offsets.
        let mut locals: Vec<u64> = (0..64u64)
            .map(|c| c * cfg.interleave_bytes)
            .filter(|&a| map.partition_of(a) == 1)
            .map(|a| map.local_offset(a))
            .collect();
        locals.sort_unstable();
        for (i, l) in locals.iter().enumerate() {
            assert_eq!(*l, i as u64 * cfg.interleave_bytes);
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = GpuConfig::volta();
        cfg.num_partitions = 3;
        assert!(cfg.validate().is_err());
        let mut cfg = GpuConfig::volta();
        cfg.interleave_bytes = 100;
        assert!(cfg.validate().is_err());
        let mut cfg = GpuConfig::volta();
        cfg.issue_width = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = GpuConfig::volta();
        cfg.icnt_latency = 0;
        assert_eq!(cfg.validate().unwrap_err().field, "icnt_latency");
    }

    #[test]
    fn validate_errors_name_the_field() {
        let mut cfg = GpuConfig::volta();
        cfg.num_partitions = 5;
        let err = cfg.validate().expect_err("invalid");
        assert_eq!(err.field, "num_partitions");
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn bank_mapping_in_range() {
        let cfg = GpuConfig::volta();
        let map = AddressMap::new(&cfg);
        for addr in (0..(1u64 << 20)).step_by(256) {
            assert!(map.bank_of(addr, 2) < 2);
        }
    }

    #[test]
    fn validate_rejects_bad_cache_geometry() {
        let mut cfg = GpuConfig::small();
        cfg.l2_bytes_per_bank = 96 * 1024;
        cfg.l2_assoc = 5; // 768 lines % 5 != 0
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.field, "l2_bytes_per_bank/l2_assoc");

        let mut cfg = GpuConfig::small();
        cfg.l1_bytes = 100; // not a line multiple
        let err = cfg.validate().unwrap_err();
        assert_eq!(err.field, "l1_bytes/l1_assoc");
    }

    /// Property test for the satellite audit: whether `bank_of` is fed a
    /// global address directly (the partition does this with the request
    /// line address) or the address reconstructed from the
    /// (partition, local) pair, the bank index must agree — with and
    /// without the xor swizzle — and must equal the local-chunk
    /// definition `(local_offset / interleave) % banks`.
    #[test]
    fn bank_of_agrees_through_local_roundtrip() {
        for xor_hash in [false, true] {
            let mut cfg = GpuConfig::volta();
            cfg.partition_xor_hash = xor_hash;
            let map = AddressMap::new(&cfg);
            let banks = cfg.l2_banks_per_partition;
            let mut probe = 0x9E37_79B9u64;
            for i in 0..4096u64 {
                probe = probe.wrapping_mul(0x5DEE_CE66).wrapping_add(11);
                let addr = (probe ^ (i * 31)) % (4u64 << 30);
                let p = map.partition_of(addr);
                let local = map.local_offset(addr);
                let rebuilt = map.global_addr(p, local);
                assert_eq!(rebuilt, addr, "xor={xor_hash} addr={addr:#x}");
                assert_eq!(
                    map.bank_of(addr, banks),
                    map.bank_of(rebuilt, banks),
                    "xor={xor_hash} addr={addr:#x}"
                );
                assert_eq!(
                    map.bank_of(addr, banks) as u64,
                    local / cfg.interleave_bytes % banks as u64,
                    "bank must follow the partition-local chunk (xor={xor_hash} addr={addr:#x})"
                );
            }
        }
    }
}

#[cfg(test)]
mod xor_hash_tests {
    use super::*;

    fn hashed_map() -> AddressMap {
        let mut cfg = GpuConfig::volta();
        cfg.partition_xor_hash = true;
        AddressMap::new(&cfg)
    }

    #[test]
    fn xor_hash_roundtrips() {
        let map = hashed_map();
        for addr in [0u64, 255, 256, 65536, 123_456_789, (4u64 << 30) - 1] {
            let p = map.partition_of(addr);
            let l = map.local_offset(addr);
            assert_eq!(map.global_addr(p, l), addr, "roundtrip failed for {addr:#x}");
        }
    }

    #[test]
    fn xor_hash_breaks_power_of_two_camping() {
        let plain = AddressMap::new(&GpuConfig::volta());
        let hashed = hashed_map();
        // Stride of partitions*interleave camps on one partition when
        // unhashed, spreads when hashed.
        let stride = 32 * 256u64;
        let plain_parts: std::collections::HashSet<u32> =
            (0..64u64).map(|i| plain.partition_of(i * stride)).collect();
        let hashed_parts: std::collections::HashSet<u32> =
            (0..64u64).map(|i| hashed.partition_of(i * stride)).collect();
        assert_eq!(plain_parts.len(), 1, "plain interleave camps");
        assert!(hashed_parts.len() >= 16, "xor hash spreads: {hashed_parts:?}");
    }

    #[test]
    fn xor_hash_still_balances_sequential() {
        let map = hashed_map();
        let mut counts = vec![0u32; 32];
        for chunk in 0..(32 * 64u64) {
            counts[map.partition_of(chunk * 256) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 64), "{counts:?}");
    }
}
