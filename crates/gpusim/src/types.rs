//! Fundamental types shared across the simulator: addresses, cycles,
//! sector masks, memory requests and kernel instructions.

/// A byte address in the simulated GPU physical address space.
pub type Addr = u64;

/// A simulation time in core-clock cycles.
pub type Cycle = u64;

/// Size of a cache line in bytes (GPUs use 128 B lines).
pub const LINE_SIZE: u64 = 128;

/// Size of a sector in bytes (each 128 B line holds four 32 B sectors).
pub const SECTOR_SIZE: u64 = 32;

/// Number of sectors per cache line.
pub const SECTORS_PER_LINE: u32 = (LINE_SIZE / SECTOR_SIZE) as u32;

/// Mask with all four sectors of a line selected.
pub const FULL_SECTOR_MASK: SectorMask = SectorMask(0b1111);

/// Rounds `addr` down to its line base address.
#[inline]
pub fn line_of(addr: Addr) -> Addr {
    addr & !(LINE_SIZE - 1)
}

/// Returns the sector index (0..4) of `addr` within its line.
#[inline]
pub fn sector_of(addr: Addr) -> u32 {
    ((addr % LINE_SIZE) / SECTOR_SIZE) as u32
}

/// A bitmask of sectors within one 128 B line (bits 0..4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct SectorMask(pub u8);

impl SectorMask {
    /// The empty mask.
    pub const EMPTY: SectorMask = SectorMask(0);

    /// Mask selecting only sector `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    #[inline]
    pub fn single(index: u32) -> Self {
        assert!(index < SECTORS_PER_LINE, "sector index out of range");
        SectorMask(1 << index)
    }

    /// Mask derived from a byte address (selects the sector containing it).
    #[inline]
    pub fn of_addr(addr: Addr) -> Self {
        Self::single(sector_of(addr))
    }

    /// True if no sector is selected.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 & 0xF == 0
    }

    /// True if all four sectors are selected.
    #[inline]
    pub fn is_full(self) -> bool {
        self.0 & 0xF == 0xF
    }

    /// True if every sector in `other` is also in `self`.
    #[inline]
    pub fn contains(self, other: SectorMask) -> bool {
        (other.0 & !self.0) == 0
    }

    /// Number of sectors selected.
    #[inline]
    pub fn count(self) -> u32 {
        (self.0 & 0xF).count_ones()
    }

    /// Number of bytes covered by the selected sectors.
    #[inline]
    pub fn bytes(self) -> u64 {
        self.count() as u64 * SECTOR_SIZE
    }

    /// Union of two masks.
    #[inline]
    pub fn union(self, other: SectorMask) -> SectorMask {
        SectorMask((self.0 | other.0) & 0xF)
    }

    /// Intersection of two masks.
    #[inline]
    pub fn intersect(self, other: SectorMask) -> SectorMask {
        SectorMask(self.0 & other.0 & 0xF)
    }

    /// Sectors in `self` but not in `other`.
    #[inline]
    pub fn minus(self, other: SectorMask) -> SectorMask {
        SectorMask(self.0 & !other.0 & 0xF)
    }

    /// Iterates over the selected sector indices.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        (0..SECTORS_PER_LINE).filter(move |i| self.0 & (1 << i) != 0)
    }
}

impl core::fmt::Display for SectorMask {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:04b}", self.0 & 0xF)
    }
}

/// The type of traffic a memory request carries.
///
/// The paper's Fig. 4 breaks DRAM requests down by these classes; the
/// baseline GPU only generates [`TrafficClass::Data`], while the secure
/// memory engine adds counter, MAC and integrity-tree traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Regular program data.
    Data,
    /// Encryption counter blocks.
    Counter,
    /// Message authentication codes.
    Mac,
    /// Bonsai Merkle Tree / Merkle Tree nodes.
    Tree,
}

impl TrafficClass {
    /// All traffic classes in display order.
    pub const ALL: [TrafficClass; 4] =
        [TrafficClass::Data, TrafficClass::Counter, TrafficClass::Mac, TrafficClass::Tree];

    /// Index of this class in [`TrafficClass::ALL`] (stats arrays are
    /// laid out in that order). Total by construction — no lookup, no
    /// panic path.
    pub const fn index(self) -> usize {
        match self {
            TrafficClass::Data => 0,
            TrafficClass::Counter => 1,
            TrafficClass::Mac => 2,
            TrafficClass::Tree => 3,
        }
    }

    /// Short lowercase label used in reports (matches the paper's figures).
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Data => "data",
            TrafficClass::Counter => "ctr",
            TrafficClass::Mac => "mac",
            TrafficClass::Tree => "bmt",
        }
    }
}

impl core::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read access.
    Load,
    /// A write access.
    Store,
}

/// One coalesced memory access produced by a warp: a set of sectors within
/// a single 128 B line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Base address of the line (must be 128 B aligned).
    pub line_addr: Addr,
    /// Sectors touched within the line.
    pub sectors: SectorMask,
}

impl Access {
    /// Creates an access, aligning `addr` down to its line.
    pub fn new(addr: Addr, sectors: SectorMask) -> Self {
        Self { line_addr: line_of(addr), sectors }
    }

    /// Single-sector access containing `addr`.
    pub fn sector(addr: Addr) -> Self {
        Self { line_addr: line_of(addr), sectors: SectorMask::of_addr(addr) }
    }
}

/// One dynamic instruction executed by a warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// An arithmetic instruction. `stall` is the number of cycles before
    /// the warp may issue its next instruction (1 = fully pipelined).
    /// With `wait_mem` set, the instruction consumes a loaded value and
    /// cannot issue until all of the warp's outstanding loads returned.
    Alu {
        /// Issue-to-issue delay imposed on the warp (>= 1).
        stall: u32,
        /// True if this instruction uses the result of outstanding loads.
        wait_mem: bool,
    },
    /// A load touching the given coalesced accesses. Independent loads
    /// overlap (up to the SM's outstanding-load cap); a `dependent` load
    /// (pointer chase) waits for all prior loads first.
    Load {
        /// Coalesced line/sector accesses (1 entry when fully coalesced,
        /// up to 32 for fully divergent scatter loads).
        accesses: Vec<Access>,
        /// True if the address depends on an outstanding load.
        dependent: bool,
    },
    /// A store to the given accesses. Fire-and-forget from the warp's
    /// perspective (write-through L1, write-validate L2).
    Store {
        /// Coalesced line/sector accesses.
        accesses: Vec<Access>,
    },
    /// The warp has finished its kernel and retires.
    Exit,
}

impl Inst {
    /// A fully pipelined ALU instruction.
    pub fn alu() -> Self {
        Inst::Alu { stall: 1, wait_mem: false }
    }

    /// An ALU instruction consuming loaded values (a "use").
    pub fn use_mem() -> Self {
        Inst::Alu { stall: 1, wait_mem: true }
    }

    /// An independent (overlappable) load of one coalesced access.
    pub fn load(access: Access) -> Self {
        Inst::Load { accesses: vec![access], dependent: false }
    }

    /// A dependent (pointer-chasing) load of one coalesced access.
    pub fn dependent_load(access: Access) -> Self {
        Inst::Load { accesses: vec![access], dependent: true }
    }

    /// A store of one coalesced access.
    pub fn store(access: Access) -> Self {
        Inst::Store { accesses: vec![access] }
    }
}

/// Identifies the warp that issued a request, for response routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WarpRef {
    /// SM index.
    pub sm: u32,
    /// Warp index within the SM.
    pub warp: u32,
}

/// A memory request traveling between an SM and a memory partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique id, for tracing.
    pub id: u64,
    /// Line base address (global address space).
    pub line_addr: Addr,
    /// Sectors requested / written.
    pub sectors: SectorMask,
    /// Load or store.
    pub kind: AccessKind,
    /// Issuing warp; `None` for requests with no one waiting (writebacks).
    pub warp: Option<WarpRef>,
}

/// A request presented to a memory backend (DRAM + optional secure engine)
/// by an L2 bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendReq {
    /// Unique id, preserved in the response.
    pub id: u64,
    /// Line base address (global address space).
    pub line_addr: Addr,
    /// Sectors to read or write.
    pub sectors: SectorMask,
    /// Which L2 bank (within the partition) the response returns to.
    pub bank: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_sector_math() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(127), 0);
        assert_eq!(line_of(128), 128);
        assert_eq!(line_of(0x1234), 0x1200);
        assert_eq!(sector_of(0), 0);
        assert_eq!(sector_of(31), 0);
        assert_eq!(sector_of(32), 1);
        assert_eq!(sector_of(96), 3);
        assert_eq!(sector_of(127), 3);
    }

    #[test]
    fn sector_mask_ops() {
        let a = SectorMask::single(0);
        let b = SectorMask::single(3);
        let u = a.union(b);
        assert_eq!(u.count(), 2);
        assert_eq!(u.bytes(), 64);
        assert!(u.contains(a));
        assert!(!a.contains(u));
        assert_eq!(u.minus(a), b);
        assert_eq!(u.intersect(a), a);
        assert!(SectorMask::EMPTY.is_empty());
        assert!(FULL_SECTOR_MASK.is_full());
        assert_eq!(FULL_SECTOR_MASK.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sector_mask_rejects_bad_index() {
        let _ = SectorMask::single(4);
    }

    #[test]
    fn access_alignment() {
        let a = Access::sector(0x1234);
        assert_eq!(a.line_addr, 0x1200);
        assert_eq!(a.line_addr % LINE_SIZE, 0);
        assert_eq!(a.sectors, SectorMask::single(1));
    }

    #[test]
    fn traffic_class_labels() {
        assert_eq!(TrafficClass::Data.label(), "data");
        assert_eq!(TrafficClass::Tree.to_string(), "bmt");
        assert_eq!(TrafficClass::ALL.len(), 4);
    }

    #[test]
    fn mask_display() {
        assert_eq!(SectorMask(0b0101).to_string(), "0101");
    }
}
