//! Interconnection network between SMs and memory partitions.
//!
//! Modeled as per-destination delay queues with a fixed one-way latency
//! and a bounded per-cycle delivery rate. Request queues (SM → partition)
//! are bounded to provide backpressure; response queues (partition → SM)
//! are drained at the configured rate.

use std::collections::VecDeque;

use secmem_checkpoint::{CheckpointError, Reader, Snapshot, Writer};

use crate::config::GpuConfig;
use crate::types::{Cycle, MemRequest};

/// A latency + rate limited FIFO.
#[derive(Debug)]
pub struct DelayQueue<T> {
    latency: Cycle,
    rate: u32,
    cap: usize,
    q: VecDeque<(Cycle, T)>,
    drained_at: Cycle,
    drained_count: u32,
}

impl<T> DelayQueue<T> {
    /// Creates a queue with `latency` cycles of delay, at most `rate` pops
    /// per cycle, and `cap` maximum occupancy (`usize::MAX` = unbounded).
    pub fn new(latency: u32, rate: u32, cap: usize) -> Self {
        Self {
            latency: latency as Cycle,
            rate: rate.max(1),
            cap,
            q: VecDeque::new(),
            drained_at: Cycle::MAX,
            drained_count: 0,
        }
    }

    /// True if the queue cannot accept another element.
    pub fn is_full(&self) -> bool {
        self.q.len() >= self.cap
    }

    /// Pushes an element that becomes visible `latency` cycles from `now`.
    ///
    /// # Errors
    ///
    /// Returns the element back if the queue is full.
    pub fn try_push(&mut self, now: Cycle, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        self.q.push_back((now + self.latency, item));
        Ok(())
    }

    /// [`DelayQueue::try_push`] against *virtual* occupancy: the queue is
    /// treated as if it still held `drained` additional elements.
    ///
    /// The parallel step pops a partition's arrivals before the SMs place
    /// this cycle's requests; the serial loop did those pops *after*. To
    /// replay the serial accept/reject decisions exactly, pushes must see
    /// the pre-pop occupancy, which is `len() + drained`.
    ///
    /// # Errors
    ///
    /// Returns the element back if `len() + drained` reaches capacity.
    pub fn try_push_occupied(&mut self, now: Cycle, item: T, drained: usize) -> Result<(), T> {
        if self.q.len().saturating_add(drained) >= self.cap {
            return Err(item);
        }
        self.q.push_back((now + self.latency, item));
        Ok(())
    }

    /// Returns a reference to the front element if a [`DelayQueue::pop`]
    /// at `now` would succeed, without consuming rate.
    pub fn ready(&self, now: Cycle) -> Option<&T> {
        if self.drained_at == now && self.drained_count >= self.rate {
            return None;
        }
        match self.q.front() {
            Some((ready, item)) if *ready <= now => Some(item),
            _ => None,
        }
    }

    /// Pops the front element if it is ready at `now` and the per-cycle
    /// rate has not been exhausted.
    pub fn pop(&mut self, now: Cycle) -> Option<T> {
        if self.drained_at != now {
            self.drained_at = now;
            self.drained_count = 0;
        }
        if self.drained_count >= self.rate {
            return None;
        }
        match self.q.front() {
            Some((ready, _)) if *ready <= now => {
                self.drained_count += 1;
                self.q.pop_front().map(|(_, item)| item)
            }
            _ => None,
        }
    }

    /// The cycle at which the front element becomes visible, if any.
    /// Used by the idle-skip scheduler to find the next delivery event.
    pub fn next_ready_at(&self) -> Option<Cycle> {
        self.q.front().map(|(ready, _)| *ready)
    }

    /// How many elements [`DelayQueue::pop`] drained at cycle `now`
    /// (zero for any other cycle). This is the virtual occupancy the
    /// phased step feeds to [`DelayQueue::try_push_occupied`].
    pub fn drained_this_cycle(&self, now: Cycle) -> usize {
        if self.drained_at == now {
            self.drained_count as usize
        } else {
            0
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True if the queue holds no elements.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

impl<T: Snapshot> DelayQueue<T> {
    /// Serializes occupancy and the per-cycle rate-limiter cursor.
    /// Geometry (latency, rate, capacity) comes from the configuration.
    pub fn save_state(&self, w: &mut Writer) {
        self.q.save(w);
        w.put_u64(self.drained_at);
        w.put_u32(self.drained_count);
    }

    /// Restores state saved by [`DelayQueue::save_state`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] if the stored occupancy exceeds this
    /// queue's capacity; any decode error otherwise.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let q: VecDeque<(Cycle, T)> = VecDeque::load(r)?;
        if q.len() > self.cap {
            return Err(CheckpointError::Malformed(format!(
                "delay queue holds {} elements but capacity is {}",
                q.len(),
                self.cap
            )));
        }
        self.q = q;
        self.drained_at = r.get_u64()?;
        self.drained_count = r.get_u32()?;
        Ok(())
    }
}

/// The SM ↔ memory-partition interconnect.
#[derive(Debug)]
pub struct Interconnect {
    /// One request queue per partition.
    to_partition: Vec<DelayQueue<MemRequest>>,
    /// One response queue per SM.
    to_sm: Vec<DelayQueue<MemRequest>>,
}

impl Interconnect {
    /// Builds the network for a GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        let mk_req = || DelayQueue::new(cfg.icnt_latency, cfg.icnt_flit_per_cycle, 64);
        let mk_resp = || DelayQueue::new(cfg.icnt_latency, cfg.icnt_flit_per_cycle, usize::MAX);
        Self {
            to_partition: (0..cfg.num_partitions).map(|_| mk_req()).collect(),
            to_sm: (0..cfg.num_sms).map(|_| mk_resp()).collect(),
        }
    }

    /// Sends a request toward `partition`.
    ///
    /// # Errors
    ///
    /// Returns the request back if the partition's queue is full.
    pub fn push_request(&mut self, now: Cycle, partition: u32, req: MemRequest) -> Result<(), MemRequest> {
        self.to_partition[partition as usize].try_push(now, req)
    }

    /// [`Interconnect::push_request`] against virtual occupancy: the
    /// partition's queue is treated as if it still held every element
    /// popped from it this cycle (see [`DelayQueue::try_push_occupied`]).
    /// The phased step uses this for all its pushes, which happen after
    /// the partitions' arrival pops instead of before them.
    ///
    /// # Errors
    ///
    /// Returns the request back if the queue would have been full.
    pub fn push_request_occupied(
        &mut self,
        now: Cycle,
        partition: u32,
        req: MemRequest,
    ) -> Result<(), MemRequest> {
        let q = &mut self.to_partition[partition as usize];
        let drained = q.drained_this_cycle(now);
        q.try_push_occupied(now, req, drained)
    }

    /// True if the request path toward `partition` is full.
    pub fn request_full(&self, partition: u32) -> bool {
        self.to_partition[partition as usize].is_full()
    }

    /// Mutable views of the per-partition request lanes and per-SM
    /// response lanes, for the parallel step's per-entity phase (each
    /// chunk owns disjoint lanes).
    pub fn split_lanes(&mut self) -> (&mut [DelayQueue<MemRequest>], &mut [DelayQueue<MemRequest>]) {
        (&mut self.to_partition, &mut self.to_sm)
    }

    /// Receives the next request at `partition`, if any is ready.
    pub fn pop_request(&mut self, now: Cycle, partition: u32) -> Option<MemRequest> {
        self.to_partition[partition as usize].pop(now)
    }

    /// Peeks the next deliverable request at `partition` without
    /// consuming it (used to stall without losing the request).
    pub fn peek_request(&self, now: Cycle, partition: u32) -> Option<&MemRequest> {
        self.to_partition[partition as usize].ready(now)
    }

    /// Sends a response toward its SM (responses are never refused).
    pub fn push_response(&mut self, now: Cycle, sm: u32, resp: MemRequest) {
        let pushed = self.to_sm[sm as usize].try_push(now, resp);
        debug_assert!(pushed.is_ok(), "response queues are unbounded");
    }

    /// Receives the next response at `sm`, if any is ready.
    pub fn pop_response(&mut self, now: Cycle, sm: u32) -> Option<MemRequest> {
        self.to_sm[sm as usize].pop(now)
    }

    /// True when no messages are anywhere in the network.
    pub fn is_idle(&self) -> bool {
        self.to_partition.iter().all(DelayQueue::is_empty) && self.to_sm.iter().all(DelayQueue::is_empty)
    }

    /// Earliest cycle at or after `now` at which any queued message can be
    /// delivered; `None` when the network is empty. Used by the idle-skip
    /// scheduler.
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        for q in self.to_partition.iter().chain(self.to_sm.iter()) {
            if let Some(r) = q.next_ready_at() {
                let c = r.max(now);
                next = Some(next.map_or(c, |n| n.min(c)));
            }
        }
        next
    }

    /// Per-partition request-queue occupancy (stall diagnostics).
    pub fn request_depths(&self) -> Vec<usize> {
        self.to_partition.iter().map(DelayQueue::len).collect()
    }

    /// Per-SM response-queue occupancy (stall diagnostics).
    pub fn response_depths(&self) -> Vec<usize> {
        self.to_sm.iter().map(DelayQueue::len).collect()
    }

    /// Serializes every queue's contents into a checkpoint payload.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_usize(self.to_partition.len());
        for q in &self.to_partition {
            q.save_state(w);
        }
        w.put_usize(self.to_sm.len());
        for q in &self.to_sm {
            q.save_state(w);
        }
    }

    /// Restores state saved by [`Interconnect::save_state`] into a
    /// network rebuilt from the same configuration.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] on a queue-count mismatch; any
    /// decode error otherwise.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let parts = r.get_usize()?;
        if parts != self.to_partition.len() {
            return Err(CheckpointError::Malformed(format!(
                "interconnect has {} partition queues, checkpoint has {parts}",
                self.to_partition.len()
            )));
        }
        for q in &mut self.to_partition {
            q.restore_state(r)?;
        }
        let sms = r.get_usize()?;
        if sms != self.to_sm.len() {
            return Err(CheckpointError::Malformed(format!(
                "interconnect has {} SM queues, checkpoint has {sms}",
                self.to_sm.len()
            )));
        }
        for q in &mut self.to_sm {
            q.restore_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AccessKind, SectorMask};

    fn req(id: u64) -> MemRequest {
        MemRequest {
            id,
            line_addr: id * 128,
            sectors: SectorMask::single(0),
            kind: AccessKind::Load,
            warp: None,
        }
    }

    #[test]
    fn delay_queue_applies_latency() {
        let mut q: DelayQueue<u32> = DelayQueue::new(5, 1, 8);
        q.try_push(10, 42).unwrap();
        assert_eq!(q.pop(14), None);
        assert_eq!(q.pop(15), Some(42));
    }

    #[test]
    fn delay_queue_rate_limit() {
        let mut q: DelayQueue<u32> = DelayQueue::new(0, 2, 8);
        for i in 0..5 {
            q.try_push(0, i).unwrap();
        }
        assert_eq!(q.pop(1), Some(0));
        assert_eq!(q.pop(1), Some(1));
        assert_eq!(q.pop(1), None, "rate exhausted");
        assert_eq!(q.pop(2), Some(2));
    }

    #[test]
    fn delay_queue_capacity() {
        let mut q: DelayQueue<u32> = DelayQueue::new(0, 1, 2);
        q.try_push(0, 1).unwrap();
        q.try_push(0, 2).unwrap();
        assert!(q.is_full());
        assert_eq!(q.try_push(0, 3), Err(3));
    }

    #[test]
    fn ready_peeks_without_consuming_rate() {
        let mut q: DelayQueue<u32> = DelayQueue::new(0, 1, 8);
        q.try_push(0, 7).unwrap();
        assert_eq!(q.ready(0), Some(&7));
        assert_eq!(q.ready(0), Some(&7), "peeking is repeatable");
        assert_eq!(q.pop(0), Some(7));
        assert_eq!(q.ready(0), None);
    }

    #[test]
    fn ready_respects_exhausted_rate() {
        let mut q: DelayQueue<u32> = DelayQueue::new(0, 1, 8);
        q.try_push(0, 1).unwrap();
        q.try_push(0, 2).unwrap();
        assert_eq!(q.pop(5), Some(1));
        assert_eq!(q.ready(5), None, "rate used up this cycle");
        assert_eq!(q.ready(6), Some(&2));
    }

    #[test]
    fn push_occupied_replays_pre_pop_capacity() {
        let mut q: DelayQueue<u32> = DelayQueue::new(1, 4, 4);
        for i in 0..4 {
            q.try_push(0, i).unwrap();
        }
        assert!(q.is_full());
        // Pop two arrivals, as the parallel step's partition phase does.
        assert_eq!(q.pop(1), Some(0));
        assert_eq!(q.pop(1), Some(1));
        // A plain push would now succeed twice; against the virtual
        // occupancy of 2 it must behave as if the queue were still full.
        assert!(q.try_push_occupied(1, 10, 2).is_err());
        assert!(q.try_push_occupied(1, 10, 1).is_ok());
        assert!(q.try_push_occupied(1, 11, 1).is_err(), "virtual occupancy counts the new push too");
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn interconnect_routes_by_partition_and_sm() {
        let cfg = GpuConfig::small();
        let mut icnt = Interconnect::new(&cfg);
        icnt.push_request(0, 2, req(7)).unwrap();
        assert_eq!(icnt.pop_request(0 + cfg.icnt_latency as u64, 1), None);
        let got = icnt.pop_request(cfg.icnt_latency as u64, 2).expect("request arrives");
        assert_eq!(got.id, 7);
        icnt.push_response(100, 3, req(9));
        assert!(icnt.pop_response(100 + cfg.icnt_latency as u64, 0).is_none());
        assert_eq!(icnt.pop_response(100 + cfg.icnt_latency as u64, 3).unwrap().id, 9);
        assert!(icnt.is_idle());
    }
}
