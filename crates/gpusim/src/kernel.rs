//! The kernel abstraction: workloads supply per-warp instruction streams.
//!
//! A [`Kernel`] describes one GPU grid: how many SMs it occupies, how many
//! warps run on each, and a factory for per-warp instruction generators
//! ([`WarpProgram`]). The `secmem-workloads` crate implements these traits
//! for the 14 synthetic benchmarks of Table IV.

use crate::types::Inst;

/// Why a saved warp-program state was rejected on restore: the word
/// vector does not decode for the freshly spawned program (wrong word
/// count, out-of-range cursor, or a mismatch with spawn-time shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateError {
    /// Which program kind rejected the state (e.g. `"trace replay"`).
    pub what: String,
    /// What about the state did not decode.
    pub message: String,
}

impl StateError {
    /// Creates an error attributed to program kind `what`.
    pub fn new(what: impl Into<String>, message: impl Into<String>) -> Self {
        Self { what: what.into(), message: message.into() }
    }
}

impl core::fmt::Display for StateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.what, self.message)
    }
}

impl std::error::Error for StateError {}

/// A per-warp instruction stream.
///
/// `next_inst` is called once each time the warp is ready to issue; the
/// returned instruction is executed by the SM model. Return [`Inst::Exit`]
/// to retire the warp; after that, `next_inst` is not called again.
///
/// # Checkpointing
///
/// Programs cannot be serialized as trait objects, so checkpoint/resume
/// rebuilds them through [`Kernel::spawn`] and then replays only their
/// *progress* — a small vector of `u64` words — through
/// [`WarpProgram::save_state`] / [`WarpProgram::restore_state`]. A
/// program whose entire behavior is a function of immutable parameters
/// plus a position fits this naturally; a program with richer mutable
/// state must encode all of it into the words.
pub trait WarpProgram {
    /// Produces the warp's next dynamic instruction.
    fn next_inst(&mut self) -> Inst;

    /// Appends the program's mutable progress (everything `next_inst`
    /// depends on besides spawn-time parameters) to `out`.
    fn save_state(&self, out: &mut Vec<u64>);

    /// Restores progress captured by [`WarpProgram::save_state`] into a
    /// freshly spawned instance of the same program.
    ///
    /// # Errors
    ///
    /// [`StateError`] describing the mismatch when `state` does not
    /// decode for this program (wrong word count or an out-of-range
    /// value).
    fn restore_state(&mut self, state: &[u64]) -> Result<(), StateError>;
}

/// Helper for [`WarpProgram::restore_state`] implementations: checks the
/// saved word count.
///
/// # Errors
///
/// [`StateError`] naming `what` when the count differs.
pub fn expect_state_len(state: &[u64], expected: usize, what: &str) -> Result<(), StateError> {
    if state.len() != expected {
        return Err(StateError::new(what, format!("expected {expected} state words, got {}", state.len())));
    }
    Ok(())
}

/// A GPU kernel: grid shape plus per-warp program factory.
pub trait Kernel {
    /// Number of SMs the kernel occupies (1..=cfg.num_sms).
    fn active_sms(&self, available_sms: u32) -> u32 {
        available_sms
    }

    /// Number of warps resident on SM `sm` (1..=cfg.max_warps_per_sm).
    fn warps_per_sm(&self, sm: u32) -> u32;

    /// Creates the instruction stream for warp `warp` of SM `sm`.
    fn spawn(&self, sm: u32, warp: u32) -> Box<dyn WarpProgram + Send>;

    /// A short display name for reports.
    fn name(&self) -> &str {
        "kernel"
    }
}

/// A trivial infinite streaming kernel, useful for tests: each warp
/// alternates `alu_per_mem` ALU instructions with one fully-coalesced
/// sector load marching sequentially through a private address range.
#[derive(Debug, Clone)]
pub struct StreamKernel {
    /// ALU instructions between consecutive loads.
    pub alu_per_mem: u32,
    /// Bytes of address space given to each warp.
    pub bytes_per_warp: u64,
    /// Warps per SM.
    pub warps: u32,
}

impl StreamKernel {
    /// A memory-hungry default: 1 ALU per load.
    pub fn memory_bound(warps: u32) -> Self {
        Self { alu_per_mem: 1, bytes_per_warp: 1 << 20, warps }
    }
}

#[derive(Debug)]
struct StreamProgram {
    alu_per_mem: u32,
    alu_left: u32,
    base: u64,
    len: u64,
    pos: u64,
}

impl WarpProgram for StreamProgram {
    fn next_inst(&mut self) -> Inst {
        if self.alu_left > 0 {
            self.alu_left -= 1;
            // The first ALU op after a load consumes the loaded value.
            let wait = self.alu_left + 1 == self.alu_per_mem;
            return Inst::Alu { stall: 1, wait_mem: wait };
        }
        self.alu_left = self.alu_per_mem;
        let addr = self.base + (self.pos % self.len);
        self.pos += 128;
        Inst::load(crate::types::Access::new(addr, crate::types::FULL_SECTOR_MASK))
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(u64::from(self.alu_left));
        out.push(self.pos);
    }

    fn restore_state(&mut self, state: &[u64]) -> Result<(), StateError> {
        expect_state_len(state, 2, "stream program")?;
        self.alu_left =
            u32::try_from(state[0]).map_err(|_| StateError::new("stream program", "alu_left overflow"))?;
        self.pos = state[1];
        Ok(())
    }
}

impl Kernel for StreamKernel {
    fn warps_per_sm(&self, _sm: u32) -> u32 {
        self.warps
    }

    fn spawn(&self, sm: u32, warp: u32) -> Box<dyn WarpProgram + Send> {
        let idx = sm as u64 * 64 + warp as u64;
        Box::new(StreamProgram {
            alu_per_mem: self.alu_per_mem,
            alu_left: 0,
            base: idx * self.bytes_per_warp,
            len: self.bytes_per_warp,
            pos: 0,
        })
    }

    fn name(&self) -> &str {
        "stream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Access;

    #[test]
    fn stream_program_alternates() {
        let k = StreamKernel { alu_per_mem: 2, bytes_per_warp: 1024, warps: 1 };
        let mut p = k.spawn(0, 0);
        // First instruction is a load (alu_left starts at 0).
        match p.next_inst() {
            Inst::Load { accesses, .. } => assert_eq!(accesses.len(), 1),
            other => panic!("expected load, got {other:?}"),
        }
        assert!(matches!(p.next_inst(), Inst::Alu { .. }));
        assert!(matches!(p.next_inst(), Inst::Alu { .. }));
        assert!(matches!(p.next_inst(), Inst::Load { .. }));
    }

    #[test]
    fn stream_wraps_around() {
        let k = StreamKernel { alu_per_mem: 0, bytes_per_warp: 256, warps: 1 };
        let mut p = k.spawn(0, 0);
        let mut addrs = Vec::new();
        for _ in 0..4 {
            if let Inst::Load { accesses, .. } = p.next_inst() {
                addrs.push(accesses[0].line_addr);
            }
        }
        assert_eq!(addrs, vec![0, 128, 0, 128]);
        let _ = Access::sector(0);
    }

    #[test]
    fn warps_are_disjoint() {
        let k = StreamKernel::memory_bound(2);
        let mut a = k.spawn(0, 0);
        let mut b = k.spawn(0, 1);
        let first = |p: &mut Box<dyn WarpProgram + Send>| loop {
            if let Inst::Load { accesses, .. } = p.next_inst() {
                return accesses[0].line_addr;
            }
        };
        assert_ne!(first(&mut a), first(&mut b));
    }
}
