//! The kernel abstraction: workloads supply per-warp instruction streams.
//!
//! A [`Kernel`] describes one GPU grid: how many SMs it occupies, how many
//! warps run on each, and a factory for per-warp instruction generators
//! ([`WarpProgram`]). The `secmem-workloads` crate implements these traits
//! for the 14 synthetic benchmarks of Table IV.

use crate::types::Inst;

/// A per-warp instruction stream.
///
/// `next_inst` is called once each time the warp is ready to issue; the
/// returned instruction is executed by the SM model. Return [`Inst::Exit`]
/// to retire the warp; after that, `next_inst` is not called again.
pub trait WarpProgram {
    /// Produces the warp's next dynamic instruction.
    fn next_inst(&mut self) -> Inst;
}

/// A GPU kernel: grid shape plus per-warp program factory.
pub trait Kernel {
    /// Number of SMs the kernel occupies (1..=cfg.num_sms).
    fn active_sms(&self, available_sms: u32) -> u32 {
        available_sms
    }

    /// Number of warps resident on SM `sm` (1..=cfg.max_warps_per_sm).
    fn warps_per_sm(&self, sm: u32) -> u32;

    /// Creates the instruction stream for warp `warp` of SM `sm`.
    fn spawn(&self, sm: u32, warp: u32) -> Box<dyn WarpProgram>;

    /// A short display name for reports.
    fn name(&self) -> &str {
        "kernel"
    }
}

/// A trivial infinite streaming kernel, useful for tests: each warp
/// alternates `alu_per_mem` ALU instructions with one fully-coalesced
/// sector load marching sequentially through a private address range.
#[derive(Debug, Clone)]
pub struct StreamKernel {
    /// ALU instructions between consecutive loads.
    pub alu_per_mem: u32,
    /// Bytes of address space given to each warp.
    pub bytes_per_warp: u64,
    /// Warps per SM.
    pub warps: u32,
}

impl StreamKernel {
    /// A memory-hungry default: 1 ALU per load.
    pub fn memory_bound(warps: u32) -> Self {
        Self { alu_per_mem: 1, bytes_per_warp: 1 << 20, warps }
    }
}

#[derive(Debug)]
struct StreamProgram {
    alu_per_mem: u32,
    alu_left: u32,
    base: u64,
    len: u64,
    pos: u64,
}

impl WarpProgram for StreamProgram {
    fn next_inst(&mut self) -> Inst {
        if self.alu_left > 0 {
            self.alu_left -= 1;
            // The first ALU op after a load consumes the loaded value.
            let wait = self.alu_left + 1 == self.alu_per_mem;
            return Inst::Alu { stall: 1, wait_mem: wait };
        }
        self.alu_left = self.alu_per_mem;
        let addr = self.base + (self.pos % self.len);
        self.pos += 128;
        Inst::load(crate::types::Access::new(addr, crate::types::FULL_SECTOR_MASK))
    }
}

impl Kernel for StreamKernel {
    fn warps_per_sm(&self, _sm: u32) -> u32 {
        self.warps
    }

    fn spawn(&self, sm: u32, warp: u32) -> Box<dyn WarpProgram> {
        let idx = sm as u64 * 64 + warp as u64;
        Box::new(StreamProgram {
            alu_per_mem: self.alu_per_mem,
            alu_left: 0,
            base: idx * self.bytes_per_warp,
            len: self.bytes_per_warp,
            pos: 0,
        })
    }

    fn name(&self) -> &str {
        "stream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Access;

    #[test]
    fn stream_program_alternates() {
        let k = StreamKernel { alu_per_mem: 2, bytes_per_warp: 1024, warps: 1 };
        let mut p = k.spawn(0, 0);
        // First instruction is a load (alu_left starts at 0).
        match p.next_inst() {
            Inst::Load { accesses, .. } => assert_eq!(accesses.len(), 1),
            other => panic!("expected load, got {other:?}"),
        }
        assert!(matches!(p.next_inst(), Inst::Alu { .. }));
        assert!(matches!(p.next_inst(), Inst::Alu { .. }));
        assert!(matches!(p.next_inst(), Inst::Load { .. }));
    }

    #[test]
    fn stream_wraps_around() {
        let k = StreamKernel { alu_per_mem: 0, bytes_per_warp: 256, warps: 1 };
        let mut p = k.spawn(0, 0);
        let mut addrs = Vec::new();
        for _ in 0..4 {
            if let Inst::Load { accesses, .. } = p.next_inst() {
                addrs.push(accesses[0].line_addr);
            }
        }
        assert_eq!(addrs, vec![0, 128, 0, 128]);
        let _ = Access::sector(0);
    }

    #[test]
    fn warps_are_disjoint() {
        let k = StreamKernel::memory_bound(2);
        let mut a = k.spawn(0, 0);
        let mut b = k.spawn(0, 1);
        let first = |p: &mut Box<dyn WarpProgram>| loop {
            if let Inst::Load { accesses, .. } = p.next_inst() {
                return accesses[0].line_addr;
            }
        };
        assert_ne!(first(&mut a), first(&mut b));
    }
}
