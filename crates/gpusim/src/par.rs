//! A persistent worker pool for the deterministic parallel step.
//!
//! [`crate::sim::Simulator::step`] fans the per-entity phase of each
//! cycle (SM drain/cycle, partition feed/cycle) out over a fixed set of
//! chunks; the pool runs one chunk per thread and blocks until every
//! chunk finished. Determinism never depends on the pool: the chunks
//! touch disjoint state, all cross-entity effects are applied by the
//! coordinating thread afterwards in canonical entity order, and the
//! same chunk functions run at every thread count (threads = 1 simply
//! runs them inline). The pool only decides *wall-clock* speed.
//!
//! The implementation is a generation-stamped task slot: the
//! coordinator publishes a type-erased closure, bumps the generation,
//! and workers race through it. Workers spin briefly when the machine
//! has spare cores and park on a condvar otherwise, so oversubscribed
//! hosts (threads > cores) lose throughput but never livelock.
//!
//! This is the only module in the crate allowed to use `unsafe`: the
//! borrowed-task hand-off cannot be expressed in safe std without
//! per-step thread spawning. The crate consumes it exclusively through
//! the safe [`WorkerPool::for_each`] wrapper.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased borrowed closure. Only valid for the generation it was
/// published in: [`WorkerPool::run`] does not return until every worker
/// has finished with it.
#[derive(Clone, Copy)]
struct Task {
    ctx: *const (),
    run: unsafe fn(*const (), usize),
}

struct Shared {
    /// Written by the coordinator strictly between generations (all
    /// workers idle), read by workers only after observing the bump of
    /// `gen` that published it.
    task: UnsafeCell<Option<Task>>,
    /// Generation counter; the Release bump publishes `task`.
    gen: AtomicU64,
    /// Workers finished with the current generation.
    done: AtomicUsize,
    /// Any worker's chunk panicked this generation.
    panicked: AtomicBool,
    stop: AtomicBool,
    /// Mirrors `gen` under a lock so parked workers cannot miss a wake.
    published: Mutex<u64>,
    wake: Condvar,
    /// Spin iterations before parking; 0 when the host has no spare
    /// cores (spinning would only steal time from the thread we wait on).
    spin_limit: u32,
}

// SAFETY: the raw `Task` pointer is only dereferenced between the
// generation bump that published it and the matching `done` barrier,
// while `WorkerPool::run` keeps the referent alive on the coordinator's
// stack.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// A fixed-size pool of step workers (see module docs).
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl core::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.handles.len()).finish_non_exhaustive()
    }
}

fn lock_published(shared: &Shared) -> std::sync::MutexGuard<'_, u64> {
    // A worker that panicked while holding the lock has already been
    // recorded via `panicked`; the mirror value itself cannot be torn.
    shared.published.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &Shared, chunk: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for the next generation (or stop).
        let mut spins = 0u32;
        loop {
            let g = shared.gen.load(Ordering::Acquire);
            if g != seen {
                seen = g;
                break;
            }
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            if spins < shared.spin_limit {
                spins += 1;
                std::hint::spin_loop();
            } else {
                let mut published = lock_published(shared);
                while *published == seen && !shared.stop.load(Ordering::Acquire) {
                    published =
                        shared.wake.wait(published).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
        // SAFETY: the Acquire load of `gen` synchronizes with the
        // coordinator's Release store, which happens after the slot write.
        let Some(task) = (unsafe { *shared.task.get() }) else {
            debug_assert!(false, "generation bumped without a published task");
            shared.done.fetch_add(1, Ordering::Release);
            continue;
        };
        // SAFETY: `run`'s contract — ctx outlives the generation.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (task.run)(task.ctx, chunk) }));
        if result.is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        shared.done.fetch_add(1, Ordering::Release);
    }
}

impl WorkerPool {
    /// Spawns `extra_workers` threads. The pool serves `extra_workers + 1`
    /// chunks per [`WorkerPool::run`]: chunk 0 runs on the calling thread.
    pub fn new(extra_workers: usize) -> Self {
        let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        // Spinning is only productive while other cores advance the
        // remaining chunks; an oversubscribed host parks immediately.
        let spin_limit = if avail > extra_workers { 4096 } else { 0 };
        let shared = Arc::new(Shared {
            task: UnsafeCell::new(None),
            gen: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            published: Mutex::new(0),
            wake: Condvar::new(),
            spin_limit,
        });
        let handles = (0..extra_workers)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&s, i + 1))
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of chunks a `run` call fans out to (workers + the caller).
    pub fn chunks(&self) -> usize {
        self.handles.len() + 1
    }

    /// Runs `f(chunk)` for every chunk id in `0..self.chunks()` — `f(0)`
    /// on the calling thread — and returns once ALL chunks finished.
    /// `f` is entered concurrently; chunk-data disjointness is the
    /// caller's contract.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from any chunk, but only after every other
    /// chunk has finished, so workers never outlive borrows in `f`.
    pub fn run<F: Fn(usize) + Sync>(&self, f: &F) {
        let n = self.handles.len();
        if n == 0 {
            f(0);
            return;
        }
        unsafe fn trampoline<F: Fn(usize) + Sync>(ctx: *const (), chunk: usize) {
            // SAFETY: ctx was erased from an &F that `run` keeps alive.
            let f = unsafe { &*ctx.cast::<F>() };
            f(chunk);
        }
        // SAFETY: all workers are idle between generations; nothing
        // reads the slot until the bump below.
        unsafe { *self.shared.task.get() = Some(Task { ctx: (f as *const F).cast(), run: trampoline::<F> }) };
        self.shared.done.store(0, Ordering::Release);
        let gen = self.shared.gen.load(Ordering::Relaxed).wrapping_add(1);
        self.shared.gen.store(gen, Ordering::Release);
        {
            let mut published = lock_published(&self.shared);
            *published = gen;
        }
        self.shared.wake.notify_all();

        let local = catch_unwind(AssertUnwindSafe(|| f(0)));

        let mut spins = 0u32;
        while self.shared.done.load(Ordering::Acquire) != n {
            if spins < self.shared.spin_limit {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // Every borrow of `f` and its captures is dead past the barrier;
        // unwinding is safe again.
        let worker_panicked = self.shared.panicked.swap(false, Ordering::AcqRel);
        if let Err(payload) = local {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            // Unreachable on the healthy path: this re-raises after the barrier.
            // lint:allow(H1): deliberate re-raise of a worker panic
            panic!("a parallel step worker panicked (see stderr for the original panic)");
        }
    }

    /// Runs `f(index, &mut items[index])` for every item, fanned out as
    /// one contiguous index range per chunk. Blocks until every item has
    /// been visited. This is the safe entry point the simulator uses:
    /// disjointness is guaranteed by construction (each index is visited
    /// by exactly one chunk), so callers need no unsafe code.
    ///
    /// The assignment of items to chunks is load-balancing only — `f`
    /// must not care which thread visits which item (the simulator's
    /// phase-A work is per-entity and order-free by design).
    pub fn for_each<T: Send, F: Fn(usize, &mut T) + Sync>(&self, items: &mut [T], f: &F) {
        let n = self.chunks();
        let len = items.len();
        let base = AssertSync(items.as_mut_ptr());
        self.run(&move |chunk| {
            let lo = len * chunk / n;
            let hi = len * (chunk + 1) / n;
            for i in lo..hi {
                // SAFETY: chunk index ranges partition `0..len` without
                // overlap, `items` stays exclusively borrowed until the
                // completion barrier in `run`, and `T: Send` licenses
                // touching the element from a worker thread.
                let item = unsafe { &mut *base.get().add(i) };
                f(i, item);
            }
        });
    }

    /// [`WorkerPool::for_each`] with a precomputed chunk assignment:
    /// item `i` is visited by chunk `groups[i] % self.chunks()`. The
    /// simulator computes the groups once per (thread count, geometry)
    /// and interleaves heavy and light entity kinds across workers —
    /// the contiguous split of `for_each` would hand all SMs to the
    /// early chunks and all memory partitions to the late ones, making
    /// the barrier wait on the SM-heavy workers every cycle.
    ///
    /// Like `for_each`, the assignment is load-balancing only: `f` must
    /// not care which thread visits which item. A `groups` slice of the
    /// wrong length falls back to the contiguous split rather than
    /// skipping items.
    pub fn for_each_grouped<T: Send, F: Fn(usize, &mut T) + Sync>(
        &self,
        items: &mut [T],
        groups: &[u32],
        f: &F,
    ) {
        debug_assert_eq!(items.len(), groups.len(), "one group id per item");
        if groups.len() != items.len() {
            self.for_each(items, f);
            return;
        }
        let n = self.chunks();
        let base = AssertSync(items.as_mut_ptr());
        self.run(&move |chunk| {
            for (i, &g) in groups.iter().enumerate() {
                if g as usize % n != chunk {
                    continue;
                }
                // SAFETY: `g % n` is a pure function of the index, so
                // exactly one chunk visits each item; `items` stays
                // exclusively borrowed until the completion barrier in
                // `run`, and `T: Send` licenses touching the element
                // from a worker thread.
                let item = unsafe { &mut *base.get().add(i) };
                f(i, item);
            }
        });
    }
}

/// Wrapper that promises cross-thread sharing of its payload is sound.
///
/// Used for the base pointer in [`WorkerPool::for_each`]; the SAFETY
/// argument lives at the dereference site.
struct AssertSync<T>(T);

impl<T: Copy> AssertSync<T> {
    /// Accessor (rather than direct field access) so closures capture
    /// the whole wrapper — edition-2021 disjoint capture would otherwise
    /// capture the non-`Sync` payload field alone.
    fn get(&self) -> T {
        self.0
    }
}

// SAFETY: see `for_each` — the payload is a raw pointer whose
// dereferences are restricted to disjoint index ranges.
unsafe impl<T> Sync for AssertSync<T> {}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        drop(lock_published(&self.shared));
        self.shared.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    #[test]
    fn all_chunks_run_exactly_once() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.chunks(), 4);
        let hits = [TestCounter::new(0), TestCounter::new(0), TestCounter::new(0), TestCounter::new(0)];
        for round in 0..100u64 {
            pool.run(&|chunk| {
                hits[chunk].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), round + 1);
            }
        }
    }

    #[test]
    fn zero_extra_workers_runs_inline() {
        let pool = WorkerPool::new(0);
        let hits = TestCounter::new(0);
        pool.run(&|chunk| {
            assert_eq!(chunk, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disjoint_chunk_writes_are_visible_after_run() {
        let pool = WorkerPool::new(7);
        let mut data = vec![0u64; 64];
        let n = pool.chunks();
        {
            let base = data.as_mut_ptr() as usize;
            let len = data.len();
            pool.run(&move |chunk| {
                let lo = len * chunk / n;
                let hi = len * (chunk + 1) / n;
                for i in lo..hi {
                    // SAFETY: chunk ranges are disjoint and `data`
                    // outlives the run call.
                    unsafe { *(base as *mut u64).add(i) = i as u64 * 3 };
                }
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn for_each_visits_every_item_exactly_once() {
        let pool = WorkerPool::new(3);
        let mut items = vec![0u64; 37];
        for round in 1..=5u64 {
            pool.for_each(&mut items, &|i, v| {
                *v += i as u64 + 1;
            });
            for (i, v) in items.iter().enumerate() {
                assert_eq!(*v, (i as u64 + 1) * round);
            }
        }
    }

    #[test]
    fn for_each_grouped_visits_every_item_exactly_once() {
        let pool = WorkerPool::new(3);
        let mut items = vec![0u64; 41];
        // Adversarial assignment: ids beyond the chunk count, all kinds
        // of imbalance — every item must still be visited exactly once.
        let groups: Vec<u32> = (0..items.len() as u32).map(|i| i.wrapping_mul(7) % 9).collect();
        for round in 1..=5u64 {
            pool.for_each_grouped(&mut items, &groups, &|i, v| {
                *v += i as u64 + 1;
            });
            for (i, v) in items.iter().enumerate() {
                assert_eq!(*v, (i as u64 + 1) * round);
            }
        }
    }

    #[test]
    fn for_each_grouped_matches_for_each_results() {
        let pool = WorkerPool::new(2);
        let mut a = vec![0u64; 17];
        let mut b = vec![0u64; 17];
        let groups: Vec<u32> = (0..17u32).map(|i| i % 3).collect();
        pool.for_each(&mut a, &|i, v| *v = i as u64 * 11);
        pool.for_each_grouped(&mut b, &groups, &|i, v| *v = i as u64 * 11);
        assert_eq!(a, b, "assignment is load-balancing only");
    }

    #[test]
    fn for_each_grouped_inline_pool() {
        let pool = WorkerPool::new(0);
        let mut items = vec![0u64; 5];
        pool.for_each_grouped(&mut items, &[0, 1, 2, 3, 4], &|i, v| *v = i as u64);
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|chunk| {
                if chunk == 1 {
                    panic!("boom in chunk 1");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must surface to the caller");
        // The pool is reusable after a panic.
        let hits = TestCounter::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn coordinator_panic_waits_for_workers() {
        let pool = WorkerPool::new(2);
        let finished = TestCounter::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|chunk| {
                if chunk == 0 {
                    panic!("coordinator chunk fails");
                }
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(caught.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 2, "workers completed before the unwind");
    }
}
