//! Typed errors for the timing simulator: configuration validation
//! failures and the forward-progress watchdog's stall diagnostic.

use std::fmt;

use crate::types::Cycle;

/// A rejected configuration field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field (or field group).
    pub field: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl ConfigError {
    /// Creates an error for `field`.
    pub fn new(field: &'static str, message: impl Into<String>) -> Self {
        Self { field, message: message.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration ({}): {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Snapshot of one memory partition's queues at stall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionStall {
    /// Requests waiting in the partition input queue.
    pub input: usize,
    /// Dirty lines waiting in the writeback buffer.
    pub writebacks: usize,
    /// Outstanding L2 MSHR entries (all banks).
    pub mshrs: usize,
    /// Work the backend still holds (transactions, queued DRAM
    /// requests, pending responses).
    pub backend_pending: usize,
    /// Whether the backend reports itself idle.
    pub backend_idle: bool,
}

/// Diagnostic produced when the watchdog detects that the simulation
/// stopped making forward progress (no instruction issued and no DRAM
/// service activity for the configured window).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallReport {
    /// Cycle at which the watchdog fired.
    pub cycle: Cycle,
    /// Cycles elapsed since the last observed progress.
    pub stalled_for: Cycle,
    /// Warps that had not finished when the watchdog fired.
    pub unfinished_warps: u64,
    /// Per-SM overflow-queue depth (requests refused by the interconnect).
    pub sm_overflow: Vec<usize>,
    /// Per-partition queue snapshot.
    pub partitions: Vec<PartitionStall>,
    /// Per-partition interconnect request-queue depth.
    pub icnt_requests: Vec<usize>,
    /// Per-SM interconnect response-queue depth.
    pub icnt_responses: Vec<usize>,
}

impl StallReport {
    /// Total requests stuck in SM overflow queues.
    pub fn total_overflow(&self) -> usize {
        self.sm_overflow.iter().sum()
    }

    /// Total outstanding L2 MSHR entries.
    pub fn total_mshrs(&self) -> usize {
        self.partitions.iter().map(|p| p.mshrs).sum()
    }

    /// Total messages in flight in the interconnect.
    pub fn total_icnt(&self) -> usize {
        self.icnt_requests.iter().sum::<usize>() + self.icnt_responses.iter().sum::<usize>()
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simulation stalled at cycle {} (no progress for {} cycles): {} unfinished warps",
            self.cycle, self.stalled_for, self.unfinished_warps
        )?;
        writeln!(
            f,
            "  sm overflow: {} requests; icnt in flight: {}; l2 mshrs: {}",
            self.total_overflow(),
            self.total_icnt(),
            self.total_mshrs()
        )?;
        for (i, p) in self.partitions.iter().enumerate() {
            if p.input > 0 || p.writebacks > 0 || p.mshrs > 0 || !p.backend_idle {
                writeln!(
                    f,
                    "  partition {i}: input={} wb={} mshrs={} backend_pending={} backend_idle={}",
                    p.input, p.writebacks, p.mshrs, p.backend_pending, p.backend_idle
                )?;
            }
        }
        Ok(())
    }
}

/// Errors surfaced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The GPU configuration failed validation.
    Config(ConfigError),
    /// The watchdog detected a deadlock/livelock.
    Stalled(StallReport),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "{e}"),
            SimError::Stalled(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Stalled(_) => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_displays_field() {
        let e = ConfigError::new("num_sms", "must be nonzero");
        assert!(e.to_string().contains("num_sms"));
        assert!(e.to_string().contains("nonzero"));
    }

    #[test]
    fn stall_report_totals() {
        let s = StallReport {
            cycle: 100,
            stalled_for: 50,
            unfinished_warps: 4,
            sm_overflow: vec![1, 2],
            partitions: vec![PartitionStall {
                input: 3,
                writebacks: 1,
                mshrs: 5,
                backend_pending: 2,
                backend_idle: false,
            }],
            icnt_requests: vec![4],
            icnt_responses: vec![0, 6],
        };
        assert_eq!(s.total_overflow(), 3);
        assert_eq!(s.total_mshrs(), 5);
        assert_eq!(s.total_icnt(), 10);
        let text = s.to_string();
        assert!(text.contains("stalled at cycle 100"));
        assert!(text.contains("partition 0"));
    }

    #[test]
    fn sim_error_from_config() {
        let e: SimError = ConfigError::new("x", "bad").into();
        assert!(matches!(e, SimError::Config(_)));
        assert!(e.to_string().contains("bad"));
    }
}
