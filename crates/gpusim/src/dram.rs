//! DRAM channel model: a bandwidth-limited, fixed-latency service queue.
//!
//! Each memory partition owns one channel. Requests are serviced in order
//! at the channel's byte rate (`868 GB/s / 32 partitions` in the baseline),
//! then complete after the access latency. The finite request queue
//! provides backpressure: when a workload (or the secure engine's metadata
//! traffic) oversubscribes the channel, queueing delay grows and upstream
//! structures (L2 MSHRs, SM scoreboards) fill — reproducing the
//! contention-driven slowdowns that dominate the paper's results.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use secmem_checkpoint::{CheckpointError, Reader, Snapshot, Writer};
use secmem_telemetry::{EventKind, Telemetry, TelemetryEvent};

use crate::fault::{FaultInjector, FaultKind, FaultStats};
use crate::types::{Addr, Cycle, TrafficClass};

/// Fixed-point scale for byte-credit arithmetic (10 fractional bits).
const FP: u64 = 1024;

/// A request presented to the DRAM channel.
///
/// `T` is an opaque token returned with the completion (e.g. a transaction
/// id in the secure engine, or an L2 fill descriptor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramRequest<T> {
    /// Bytes transferred (32 for a sector, 128 for a full metadata line).
    pub bytes: u64,
    /// Target address, used only by the banked row-buffer model (pass 0
    /// when row modeling is disabled).
    pub addr: Addr,
    /// Read or write (writes complete but typically need no downstream action).
    pub is_write: bool,
    /// Traffic class for statistics.
    pub class: TrafficClass,
    /// Caller token returned on completion.
    pub token: T,
}

/// Per-class DRAM traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramClassStats {
    /// Read requests.
    pub reads: u64,
    /// Write requests.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Stats per traffic class, indexed by `TrafficClass::ALL` order.
    pub per_class: [DramClassStats; 4],
    /// Cycles (fixed-point) the channel data bus was busy.
    pub busy_fp: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// Row-buffer hits (banked model only).
    pub row_hits: u64,
    /// Row-buffer misses (banked model only).
    pub row_misses: u64,
}

impl DramStats {
    fn class_mut(&mut self, c: TrafficClass) -> &mut DramClassStats {
        &mut self.per_class[c.index()]
    }

    /// Stats for one class.
    pub fn class(&self, c: TrafficClass) -> DramClassStats {
        self.per_class[c.index()]
    }

    /// Total requests (reads + writes, all classes).
    pub fn total_requests(&self) -> u64 {
        self.per_class.iter().map(|c| c.reads + c.writes).sum()
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.per_class.iter().map(|c| c.bytes_read + c.bytes_written).sum()
    }

    /// Bandwidth utilization over `cycles` simulated cycles (0..=1).
    pub fn utilization(&self, cycles: Cycle) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            (self.busy_fp as f64 / FP as f64) / cycles as f64
        }
    }
}

#[derive(Debug)]
struct InFlight<T> {
    req: DramRequest<T>,
}

/// The DRAM channel.
#[derive(Debug)]
pub struct Dram<T> {
    bytes_per_cycle_fp: u64,
    latency: Cycle,
    /// Open row per bank; empty = row modeling disabled.
    open_rows: Vec<Option<Addr>>,
    row_bytes: u64,
    row_miss_penalty_fp: u64,
    queue: VecDeque<DramRequest<T>>,
    queue_cap: usize,
    next_free_fp: u64,
    inflight: BinaryHeap<Reverse<(Cycle, u64)>>,
    inflight_store: Vec<Option<InFlight<T>>>,
    free_slots: Vec<usize>,
    ready: VecDeque<(DramRequest<T>, Option<FaultKind>)>,
    seq: u64,
    stats: DramStats,
    /// Optional fault engine consulted once per retiring transaction.
    injector: Option<FaultInjector>,
    /// Slots whose completion was already fault-delayed once (a delayed
    /// request must not be re-decided when it retires again).
    no_refault: Vec<bool>,
    /// Telemetry sink (disabled by default); fault injections are
    /// recorded here as instants at retire time.
    telemetry: Telemetry,
    /// Partition id stamped on telemetry events.
    partition: u32,
}

impl<T> Dram<T> {
    /// Creates a channel.
    ///
    /// * `bytes_per_cycle_fp` — peak bandwidth in bytes/cycle, 22.10 fixed
    ///   point (see `GpuConfig::dram_bytes_per_cycle_fp`).
    /// * `latency` — access latency in cycles added after service.
    /// * `queue_cap` — request queue capacity (backpressure bound).
    pub fn new(bytes_per_cycle_fp: u64, latency: u32, queue_cap: usize) -> Self {
        Self::with_banks(bytes_per_cycle_fp, latency, queue_cap, 0, 2048, 0)
    }

    /// Creates a channel with a banked row-buffer model: a request whose
    /// row (addr / `row_bytes`) differs from its bank's open row pays
    /// `row_miss_penalty` extra cycles of service time. `banks = 0`
    /// disables row modeling (every access costs the flat rate).
    pub fn with_banks(
        bytes_per_cycle_fp: u64,
        latency: u32,
        queue_cap: usize,
        banks: u32,
        row_bytes: u64,
        row_miss_penalty: u32,
    ) -> Self {
        assert!(bytes_per_cycle_fp > 0, "bandwidth must be positive");
        assert!(row_bytes.is_power_of_two(), "row size must be a power of two");
        Self {
            bytes_per_cycle_fp,
            latency: latency as Cycle,
            open_rows: vec![None; banks as usize],
            row_bytes,
            row_miss_penalty_fp: row_miss_penalty as u64 * FP,
            queue: VecDeque::new(),
            queue_cap: queue_cap.max(1),
            next_free_fp: 0,
            inflight: BinaryHeap::new(),
            inflight_store: Vec::new(),
            free_slots: Vec::new(),
            ready: VecDeque::new(),
            seq: 0,
            stats: DramStats::default(),
            injector: None,
            no_refault: Vec::new(),
            telemetry: Telemetry::disabled(),
            partition: 0,
        }
    }

    /// Attaches a telemetry sink; fault injections at this channel are
    /// recorded as instants stamped with `partition`.
    pub fn set_telemetry(&mut self, telemetry: Telemetry, partition: u32) {
        self.telemetry = telemetry;
        self.partition = partition;
    }

    /// Installs a fault injector. Subsequent completions are candidates
    /// for deterministic corruption, drop, or delay.
    pub fn install_faults(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// The installed fault injector, if any.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Mutable access to the installed fault injector (used by backends
    /// to record detection outcomes).
    pub fn injector_mut(&mut self) -> Option<&mut FaultInjector> {
        self.injector.as_mut()
    }

    /// Fault statistics (zero when no injector is installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.as_ref().map(|i| *i.stats()).unwrap_or_default()
    }

    /// True if the request queue cannot accept another request.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.queue_cap
    }

    /// Records a fault instant. Outlined from `cycle` so its event
    /// allocation stays off the steady-state per-cycle path: faults are
    /// rare and the call is telemetry-gated.
    #[cold]
    fn record_fault_event(&mut self, now: Cycle, class: TrafficClass, kind: FaultKind) {
        self.telemetry.record_event(TelemetryEvent {
            cycle: now,
            kind: EventKind::Fault {
                partition: self.partition,
                class: class.label(),
                kind: kind.label(),
                detected: None,
            },
        });
    }

    /// Submits a request.
    ///
    /// # Errors
    ///
    /// Returns the request back if the queue is full.
    pub fn try_push(&mut self, req: DramRequest<T>) -> Result<(), DramRequest<T>> {
        if self.is_full() {
            self.stats.rejected += 1;
            return Err(req);
        }
        let cs = self.stats.class_mut(req.class);
        if req.is_write {
            cs.writes += 1;
            cs.bytes_written += req.bytes;
        } else {
            cs.reads += 1;
            cs.bytes_read += req.bytes;
        }
        self.queue.push_back(req);
        Ok(())
    }

    /// Advances the channel to cycle `now`: starts service of queued
    /// requests as bandwidth allows and retires finished ones into the
    /// ready queue.
    pub fn cycle(&mut self, now: Cycle) {
        let now_fp = now * FP;
        // Begin service for queued requests that can start within this
        // cycle (start < now+1 in fixed point keeps fractional service
        // times from leaking bandwidth at cycle boundaries).
        while let Some(front) = self.queue.front() {
            let start_fp = self.next_free_fp.max(now_fp);
            if start_fp >= now_fp + FP {
                break; // channel busy beyond this cycle
            }
            let mut service_fp = front.bytes * FP * FP / self.bytes_per_cycle_fp;
            if !self.open_rows.is_empty() {
                let row = front.addr / self.row_bytes;
                let bank = (row as usize) % self.open_rows.len();
                if self.open_rows[bank] == Some(row) {
                    self.stats.row_hits += 1;
                } else {
                    self.stats.row_misses += 1;
                    self.open_rows[bank] = Some(row);
                    service_fp += self.row_miss_penalty_fp;
                }
            }
            let end_fp = start_fp + service_fp;
            self.next_free_fp = end_fp;
            self.stats.busy_fp += service_fp;
            let done_at = end_fp.div_ceil(FP) + self.latency;
            let Some(req) = self.queue.pop_front() else {
                debug_assert!(false, "loop condition guarantees a front request");
                break;
            };
            let slot = if let Some(s) = self.free_slots.pop() {
                self.inflight_store[s] = Some(InFlight { req });
                s
            } else {
                self.inflight_store.push(Some(InFlight { req }));
                self.inflight_store.len() - 1
            };
            self.inflight.push(Reverse((done_at, slot as u64)));
            if self.no_refault.len() < self.inflight_store.len() {
                self.no_refault.resize(self.inflight_store.len(), false);
            }
            self.seq += 1;
        }
        // Retire completions, consulting the fault injector (at most
        // once per transaction) as each one leaves the channel.
        while let Some(Reverse((done_at, slot))) = self.inflight.peek().copied() {
            if done_at > now {
                break;
            }
            self.inflight.pop();
            let slot = slot as usize;
            let already_delayed = std::mem::replace(&mut self.no_refault[slot], false);
            let fault = match (&mut self.injector, already_delayed, self.inflight_store[slot].as_ref()) {
                (Some(inj), false, Some(inf)) => inj.decide(inf.req.class, inf.req.is_write, inf.req.addr),
                _ => None,
            };
            if let Some(kind) = fault {
                if self.telemetry.is_enabled() {
                    if let Some(inf) = self.inflight_store[slot].as_ref() {
                        let class = inf.req.class;
                        self.record_fault_event(now, class, kind);
                    }
                }
            }
            match fault {
                Some(FaultKind::Drop) => {
                    self.inflight_store[slot] = None;
                    self.free_slots.push(slot);
                }
                Some(FaultKind::Delay(d)) => {
                    self.no_refault[slot] = true;
                    self.inflight.push(Reverse((now + Cycle::from(d.max(1)), slot as u64)));
                }
                other => {
                    let Some(inflight) = self.inflight_store[slot].take() else {
                        debug_assert!(false, "retiring heap entry without a stored request");
                        continue;
                    };
                    self.free_slots.push(slot);
                    self.ready.push_back((inflight.req, other));
                }
            }
        }
    }

    /// Pops one completed request, if any. A request corrupted by fault
    /// injection is still delivered (the payload is wrong, silently);
    /// use [`Dram::pop_completed_with_fault`] to observe the fault flag.
    pub fn pop_completed(&mut self) -> Option<DramRequest<T>> {
        self.ready.pop_front().map(|(req, _)| req)
    }

    /// Pops one completed request together with the fault (if any) that
    /// was applied to it. Dropped requests never appear here.
    pub fn pop_completed_with_fault(&mut self) -> Option<(DramRequest<T>, Option<FaultKind>)> {
        self.ready.pop_front()
    }

    /// True when no requests are queued, in flight, or awaiting pickup.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.inflight.is_empty() && self.ready.is_empty()
    }

    /// Earliest cycle at or after `now` at which this channel can make
    /// progress: hand over a ready completion, start servicing the queue
    /// head (the first cycle `c` with `next_free_fp < (c+1)*FP`), or
    /// retire an in-flight request. `None` when idle. Used by the
    /// idle-skip scheduler.
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        // Every merge below clamps to `now`, so a ready completion
        // short-circuits: nothing can beat `now`.
        if !self.ready.is_empty() {
            return Some(now);
        }
        let mut next: Option<Cycle> = None;
        let mut merge = |c: Cycle| next = Some(next.map_or(c, |n| n.min(c)));
        if !self.queue.is_empty() {
            merge((self.next_free_fp / FP).max(now));
        }
        if let Some(Reverse((done_at, _))) = self.inflight.peek() {
            merge((*done_at).max(now));
        }
        next
    }

    /// Number of queued (not yet serviced) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Free request-queue slots.
    pub fn free_capacity(&self) -> usize {
        self.queue_cap.saturating_sub(self.queue.len())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets statistics (state preserved; the fault injector's rule
    /// state and random stream also continue, only its counters reset).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        if let Some(inj) = &mut self.injector {
            inj.reset_stats();
        }
    }
}

impl<T: Snapshot> Snapshot for DramRequest<T> {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.bytes);
        w.put_u64(self.addr);
        w.put_bool(self.is_write);
        self.class.save(w);
        self.token.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CheckpointError> {
        Ok(DramRequest {
            bytes: r.get_u64()?,
            addr: r.get_u64()?,
            is_write: r.get_bool()?,
            class: TrafficClass::load(r)?,
            token: T::load(r)?,
        })
    }
}

impl<T: Snapshot> Dram<T> {
    /// Serializes the channel's dynamic state. The in-flight slot store is
    /// saved **index-preserving** and the free list verbatim: slot reuse
    /// pops the free list LIFO, so the exact layout determines the slot
    /// ids (and thus heap ordering) of future requests. The completion
    /// heap is stored as a sorted list — its pop order is total on
    /// `(done_at, slot)`, so rebuilding from sorted entries is exact.
    pub fn save_state(&self, w: &mut Writer) {
        self.open_rows.save(w);
        self.queue.save(w);
        w.put_u64(self.next_free_fp);
        let mut inflight: Vec<(Cycle, u64)> = self.inflight.iter().map(|Reverse(e)| *e).collect();
        inflight.sort_unstable();
        inflight.save(w);
        w.put_usize(self.inflight_store.len());
        for slot in &self.inflight_store {
            match slot {
                None => w.put_u8(0),
                Some(inf) => {
                    w.put_u8(1);
                    inf.req.save(w);
                }
            }
        }
        self.free_slots.save(w);
        self.ready.save(w);
        w.put_u64(self.seq);
        self.stats.save(w);
        self.no_refault.save(w);
        match &self.injector {
            None => w.put_u8(0),
            Some(inj) => {
                w.put_u8(1);
                inj.save_state(w);
            }
        }
    }

    /// Restores state saved by [`Dram::save_state`] into a channel
    /// rebuilt from the same configuration (same bank count, bandwidth,
    /// latency, queue capacity and fault plan).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] when the decoded state violates the
    /// channel's invariants (bank-count mismatch, out-of-range slot
    /// indices, fault-injector presence mismatch); any decode error
    /// otherwise.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let open_rows: Vec<Option<Addr>> = Vec::load(r)?;
        if open_rows.len() != self.open_rows.len() {
            return Err(CheckpointError::Malformed(format!(
                "DRAM bank count mismatch: checkpoint has {}, channel has {}",
                open_rows.len(),
                self.open_rows.len()
            )));
        }
        self.open_rows = open_rows;
        let queue: VecDeque<DramRequest<T>> = VecDeque::load(r)?;
        if queue.len() > self.queue_cap {
            return Err(CheckpointError::Malformed(format!(
                "DRAM queue holds {} requests but capacity is {}",
                queue.len(),
                self.queue_cap
            )));
        }
        self.queue = queue;
        self.next_free_fp = r.get_u64()?;
        let inflight: Vec<(Cycle, u64)> = Vec::load(r)?;
        let store_len = r.get_count()?;
        let mut store: Vec<Option<InFlight<T>>> = Vec::with_capacity(store_len);
        for _ in 0..store_len {
            store.push(match r.get_u8()? {
                0 => None,
                1 => Some(InFlight { req: DramRequest::load(r)? }),
                other => {
                    return Err(CheckpointError::Malformed(format!("in-flight slot discriminant {other}")))
                }
            });
        }
        for &(_, slot) in &inflight {
            let occupied = store.get(slot as usize).is_some_and(Option::is_some);
            if !occupied {
                return Err(CheckpointError::Malformed(format!(
                    "in-flight heap references empty or out-of-range slot {slot}"
                )));
            }
        }
        let free_slots: Vec<usize> = Vec::load(r)?;
        for &slot in &free_slots {
            let vacant = store.get(slot).is_some_and(Option::is_none);
            if !vacant {
                return Err(CheckpointError::Malformed(format!(
                    "free list references occupied or out-of-range slot {slot}"
                )));
            }
        }
        self.inflight = inflight.into_iter().map(Reverse).collect();
        self.inflight_store = store;
        self.free_slots = free_slots;
        self.ready = VecDeque::load(r)?;
        self.seq = r.get_u64()?;
        self.stats = DramStats::load(r)?;
        let no_refault: Vec<bool> = Vec::load(r)?;
        if !self.inflight_store.is_empty() && no_refault.len() < self.inflight_store.len() {
            return Err(CheckpointError::Malformed(format!(
                "no-refault map has {} entries for {} slots",
                no_refault.len(),
                self.inflight_store.len()
            )));
        }
        self.no_refault = no_refault;
        match (r.get_u8()?, &mut self.injector) {
            (0, None) => {}
            (1, Some(inj)) => inj.restore_state(r)?,
            (0, Some(_)) | (1, None) => {
                return Err(CheckpointError::Malformed(
                    "fault injector presence differs between checkpoint and configuration".into(),
                ))
            }
            (other, _) => return Err(CheckpointError::Malformed(format!("injector discriminant {other}"))),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(bytes: u64, write: bool, token: u32) -> DramRequest<u32> {
        DramRequest { bytes, addr: 0, is_write: write, class: TrafficClass::Data, token }
    }

    /// 24 B/cycle, 10-cycle latency, queue of 4.
    fn dram() -> Dram<u32> {
        Dram::new(24 * FP, 10, 4)
    }

    #[test]
    fn single_request_latency() {
        let mut d = dram();
        d.try_push(req(32, false, 1)).unwrap();
        let mut done_cycle = None;
        for now in 0..40 {
            d.cycle(now);
            if let Some(r) = d.pop_completed() {
                assert_eq!(r.token, 1);
                done_cycle = Some(now);
                break;
            }
        }
        // 32 B at 24 B/cycle = 2 cycles (ceil), + 10 latency.
        assert_eq!(done_cycle, Some(12));
        assert!(d.is_idle());
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let mut d = Dram::new(24 * FP, 0, 1024);
        for i in 0..100 {
            d.try_push(req(32, false, i)).unwrap();
        }
        let mut completed = 0;
        let mut cycles = 0;
        while completed < 100 {
            d.cycle(cycles);
            while d.pop_completed().is_some() {
                completed += 1;
            }
            cycles += 1;
            assert!(cycles < 1000, "requests never completed");
        }
        // 100 * 32 B = 3200 B at 24 B/cycle ~= 133 cycles.
        assert!((130..=140).contains(&cycles), "took {cycles} cycles");
        let util = d.stats().utilization(cycles);
        assert!(util > 0.9, "utilization {util}");
    }

    #[test]
    fn queue_full_backpressure() {
        let mut d = dram();
        for i in 0..4 {
            d.try_push(req(32, false, i)).unwrap();
        }
        assert!(d.is_full());
        assert!(d.try_push(req(32, false, 99)).is_err());
        assert_eq!(d.stats().rejected, 1);
    }

    #[test]
    fn completions_in_service_order() {
        let mut d = dram();
        d.try_push(req(128, false, 1)).unwrap();
        d.try_push(req(32, false, 2)).unwrap();
        let mut order = Vec::new();
        for now in 0..100 {
            d.cycle(now);
            while let Some(r) = d.pop_completed() {
                order.push(r.token);
            }
        }
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn per_class_stats() {
        let mut d: Dram<()> = Dram::new(24 * FP, 0, 16);
        d.try_push(DramRequest { bytes: 32, addr: 0, is_write: false, class: TrafficClass::Mac, token: () })
            .unwrap();
        d.try_push(DramRequest {
            bytes: 128,
            addr: 0,
            is_write: true,
            class: TrafficClass::Counter,
            token: (),
        })
        .unwrap();
        assert_eq!(d.stats().class(TrafficClass::Mac).reads, 1);
        assert_eq!(d.stats().class(TrafficClass::Mac).bytes_read, 32);
        assert_eq!(d.stats().class(TrafficClass::Counter).writes, 1);
        assert_eq!(d.stats().class(TrafficClass::Counter).bytes_written, 128);
        assert_eq!(d.stats().total_requests(), 2);
        assert_eq!(d.stats().total_bytes(), 160);
    }

    #[test]
    fn writes_complete_too() {
        let mut d = dram();
        d.try_push(req(32, true, 7)).unwrap();
        let mut saw = false;
        for now in 0..40 {
            d.cycle(now);
            if let Some(r) = d.pop_completed() {
                assert!(r.is_write);
                saw = true;
            }
        }
        assert!(saw);
    }

    #[test]
    fn row_buffer_hits_are_faster() {
        // 16 B/cycle, zero latency; row misses cost 10 extra cycles.
        let run = |addrs: &[u64]| {
            let mut d: Dram<u32> = Dram::with_banks(16 * FP, 0, 64, 4, 2048, 10);
            for (i, &a) in addrs.iter().enumerate() {
                d.try_push(DramRequest {
                    bytes: 32,
                    addr: a,
                    is_write: false,
                    class: TrafficClass::Data,
                    token: i as u32,
                })
                .unwrap();
            }
            let mut done = 0;
            let mut now = 0;
            while done < addrs.len() {
                d.cycle(now);
                while d.pop_completed().is_some() {
                    done += 1;
                }
                now += 1;
                assert!(now < 10_000);
            }
            now
        };
        // Same row streaming vs. alternating rows in the same bank.
        let stream: Vec<u64> = (0..16).map(|i| i * 32).collect();
        let thrash: Vec<u64> = (0..16).map(|i| (i % 2) * 4 * 2048 + i * 32).collect();
        assert!(run(&stream) < run(&thrash), "row thrashing must be slower");
    }

    #[test]
    fn row_stats_recorded() {
        let mut d: Dram<u32> = Dram::with_banks(16 * FP, 0, 64, 2, 2048, 10);
        for i in 0..4u64 {
            d.try_push(DramRequest {
                bytes: 32,
                addr: i * 32,
                is_write: false,
                class: TrafficClass::Data,
                token: i as u32,
            })
            .unwrap();
        }
        for now in 0..100 {
            d.cycle(now);
            while d.pop_completed().is_some() {}
        }
        assert_eq!(d.stats().row_misses, 1, "first access opens the row");
        assert_eq!(d.stats().row_hits, 3);
    }

    #[test]
    fn unbanked_records_no_row_stats() {
        let mut d = dram();
        d.try_push(req(32, false, 1)).unwrap();
        for now in 0..40 {
            d.cycle(now);
        }
        assert_eq!(d.stats().row_hits, 0);
        assert_eq!(d.stats().row_misses, 0);
    }

    #[test]
    fn utilization_zero_when_idle() {
        let d = dram();
        assert_eq!(d.stats().utilization(100), 0.0);
        assert_eq!(d.stats().utilization(0), 0.0);
    }

    mod faults {
        use super::*;
        use crate::fault::{FaultKind, FaultPlan, FaultSpec, FaultTrigger};

        fn faulted_dram(kind: FaultKind) -> Dram<u32> {
            let mut d = dram();
            let plan = FaultPlan::new(5).with(FaultSpec::new(kind, FaultTrigger::Nth(0)));
            d.install_faults(plan.injector_for(0));
            d
        }

        #[test]
        fn bit_flip_is_delivered_with_flag() {
            let mut d = faulted_dram(FaultKind::BitFlip);
            d.try_push(req(32, false, 1)).unwrap();
            d.try_push(req(32, false, 2)).unwrap();
            let mut seen = Vec::new();
            for now in 0..40 {
                d.cycle(now);
                while let Some((r, f)) = d.pop_completed_with_fault() {
                    seen.push((r.token, f));
                }
            }
            assert_eq!(seen, vec![(1, Some(FaultKind::BitFlip)), (2, None)]);
            assert_eq!(d.fault_stats().class(TrafficClass::Data).injected, 1);
        }

        #[test]
        fn drop_swallows_the_completion() {
            let mut d = faulted_dram(FaultKind::Drop);
            d.try_push(req(32, false, 1)).unwrap();
            d.try_push(req(32, false, 2)).unwrap();
            let mut seen = Vec::new();
            for now in 0..40 {
                d.cycle(now);
                while let Some(r) = d.pop_completed() {
                    seen.push(r.token);
                }
            }
            assert_eq!(seen, vec![2], "first read vanished");
            assert_eq!(d.fault_stats().class(TrafficClass::Data).dropped, 1);
            assert!(d.is_idle(), "the channel itself is drained");
        }

        #[test]
        fn delay_postpones_completion_once() {
            let mut base = dram();
            base.try_push(req(32, false, 1)).unwrap();
            let mut baseline_done = 0;
            for now in 0..200 {
                base.cycle(now);
                if base.pop_completed().is_some() {
                    baseline_done = now;
                    break;
                }
            }
            let mut d = faulted_dram(FaultKind::Delay(25));
            d.try_push(req(32, false, 1)).unwrap();
            let mut done = None;
            for now in 0..200 {
                d.cycle(now);
                if let Some((r, f)) = d.pop_completed_with_fault() {
                    assert_eq!(r.token, 1);
                    assert_eq!(f, None, "a delayed request is not corrupted");
                    done = Some(now);
                    break;
                }
            }
            assert_eq!(done, Some(baseline_done + 25));
            assert_eq!(d.fault_stats().class(TrafficClass::Data).delayed, 1);
        }

        #[test]
        fn plain_pop_hides_the_flag() {
            let mut d = faulted_dram(FaultKind::BitFlip);
            d.try_push(req(32, false, 9)).unwrap();
            for now in 0..40 {
                d.cycle(now);
                if let Some(r) = d.pop_completed() {
                    assert_eq!(r.token, 9);
                    return;
                }
            }
            panic!("request never completed");
        }
    }
}
