//! A memory partition: sectored L2 banks in front of a memory backend
//! (bare DRAM for the baseline, or a secure memory engine).
//!
//! Each of the GPU's 32 partitions owns 2 × 96 KB L2 banks with MSHRs.
//! Loads that miss go to the backend; dirty sector evictions and stores
//! that miss (write-validate) generate backend writes. Because the L2 is
//! sectored, a stream of 32 B sector misses to one 128 B line reaches the
//! backend as four separate accesses — the effect that makes metadata-cache
//! MSHRs essential (§V-B of the paper).

use std::collections::VecDeque;

use secmem_checkpoint::{CheckpointError, Reader, Snapshot, Writer};

use crate::backend::MemoryBackend;
use crate::cache::{CacheStats, Probe, SectoredCache, WriteOutcome};
use crate::config::{AddressMap, GpuConfig};
use crate::icnt::DelayQueue;
use crate::mshr::{MshrFile, MshrOutcome, MshrStats};
use crate::types::{AccessKind, Addr, BackendReq, Cycle, MemRequest, SectorMask};

#[derive(Debug)]
struct L2Bank {
    cache: SectoredCache,
    mshrs: MshrFile<MemRequest>,
    hit_delay: DelayQueue<MemRequest>,
}

impl L2Bank {
    fn new(cfg: &GpuConfig) -> Self {
        Self {
            cache: SectoredCache::new(cfg.l2_bytes_per_bank, cfg.l2_assoc),
            mshrs: MshrFile::new(cfg.l2_mshrs as usize, cfg.l2_mshr_merge as usize),
            hit_delay: DelayQueue::new(cfg.l2_latency, 4, usize::MAX),
        }
    }
}

/// A memory partition (L2 banks + backend).
#[derive(Debug)]
pub struct MemPartition<B> {
    id: u32,
    map: AddressMap,
    banks: Vec<L2Bank>,
    backend: B,
    /// Incoming requests staged from the interconnect (bounded; check
    /// [`MemPartition::input_full`] before pushing).
    pub input: VecDeque<MemRequest>,
    input_cap: usize,
    /// Completed responses awaiting the interconnect (drained by the simulator).
    pub responses: Vec<MemRequest>,
    /// Dirty evictions awaiting a free DRAM queue slot. Drained before new
    /// reads are accepted so writebacks are never starved.
    wb_buffer: VecDeque<BackendReq>,
    wb_cap: usize,
    next_backend_id: u64,
    accept_per_cycle: u32,
}

impl<B: MemoryBackend> MemPartition<B> {
    /// Creates partition `id` with the given backend.
    pub fn new(id: u32, cfg: &GpuConfig, backend: B) -> Self {
        Self {
            id,
            map: AddressMap::new(cfg),
            banks: (0..cfg.l2_banks_per_partition).map(|_| L2Bank::new(cfg)).collect(),
            backend,
            input: VecDeque::new(),
            input_cap: 8,
            responses: Vec::new(),
            wb_buffer: VecDeque::new(),
            wb_cap: 16,
            next_backend_id: (id as u64) << 48,
            accept_per_cycle: cfg.icnt_flit_per_cycle.max(cfg.l2_banks_per_partition),
        }
    }

    /// The backend (for statistics inspection).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Attaches a telemetry sink, forwarded to the backend (and its DRAM
    /// channel) stamped with this partition's id.
    pub fn set_telemetry(&mut self, telemetry: secmem_telemetry::Telemetry) {
        self.backend.set_telemetry(telemetry, self.id);
    }

    /// Metadata-cache MSHR occupancy reported by the backend (zero for
    /// backends without metadata caches).
    pub fn meta_mshr_occupancy(&self) -> usize {
        self.backend.meta_mshr_occupancy()
    }

    /// Requests staged from the interconnect (sampling probe).
    pub fn input_occupancy(&self) -> usize {
        self.input.len()
    }

    /// Aggregated L2 cache statistics across banks.
    pub fn l2_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for b in &self.banks {
            let s = b.cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.fills += s.fills;
            total.evictions += s.evictions;
            total.dirty_evictions += s.dirty_evictions;
        }
        total
    }

    /// Aggregated L2 MSHR statistics across banks.
    pub fn l2_mshr_stats(&self) -> MshrStats {
        let mut total = MshrStats::default();
        for b in &self.banks {
            let s = b.mshrs.stats();
            total.primary += s.primary;
            total.secondary += s.secondary;
            total.stalls += s.stalls;
        }
        total
    }

    fn bank_index(&self, addr: Addr) -> usize {
        let banks = crate::narrow::usize_to_u32(self.banks.len(), "bank count is a small power of two");
        self.map.bank_of(addr, banks) as usize
    }

    /// Attempts to consume one incoming request, taking ownership so the
    /// accept path never clones. On a resource stall the request is handed
    /// back in `Err` and must stay queued.
    fn try_accept(&mut self, now: Cycle, req: MemRequest) -> Result<(), MemRequest> {
        let bank_idx = self.bank_index(req.line_addr);
        match req.kind {
            AccessKind::Load => {
                let probe = self.banks[bank_idx].cache.peek(req.line_addr, req.sectors);
                let missing = match probe {
                    Probe::Hit => {
                        let bank = &mut self.banks[bank_idx];
                        let _ = bank.cache.probe(req.line_addr, req.sectors);
                        let pushed = bank.hit_delay.try_push(now, req);
                        debug_assert!(pushed.is_ok(), "hit queue is unbounded");
                        return Ok(());
                    }
                    Probe::PartialMiss(m) => m,
                    Probe::Miss => req.sectors,
                };
                if !self.backend.can_accept_read() {
                    return Err(req);
                }
                let bank = &mut self.banks[bank_idx];
                #[cfg(debug_assertions)]
                if let Some(targets) = bank.mshrs.targets(req.line_addr) {
                    debug_assert!(
                        targets.iter().all(|t| t.id != req.id),
                        "request id {} is already in flight in an L2 MSHR entry",
                        req.id
                    );
                }
                let line_addr = req.line_addr;
                let sectors = req.sectors;
                match bank.mshrs.access(line_addr, missing, req) {
                    MshrOutcome::Full(req) => Err(req),
                    MshrOutcome::Merged => {
                        let _ = bank.cache.probe(line_addr, sectors);
                        Ok(())
                    }
                    outcome => {
                        let to_fetch = match outcome {
                            MshrOutcome::MergedNewSectors(m) => m,
                            _ => missing,
                        };
                        let _ = bank.cache.probe(line_addr, sectors);
                        // The L2 is sectored: each missing 32 B sector goes
                        // to the memory side as its own request (this is
                        // what produces the 1-primary + N-secondary
                        // metadata-cache miss pattern of §V-B).
                        for sector in to_fetch.iter() {
                            let id = self.next_backend_id();
                            self.backend.submit_read(
                                now,
                                BackendReq {
                                    id,
                                    line_addr,
                                    sectors: SectorMask::single(sector),
                                    bank: crate::narrow::usize_to_u32(bank_idx, "bank index < bank count"),
                                },
                            );
                        }
                        Ok(())
                    }
                }
            }
            AccessKind::Store => {
                let bank = &mut self.banks[bank_idx];
                match bank.cache.write(req.line_addr, req.sectors) {
                    WriteOutcome::Hit => Ok(()),
                    WriteOutcome::Miss => {
                        // Write-validate: install the sectors dirty without
                        // fetching, possibly evicting a dirty victim into
                        // the writeback buffer.
                        if self.wb_buffer.len() >= self.wb_cap {
                            return Err(req);
                        }
                        let evicted =
                            self.banks[bank_idx].cache.fill(req.line_addr, req.sectors, req.sectors);
                        if let Some(ev) = evicted {
                            if !ev.dirty.is_empty() {
                                let id = self.next_backend_id();
                                self.wb_buffer.push_back(BackendReq {
                                    id,
                                    line_addr: ev.line_addr,
                                    sectors: ev.dirty,
                                    bank: crate::narrow::usize_to_u32(bank_idx, "bank index < bank count"),
                                });
                            }
                        }
                        Ok(())
                    }
                }
            }
        }
    }

    fn next_backend_id(&mut self) -> u64 {
        self.next_backend_id += 1;
        self.next_backend_id
    }

    /// True if the staging queue cannot take another request.
    pub fn input_full(&self) -> bool {
        self.input.len() >= self.input_cap
    }

    /// Dirty lines currently waiting in the writeback buffer (stall
    /// diagnostics).
    pub fn wb_occupancy(&self) -> usize {
        self.wb_buffer.len()
    }

    /// Outstanding L2 MSHR entries across all banks (stall diagnostics).
    pub fn mshr_occupancy(&self) -> usize {
        self.banks.iter().map(|b| b.mshrs.len()).sum()
    }

    /// Advances the partition one cycle, consuming staged requests as
    /// resources allow.
    pub fn cycle(&mut self, now: Cycle) {
        // 1. Advance the backend first so freed DRAM slots are visible.
        self.backend.cycle(now);

        // 2. Writebacks get first claim on backend write slots.
        while self.backend.can_accept_write() {
            let Some(wb) = self.wb_buffer.pop_front() else { break };
            self.backend.submit_write(now, wb);
        }

        // 3. Drain backend read completions into L2 fills (stall only when
        //    the writeback buffer is full).
        while self.wb_buffer.len() < self.wb_cap {
            let Some(fill) = self.backend.pop_read_response() else { break };
            self.apply_fill(&fill);
        }

        // 4. Accept as many incoming requests as resources allow; a
        //    rejected request goes back to the queue head untouched.
        for _ in 0..self.accept_per_cycle {
            let Some(req) = self.input.pop_front() else { break };
            if let Err(req) = self.try_accept(now, req) {
                self.input.push_front(req);
                break;
            }
        }

        // 5. Retire L2 hits whose latency elapsed.
        for bank in &mut self.banks {
            while let Some(resp) = bank.hit_delay.pop(now) {
                self.responses.push(resp);
            }
        }
    }

    /// Applies one backend fill to its L2 bank; dirty evictions land in
    /// the writeback buffer.
    fn apply_fill(&mut self, fill: &BackendReq) {
        let bank_idx = fill.bank as usize;
        let bank = &mut self.banks[bank_idx];
        if let Some(ev) = bank.cache.fill(fill.line_addr, fill.sectors, SectorMask::EMPTY) {
            if !ev.dirty.is_empty() {
                self.next_backend_id += 1;
                let id = self.next_backend_id;
                self.wb_buffer.push_back(BackendReq {
                    id,
                    line_addr: ev.line_addr,
                    sectors: ev.dirty,
                    bank: fill.bank,
                });
            }
        }
        // Fill progress is tracked inside the MSHR entry itself; a
        // completed entry drains its merged targets straight into the
        // response list without any intermediate allocation.
        let bank = &mut self.banks[bank_idx];
        let _ = bank.mshrs.note_fill(fill.line_addr, fill.sectors, &mut self.responses);
    }

    /// Earliest cycle at or after `now` at which this partition can make
    /// progress: staged input or pending responses (immediate), a
    /// writeback the backend can take, an L2 hit completing its latency,
    /// or any backend/DRAM event. `None` when fully drained. Used by the
    /// idle-skip scheduler. A writeback stalled on a full backend is
    /// covered by the backend's own next event (the cycle a queue slot
    /// frees).
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        // Every merge below clamps to `now`, so any immediate event
        // short-circuits: nothing can beat `now`.
        if !self.input.is_empty() || !self.responses.is_empty() {
            return Some(now);
        }
        if !self.wb_buffer.is_empty() && self.backend.can_accept_write() {
            return Some(now);
        }
        let mut next: Option<Cycle> = None;
        let mut merge = |c: Cycle| next = Some(next.map_or(c, |n: Cycle| n.min(c)));
        for bank in &self.banks {
            if let Some(r) = bank.hit_delay.next_ready_at() {
                merge(r.max(now));
            }
        }
        if let Some(c) = self.backend.next_event_cycle(now) {
            merge(c);
        }
        next
    }

    /// True when no work remains anywhere in the partition.
    pub fn is_idle(&self) -> bool {
        self.backend.is_idle()
            && self.input.is_empty()
            && self.wb_buffer.is_empty()
            && self.responses.is_empty()
            && self.banks.iter().all(|b| b.mshrs.is_empty() && b.hit_delay.is_empty())
    }

    /// Partition id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Resets statistics (cache contents and queues preserved).
    pub fn reset_stats(&mut self) {
        for bank in &mut self.banks {
            bank.cache.reset_stats();
            bank.mshrs.reset_stats();
        }
        self.backend.reset_stats();
    }

    /// Serializes the partition's complete mutable state: every L2 bank
    /// (cache contents, MSHRs, hit-latency queue), the backend, and the
    /// staging/response/writeback queues.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_usize(self.banks.len());
        for bank in &self.banks {
            bank.cache.save_state(w);
            bank.mshrs.save_state(w);
            bank.hit_delay.save_state(w);
        }
        self.backend.save_state(w);
        self.input.save(w);
        self.responses.save(w);
        self.wb_buffer.save(w);
        w.put_u64(self.next_backend_id);
    }

    /// Restores state saved by [`MemPartition::save_state`] into a
    /// partition rebuilt from the same configuration.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] on a bank-count mismatch or a queue
    /// that exceeds its capacity; any decode error otherwise.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let banks = r.get_usize()?;
        if banks != self.banks.len() {
            return Err(CheckpointError::Malformed(format!(
                "partition {} has {} L2 banks, checkpoint has {banks}",
                self.id,
                self.banks.len()
            )));
        }
        for bank in &mut self.banks {
            bank.cache.restore_state(r)?;
            bank.mshrs.restore_state(r)?;
            bank.hit_delay.restore_state(r)?;
        }
        self.backend.restore_state(r)?;
        let input: VecDeque<MemRequest> = VecDeque::load(r)?;
        if input.len() > self.input_cap {
            return Err(CheckpointError::Malformed(format!(
                "partition input holds {} requests but capacity is {}",
                input.len(),
                self.input_cap
            )));
        }
        self.input = input;
        self.responses = Vec::load(r)?;
        let wb: VecDeque<BackendReq> = VecDeque::load(r)?;
        if wb.len() > self.wb_cap {
            return Err(CheckpointError::Malformed(format!(
                "writeback buffer holds {} requests but capacity is {}",
                wb.len(),
                self.wb_cap
            )));
        }
        self.wb_buffer = wb;
        self.next_backend_id = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PassthroughBackend;
    use crate::types::{WarpRef, FULL_SECTOR_MASK};

    fn cfg() -> GpuConfig {
        GpuConfig::small()
    }

    fn partition() -> MemPartition<PassthroughBackend> {
        let c = cfg();
        MemPartition::new(0, &c, PassthroughBackend::from_config(&c))
    }

    fn load(id: u64, addr: Addr) -> MemRequest {
        MemRequest {
            id,
            line_addr: addr,
            sectors: SectorMask::single(0),
            kind: AccessKind::Load,
            warp: Some(WarpRef { sm: 0, warp: 0 }),
        }
    }

    fn store(id: u64, addr: Addr) -> MemRequest {
        MemRequest { id, line_addr: addr, sectors: FULL_SECTOR_MASK, kind: AccessKind::Store, warp: None }
    }

    /// Drives the partition with a one-shot queue of requests.
    fn run(p: &mut MemPartition<PassthroughBackend>, reqs: Vec<MemRequest>, cycles: u64) -> Vec<MemRequest> {
        let mut queue = VecDeque::from(reqs);
        let mut out = Vec::new();
        for now in 0..cycles {
            while !p.input_full() {
                let Some(r) = queue.pop_front() else { break };
                p.input.push_back(r);
            }
            p.cycle(now);
            out.append(&mut p.responses);
        }
        out
    }

    #[test]
    fn load_miss_roundtrip() {
        let mut p = partition();
        let resps = run(&mut p, vec![load(1, 0x0)], 400);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].id, 1);
        assert!(p.is_idle());
        assert_eq!(p.backend().dram_stats().class(crate::types::TrafficClass::Data).reads, 1);
    }

    #[test]
    fn second_load_hits_in_l2() {
        let mut p = partition();
        let r1 = run(&mut p, vec![load(1, 0x0)], 400);
        assert_eq!(r1.len(), 1);
        let r2 = run(&mut p, vec![load(2, 0x0)], 400);
        assert_eq!(r2.len(), 1);
        assert_eq!(
            p.backend().dram_stats().class(crate::types::TrafficClass::Data).reads,
            1,
            "second load must not reach DRAM"
        );
        assert_eq!(p.l2_stats().hits, 1);
    }

    #[test]
    fn store_write_validate_no_dram_read() {
        let mut p = partition();
        let resps = run(&mut p, vec![store(1, 0x100)], 200);
        assert!(resps.is_empty(), "stores get no response");
        let stats = p.backend().dram_stats().class(crate::types::TrafficClass::Data);
        assert_eq!(stats.reads, 0, "write-validate must not fetch");
        assert_eq!(stats.writes, 0, "no eviction yet, data still cached dirty");
        // A read of the stored line hits.
        let r = run(&mut p, vec![load(2, 0x100)], 200);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let c = cfg();
        let mut p = partition();
        // Fill one L2 set with dirty lines until eviction: bank 0 lines
        // stride by interleave * partitions * banks... simply store to many
        // lines mapping to bank 0 and count writes eventually.
        let lines = (c.l2_bytes_per_bank / 128) * 4; // 4x overcommit
        let mut reqs = Vec::new();
        for i in 0..lines {
            // partition-0, bank-0 addresses: chunk index multiple of
            // partitions*banks when interleave=256 (2 lines per chunk).
            let chunk = i * c.num_partitions as u64 * 2;
            let addr = chunk * c.interleave_bytes;
            reqs.push(store(i, addr));
        }
        let n = reqs.len() as u64;
        let _ = run(&mut p, reqs, n * 40 + 2000);
        let stats = p.backend().dram_stats().class(crate::types::TrafficClass::Data);
        assert!(stats.writes > 0, "dirty evictions must write back");
    }

    #[test]
    fn responses_preserve_request_identity() {
        let mut p = partition();
        let mut req = load(77, 0x2000);
        req.sectors = SectorMask(0b0011);
        let resps = run(&mut p, vec![req.clone()], 500);
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].id, 77);
        assert_eq!(resps[0].sectors, SectorMask(0b0011));
        assert_eq!(resps[0].warp, req.warp);
    }

    #[test]
    fn sectored_l2_splits_backend_reads_per_sector() {
        let mut p = partition();
        let mut req = load(1, 0x0);
        req.sectors = FULL_SECTOR_MASK;
        let resps = run(&mut p, vec![req], 500);
        assert_eq!(resps.len(), 1);
        // One L2 line miss with 4 sectors -> four 32 B DRAM reads (SS V-B).
        let stats = p.backend().dram_stats().class(crate::types::TrafficClass::Data);
        assert_eq!(stats.reads, 4);
        assert_eq!(stats.bytes_read, 128);
    }

    #[test]
    fn dirty_sectors_survive_read_fill_eviction() {
        // Store a line (dirty), then stream loads through the same set
        // until it is evicted; the writeback must reach DRAM.
        let c = cfg();
        let mut p = partition();
        let _ = run(&mut p, vec![store(0, 0x0)], 200);
        let sets = c.l2_bytes_per_bank / 128 / c.l2_assoc as u64;
        // Lines mapping to the same bank-0 set: stride = sets * line *
        // partitions * banks in chunk terms; generate enough conflicting
        // loads to force the dirty line out.
        let mut reqs = Vec::new();
        for i in 1..=(c.l2_assoc as u64 + 4) {
            let chunk = i * sets * c.num_partitions as u64 * 2;
            reqs.push(load(i, chunk * c.interleave_bytes));
        }
        let n = reqs.len() as u64;
        let _ = run(&mut p, reqs, n * 200 + 3000);
        let stats = p.backend().dram_stats().class(crate::types::TrafficClass::Data);
        assert!(stats.writes > 0, "evicted dirty line must be written back: {stats:?}");
    }

    #[test]
    fn secondary_miss_merges() {
        let mut p = partition();
        // Two loads to the same line, same sector: one DRAM read.
        let resps = run(&mut p, vec![load(1, 0x0), load(2, 0x0)], 500);
        assert_eq!(resps.len(), 2);
        assert_eq!(p.backend().dram_stats().class(crate::types::TrafficClass::Data).reads, 1);
        assert_eq!(p.l2_mshr_stats().secondary, 1);
    }

    #[test]
    fn sector_misses_to_same_line_fetch_separately() {
        let mut p = partition();
        let mut a = load(1, 0x0);
        a.sectors = SectorMask::single(0);
        let mut b = load(2, 0x0);
        b.sectors = SectorMask::single(1);
        let resps = run(&mut p, vec![a, b], 500);
        assert_eq!(resps.len(), 2);
        // Second sector is a new-sector merge: an extra 32 B DRAM read.
        assert_eq!(p.backend().dram_stats().class(crate::types::TrafficClass::Data).reads, 2);
        assert_eq!(p.l2_mshr_stats().primary, 1);
        assert_eq!(p.l2_mshr_stats().secondary, 1);
    }
}
