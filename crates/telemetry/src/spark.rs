//! Terminal sparklines: a compact per-metric summary appended to the
//! simulation report.
//!
//! Each series renders to one line — name, a unicode sparkline of its
//! shape, and min/mean/max (gauges) or total (deltas). Per-partition
//! series (names starting with `part`) are skipped: with 32 partitions
//! they would drown the summary, and their aggregate twins carry the
//! story.

use crate::series::SeriesKind;
use crate::sink::TelemetrySnapshot;

const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Maximum glyphs per line; longer series are bucketed down.
const WIDTH: usize = 40;

/// Renders `values` as a sparkline string, downsampling to at most
/// [`WIDTH`] glyphs by averaging buckets. Empty input renders empty.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let bucketed = bucket(values, WIDTH);
    let (min, max) =
        bucketed.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(*v), hi.max(*v)));
    let span = max - min;
    bucketed
        .iter()
        .map(|v| {
            let idx = if span > 0.0 {
                (((v - min) / span) * (GLYPHS.len() - 1) as f64).round() as usize
            } else {
                0
            };
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}

fn bucket(values: &[f64], width: usize) -> Vec<f64> {
    if values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|i| {
            let lo = i * values.len() / width;
            let hi = (((i + 1) * values.len()) / width).max(lo + 1);
            let slice = &values[lo..hi];
            slice.iter().sum::<f64>() / slice.len() as f64
        })
        .collect()
}

/// Renders the whole snapshot as a multi-line terminal summary.
///
/// One line per non-`part`-prefixed series; a trailing line counts
/// events (and drops, if any). Returns the empty string for an empty
/// snapshot so callers can append it unconditionally.
pub fn summary(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for (name, series) in &snap.series {
        if name.starts_with("part") || series.points.is_empty() {
            continue;
        }
        let values = series.values();
        let line = sparkline(&values);
        let stat = match series.kind {
            SeriesKind::Delta => format!("total {}", human(series.total())),
            SeriesKind::Gauge => {
                let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                format!("min {} mean {} max {}", human(min), human(mean), human(max))
            }
        };
        out.push_str(&format!("{name:<22} {line}  {stat}\n"));
    }
    if !snap.events.is_empty() || snap.dropped_events > 0 {
        out.push_str(&format!("events: {} recorded", snap.events.len()));
        if snap.dropped_events > 0 {
            out.push_str(&format!(", {} dropped", snap.dropped_events));
        }
        out.push('\n');
    }
    out
}

/// Formats a value with a metric suffix (`12.3k`, `4.56M`) so sparkline
/// stat columns stay narrow.
fn human(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if (v.fract()).abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Telemetry, TelemetryConfig};

    #[test]
    fn sparkline_spans_glyph_range() {
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(line.chars().count(), 8);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
    }

    #[test]
    fn sparkline_flat_and_empty() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert!(flat.chars().all(|c| c == '▁'), "flat series renders lowest glyph");
    }

    #[test]
    fn long_series_bucketed_to_width() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        assert_eq!(sparkline(&values).chars().count(), WIDTH);
    }

    #[test]
    fn summary_skips_per_partition_series() {
        let t = Telemetry::enabled(TelemetryConfig::default());
        t.record_gauge("l2.hit_rate", 0, 0.5);
        t.record_gauge("part3.input_q", 0, 4.0);
        let s = summary(&t.snapshot().expect("enabled"));
        assert!(s.contains("l2.hit_rate"));
        assert!(!s.contains("part3"), "per-partition series excluded:\n{s}");
    }

    #[test]
    fn summary_counts_dropped_events() {
        let cfg = TelemetryConfig { event_capacity: 1, ..TelemetryConfig::default() };
        let t = Telemetry::enabled(cfg);
        for i in 0..3 {
            t.record_event(crate::TelemetryEvent {
                cycle: i,
                kind: crate::EventKind::PhaseBegin { name: "p".into() },
            });
        }
        let s = summary(&t.snapshot().expect("enabled"));
        assert!(s.contains("1 recorded"));
        assert!(s.contains("2 dropped"));
    }

    #[test]
    fn human_suffixes() {
        assert_eq!(human(4096.0), "4.1k");
        assert_eq!(human(2_500_000.0), "2.50M");
        assert_eq!(human(3.0), "3");
        assert_eq!(human(0.125), "0.125");
    }
}
