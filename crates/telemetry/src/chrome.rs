//! Chrome `trace_event` export.
//!
//! Renders a [`TelemetrySnapshot`] as the JSON object format understood
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! `{"traceEvents": [...]}` where each sampled series becomes a stream
//! of counter events (`ph:"C"`), phase events become duration pairs
//! (`ph:"B"`/`"E"`), and everything else becomes global instants
//! (`ph:"i"`, `s:"g"`). Timestamps (`ts`) are simulation cycles — the
//! viewer labels them microseconds, which is harmless: relative spacing
//! is what matters.
//!
//! The workspace has no JSON dependency by design, so emission is
//! hand-rolled and [`validate_json`] provides a minimal recursive-descent
//! checker the CLI and CI use to prove the emitted trace parses.

use crate::event::EventKind;
use crate::sink::TelemetrySnapshot;

/// Renders the snapshot as Chrome `trace_event` JSON.
pub fn chrome_trace(snap: &TelemetrySnapshot) -> String {
    let mut events: Vec<String> = Vec::new();
    // Counter events: one per sample. pid/tid 0 keeps every counter in
    // one process group; the counter name is the metric name.
    for (name, series) in &snap.series {
        for (cycle, value) in &series.points {
            events.push(format!(
                r#"{{"name":{},"ph":"C","ts":{},"pid":0,"tid":0,"args":{{"value":{}}}}}"#,
                json_string(name),
                cycle,
                json_number(*value)
            ));
        }
    }
    for event in &snap.events {
        let ts = event.cycle;
        match &event.kind {
            EventKind::PhaseBegin { name } => {
                events
                    .push(format!(r#"{{"name":{},"ph":"B","ts":{ts},"pid":0,"tid":0}}"#, json_string(name)));
            }
            EventKind::PhaseEnd { name } => {
                events
                    .push(format!(r#"{{"name":{},"ph":"E","ts":{ts},"pid":0,"tid":0}}"#, json_string(name)));
            }
            EventKind::Stall { detail } => {
                events.push(format!(
                    r#"{{"name":"stall","ph":"i","ts":{ts},"pid":0,"tid":0,"s":"g","args":{{"detail":{}}}}}"#,
                    json_string(detail)
                ));
            }
            EventKind::Fault { partition, class, kind, detected } => {
                let detected = match detected {
                    None => "null".to_string(),
                    Some(d) => d.to_string(),
                };
                events.push(format!(
                    r#"{{"name":"fault","ph":"i","ts":{ts},"pid":0,"tid":0,"s":"g","args":{{"partition":{partition},"class":{},"kind":{},"detected":{detected}}}}}"#,
                    json_string(class),
                    json_string(kind)
                ));
            }
            EventKind::ThrashBegin { partition, class } => {
                events.push(format!(
                    r#"{{"name":{},"ph":"B","ts":{ts},"pid":0,"tid":{}}}"#,
                    json_string(&format!("thrash:{class}")),
                    partition + 1
                ));
            }
            EventKind::ThrashEnd { partition, class } => {
                events.push(format!(
                    r#"{{"name":{},"ph":"E","ts":{ts},"pid":0,"tid":{}}}"#,
                    json_string(&format!("thrash:{class}")),
                    partition + 1
                ));
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&events.join(","));
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Escapes and quotes a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values render as 0.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A JSON syntax error found by [`validate_json`]: what went wrong and
/// the byte offset of the first offending position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonSyntaxError {
    /// Byte offset into the validated string.
    pub offset: usize,
    /// What the validator expected or found.
    pub message: &'static str,
}

impl JsonSyntaxError {
    fn at(offset: usize, message: &'static str) -> Self {
        Self { offset, message }
    }
}

impl core::fmt::Display for JsonSyntaxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "json syntax error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonSyntaxError {}

/// Maximum container nesting [`validate_json`] accepts. The validator
/// is recursive descent, so unbounded nesting would turn attacker-
/// supplied input (`[[[[…`) into a stack overflow — an abort, not a
/// typed error. Real traces nest 3–4 levels deep.
const MAX_JSON_DEPTH: u32 = 256;

/// Minimal JSON well-formedness check (recursive descent over the full
/// grammar). Returns `Err` with a byte offset and message on the first
/// syntax error. This is a validator, not a parser — it builds nothing.
/// Containers nested deeper than [`MAX_JSON_DEPTH`] levels are rejected
/// with a typed error to keep the recursion stack-safe on arbitrary
/// input.
pub fn validate_json(input: &str) -> Result<(), JsonSyntaxError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, MAX_JSON_DEPTH)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonSyntaxError::at(pos, "trailing data after top-level value"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize, depth: u32) -> Result<(), JsonSyntaxError> {
    match b.get(*pos) {
        Some(b'{' | b'[') if depth == 0 => Err(JsonSyntaxError::at(*pos, "nesting too deep")),
        Some(b'{') => object(b, pos, depth - 1),
        Some(b'[') => array(b, pos, depth - 1),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(_) => Err(JsonSyntaxError::at(*pos, "unexpected byte starting a value")),
        None => Err(JsonSyntaxError::at(b.len(), "unexpected end of input")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), JsonSyntaxError> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonSyntaxError::at(*pos, "bad literal"))
    }
}

fn object(b: &[u8], pos: &mut usize, depth: u32) -> Result<(), JsonSyntaxError> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(JsonSyntaxError::at(*pos, "expected object key"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(JsonSyntaxError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos, depth)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(JsonSyntaxError::at(*pos, "expected ',' or '}'")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize, depth: u32) -> Result<(), JsonSyntaxError> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos, depth)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(JsonSyntaxError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), JsonSyntaxError> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(JsonSyntaxError::at(*pos, "bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(JsonSyntaxError::at(*pos, "bad escape")),
                }
            }
            _ => *pos += 1,
        }
    }
    Err(JsonSyntaxError::at(b.len(), "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), JsonSyntaxError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(JsonSyntaxError::at(start, "expected digits"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(JsonSyntaxError::at(*pos, "expected fraction digits"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(JsonSyntaxError::at(*pos, "expected exponent digits"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryEvent;
    use crate::sink::{Telemetry, TelemetryConfig};

    fn sample_snapshot() -> TelemetrySnapshot {
        let t = Telemetry::enabled(TelemetryConfig::default());
        t.record_delta("dram.ctr_bytes", 512, 96.0);
        t.record_gauge("l2.hit_rate", 512, 0.875);
        t.record_event(TelemetryEvent { cycle: 0, kind: EventKind::PhaseBegin { name: "run".into() } });
        t.record_event(TelemetryEvent {
            cycle: 300,
            kind: EventKind::Fault { partition: 7, class: "ctr", kind: "BitFlip", detected: Some(true) },
        });
        t.record_event(TelemetryEvent {
            cycle: 400,
            kind: EventKind::ThrashBegin { partition: 2, class: "bmt" },
        });
        t.record_event(TelemetryEvent {
            cycle: 600,
            kind: EventKind::ThrashEnd { partition: 2, class: "bmt" },
        });
        t.record_event(TelemetryEvent {
            cycle: 900,
            kind: EventKind::Stall { detail: "no progress".into() },
        });
        t.record_event(TelemetryEvent { cycle: 1000, kind: EventKind::PhaseEnd { name: "run".into() } });
        t.snapshot().expect("enabled")
    }

    #[test]
    fn trace_is_valid_json_and_nonempty() {
        let trace = chrome_trace(&sample_snapshot());
        validate_json(&trace).expect("emitted trace must parse");
        assert!(trace.contains(r#""traceEvents""#));
        assert!(trace.contains(r#""ph":"C""#), "counter events present");
        assert!(trace.contains(r#""ph":"B""#), "span begin present");
        assert!(trace.contains(r#""ph":"i""#), "instant present");
        assert!(trace.contains("thrash:bmt"));
    }

    #[test]
    fn empty_snapshot_still_valid() {
        let t = Telemetry::enabled(TelemetryConfig::default());
        let trace = chrome_trace(&t.snapshot().expect("enabled"));
        validate_json(&trace).expect("empty trace parses");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        let t = Telemetry::enabled(TelemetryConfig::default());
        t.record_event(TelemetryEvent {
            cycle: 1,
            kind: EventKind::Stall { detail: "line1\nline2 \"quoted\"".into() },
        });
        let trace = chrome_trace(&t.snapshot().expect("enabled"));
        validate_json(&trace).expect("escaped trace parses");
    }

    #[test]
    fn non_finite_numbers_render_as_zero() {
        assert_eq!(json_number(f64::NAN), "0");
        assert_eq!(json_number(f64::INFINITY), "0");
        assert_eq!(json_number(1.5), "1.5");
    }

    #[test]
    fn validator_accepts_json_grammar() {
        for ok in ["null", "true", "[1,2.5,-3e4,\"s\"]", r#"{"a":{"b":[]},"c":"é"}"#, "  [ ]  "] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\"}", "01x", "\"unterminated", "{} extra", "[1 2]"] {
            assert!(validate_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn validator_bounds_nesting_depth() {
        // Found by the parser fuzzer: unbounded recursion let
        // `[[[[…` overflow the stack instead of returning an error.
        let deep_ok = "[".repeat(200) + &"]".repeat(200);
        validate_json(&deep_ok).expect("200 levels is within the bound");
        for monster in [
            "[".repeat(100_000) + &"]".repeat(100_000),
            (r#"{"a":"#.repeat(100_000)) + "1" + &"}".repeat(100_000),
        ] {
            let err = validate_json(&monster).expect_err("bounded");
            assert_eq!(err.message, "nesting too deep");
        }
    }
}
