//! Structured events: typed spans and instants recorded alongside the
//! sampled series.
//!
//! Events capture the things a sampled gauge cannot: *when* the warmup
//! window ended, *which* fault was injected at cycle N, *how long* a
//! metadata-cache thrash episode lasted. Spans come in begin/end pairs
//! ([`EventKind::PhaseBegin`]/[`EventKind::PhaseEnd`],
//! [`EventKind::ThrashBegin`]/[`EventKind::ThrashEnd`]); the rest are
//! instants.

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Simulation cycle at which the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A named execution phase opened (e.g. `warmup`, `run`).
    PhaseBegin {
        /// Phase name.
        name: String,
    },
    /// The matching phase closed.
    PhaseEnd {
        /// Phase name.
        name: String,
    },
    /// The forward-progress watchdog stopped the run.
    Stall {
        /// The stall diagnostic, pre-rendered.
        detail: String,
    },
    /// A fault was injected (at DRAM retire) or classified (by a
    /// backend's integrity machinery).
    Fault {
        /// Partition the fault occurred in.
        partition: u32,
        /// Traffic-class label (`data`, `ctr`, `mac`, `bmt`).
        class: &'static str,
        /// Fault-kind label (`BitFlip`, `Drop`, `Delay`, ...). Static so
        /// recording a fault never allocates (faults can occur on the
        /// per-cycle completion path).
        kind: &'static str,
        /// `None` at injection time; `Some(detected)` once a backend
        /// classified the corruption.
        detected: Option<bool>,
    },
    /// A metadata cache entered a thrash episode (hysteresis rule, see
    /// [`ThrashDetector`](crate::ThrashDetector)).
    ThrashBegin {
        /// Partition whose metadata cache is thrashing.
        partition: u32,
        /// Metadata class label (`ctr`, `mac`, `bmt`).
        class: &'static str,
    },
    /// The thrash episode ended.
    ThrashEnd {
        /// Partition whose metadata cache recovered.
        partition: u32,
        /// Metadata class label.
        class: &'static str,
    },
}

impl EventKind {
    /// Short label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::PhaseBegin { .. } => "phase_begin",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::Stall { .. } => "stall",
            EventKind::Fault { .. } => "fault",
            EventKind::ThrashBegin { .. } => "thrash_begin",
            EventKind::ThrashEnd { .. } => "thrash_end",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_variants() {
        let kinds = [
            EventKind::PhaseBegin { name: "x".into() },
            EventKind::PhaseEnd { name: "x".into() },
            EventKind::Stall { detail: "d".into() },
            EventKind::Fault { partition: 0, class: "data", kind: "BitFlip", detected: None },
            EventKind::ThrashBegin { partition: 1, class: "ctr" },
            EventKind::ThrashEnd { partition: 1, class: "ctr" },
        ];
        let labels: Vec<&str> = kinds.iter().map(EventKind::label).collect();
        let mut unique = labels.clone();
        unique.dedup();
        assert_eq!(labels.len(), unique.len(), "labels are distinct");
    }
}
