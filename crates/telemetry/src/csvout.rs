//! CSV export: long-format per-metric time series.
//!
//! One row per sample, `metric,cycle,value`, metrics in sorted order —
//! the shape pandas/gnuplot pivot trivially. Values render with enough
//! precision to round-trip `f64` aggregates.

use crate::sink::TelemetrySnapshot;

/// Renders every series in the snapshot as long-format CSV with a
/// `metric,cycle,value` header row.
pub fn to_csv(snap: &TelemetrySnapshot) -> String {
    let mut out = String::from("metric,cycle,value\n");
    for (name, series) in &snap.series {
        for (cycle, value) in &series.points {
            // Metric names are internal identifiers (no commas/quotes),
            // so no CSV escaping is needed.
            out.push_str(&format!("{name},{cycle},{value}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Telemetry, TelemetryConfig};

    #[test]
    fn long_format_rows_in_metric_order() {
        let t = Telemetry::enabled(TelemetryConfig::default());
        t.record_delta("dram.data_bytes", 512, 128.0);
        t.record_delta("dram.data_bytes", 1024, 256.0);
        t.record_gauge("active_warps", 512, 32.0);
        let csv = to_csv(&t.snapshot().expect("enabled"));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines,
            vec![
                "metric,cycle,value",
                "active_warps,512,32",
                "dram.data_bytes,512,128",
                "dram.data_bytes,1024,256",
            ]
        );
    }

    #[test]
    fn empty_snapshot_is_header_only() {
        let t = Telemetry::enabled(TelemetryConfig::default());
        let csv = to_csv(&t.snapshot().expect("enabled"));
        assert_eq!(csv, "metric,cycle,value\n");
    }
}
