//! Fixed-capacity time series that decimate instead of dropping.
//!
//! A naive ring buffer forgets the oldest samples once full, so a series
//! recorded over a long run would only cover its tail. [`RingSeries`]
//! instead halves its resolution when full by merging adjacent sample
//! pairs — the series always spans the whole run, at whatever granularity
//! the capacity affords. The merge rule depends on the series kind:
//! per-window deltas merge by **sum** (so the series total still equals
//! the run aggregate — the invariant the end-to-end reconciliation test
//! pins), gauges merge by **mean**.

/// How successive samples combine when the ring decimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// An instantaneous level (queue depth, hit rate, occupancy).
    /// Adjacent samples merge by arithmetic mean.
    Gauge,
    /// An amount accumulated since the previous sample (bytes moved,
    /// requests retired). Adjacent samples merge by sum, preserving the
    /// series total exactly.
    Delta,
}

/// One sample: the cycle the sampling window *ended* at, and the value.
pub type Sample = (u64, f64);

/// A bounded time series with sum/mean-preserving decimation.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSeries {
    kind: SeriesKind,
    capacity: usize,
    points: Vec<Sample>,
}

impl RingSeries {
    /// Creates an empty series holding at most `capacity` samples
    /// (rounded up to an even number, minimum 2, so pair-merging always
    /// frees space).
    pub fn new(kind: SeriesKind, capacity: usize) -> Self {
        let capacity = capacity.max(2).next_multiple_of(2);
        Self { kind, capacity, points: Vec::new() }
    }

    /// The merge rule in force.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// Appends a sample taken at `cycle`, decimating first if full.
    pub fn push(&mut self, cycle: u64, value: f64) {
        if self.points.len() >= self.capacity {
            self.decimate();
        }
        self.points.push((cycle, value));
    }

    /// Merges adjacent pairs in place, halving the occupancy. A trailing
    /// odd sample is kept as-is. The merged sample carries the *end*
    /// cycle of the pair, so the timeline stays monotonic. Runs inside
    /// `push` on the recording path, so it reuses the buffer instead of
    /// collecting into a fresh one.
    fn decimate(&mut self) {
        let n = self.points.len();
        let mut w = 0;
        let mut r = 0;
        while r + 1 < n {
            let (_, v1) = self.points[r];
            let (c2, v2) = self.points[r + 1];
            let v = match self.kind {
                SeriesKind::Delta => v1 + v2,
                SeriesKind::Gauge => (v1 + v2) / 2.0,
            };
            self.points[w] = (c2, v);
            w += 1;
            r += 2;
        }
        if r < n {
            self.points[w] = self.points[r];
            w += 1;
        }
        self.points.truncate(w);
    }

    /// The samples, oldest first.
    pub fn points(&self) -> &[Sample] {
        &self.points
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sum of all sample values. For a [`SeriesKind::Delta`] series this
    /// equals the total accumulated over the run, regardless of how many
    /// decimation rounds occurred.
    pub fn total(&self) -> f64 {
        self.points.iter().map(|(_, v)| v).sum()
    }

    /// Discards all samples (capacity and kind preserved).
    pub fn clear(&mut self) {
        self.points.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_within_capacity() {
        let mut s = RingSeries::new(SeriesKind::Gauge, 8);
        for i in 0..1000u64 {
            s.push(i, i as f64);
            assert!(s.len() <= 8, "len {} exceeded capacity", s.len());
        }
        assert!(!s.is_empty());
    }

    #[test]
    fn delta_decimation_preserves_total() {
        let mut s = RingSeries::new(SeriesKind::Delta, 16);
        let mut expected = 0.0;
        for i in 0..10_000u64 {
            let v = (i % 37) as f64;
            expected += v;
            s.push(i, v);
        }
        assert!((s.total() - expected).abs() < 1e-6, "total {} vs {}", s.total(), expected);
        assert!(s.len() <= 16);
    }

    #[test]
    fn gauge_decimation_averages() {
        let mut s = RingSeries::new(SeriesKind::Gauge, 4);
        for i in 0..8u64 {
            s.push(i, 10.0);
        }
        // A constant gauge survives any number of mean-merges unchanged.
        assert!(s.points().iter().all(|(_, v)| (*v - 10.0).abs() < 1e-12));
    }

    #[test]
    fn timeline_stays_monotonic_across_decimation() {
        let mut s = RingSeries::new(SeriesKind::Delta, 8);
        for i in 0..500u64 {
            s.push(i * 512, 1.0);
        }
        let cycles: Vec<u64> = s.points().iter().map(|(c, _)| *c).collect();
        let mut sorted = cycles.clone();
        sorted.sort_unstable();
        assert_eq!(cycles, sorted, "cycles must stay ordered");
        assert_eq!(*cycles.last().expect("non-empty"), 499 * 512, "last sample kept");
    }

    #[test]
    fn tiny_capacities_are_rounded_up() {
        let mut s = RingSeries::new(SeriesKind::Delta, 0);
        s.push(0, 1.0);
        s.push(1, 2.0);
        s.push(2, 4.0);
        assert!((s.total() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn odd_occupancy_keeps_trailing_sample() {
        let mut s = RingSeries::new(SeriesKind::Delta, 4);
        for i in 0..5u64 {
            s.push(i, 1.0);
        }
        // Capacity 4, fifth push decimates [1,1,1,1] -> [2,2] then appends.
        assert_eq!(s.len(), 3);
        assert!((s.total() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clear_empties_but_keeps_kind() {
        let mut s = RingSeries::new(SeriesKind::Gauge, 4);
        s.push(0, 1.0);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.kind(), SeriesKind::Gauge);
    }
}
