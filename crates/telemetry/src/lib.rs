//! **secmem-telemetry** — time-resolved observability for the GPU
//! secure-memory simulation stack.
//!
//! The simulator's end-of-run [`SimReport`] aggregates hide *when* things
//! happen: metadata traffic contending for DRAM bandwidth, metadata-cache
//! thrash episodes, watchdog stalls. This crate provides the three layers
//! any production observability stack has, sized for a cycle-driven
//! simulator:
//!
//! 1. **Sampling** — a cheaply clonable [`Telemetry`] handle that
//!    components record gauges and per-window deltas into. Series live in
//!    fixed-capacity [`RingSeries`] ring buffers that *decimate* (merge
//!    adjacent samples) instead of dropping history, so a series always
//!    covers the whole run and per-window deltas still sum to the run
//!    aggregate. A disabled handle is a single `Option` check — no
//!    allocation, no locking.
//! 2. **Events** — typed [`TelemetryEvent`] spans and instants (kernel
//!    phases, watchdog stalls, fault injections/detections, metadata-cache
//!    thrash episodes found by the [`ThrashDetector`] hysteresis rule) in
//!    a bounded buffer.
//! 3. **Exporters** — Chrome `trace_event` JSON ([`chrome`]), per-metric
//!    CSV time series ([`csvout`]) and terminal sparklines ([`spark`]).
//!
//! The crate is deliberately generic — metrics are string-named, events
//! carry plain data — so every layer of the stack (`gpusim`, `core`,
//! `bench`) can depend on it without cycles.
//!
//! ```
//! use secmem_telemetry::{Telemetry, TelemetryConfig};
//!
//! let t = Telemetry::enabled(TelemetryConfig::default());
//! t.record_delta("dram.data_bytes", 512, 4096.0);
//! t.record_gauge("active_warps", 512, 64.0);
//! let snap = t.snapshot().expect("enabled");
//! assert_eq!(snap.series.len(), 2);
//!
//! // Disabled handles are free: one pointer, no-op recording.
//! let off = Telemetry::disabled();
//! off.record_gauge("active_warps", 0, 1.0);
//! assert!(off.snapshot().is_none());
//! ```
//!
//! [`SimReport`]: https://docs.rs/secmem-gpusim

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Telemetry must never take down a simulation: no unwraps outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod chrome;
pub mod csvout;
pub mod event;
pub mod series;
pub mod sink;
pub mod spark;
pub mod thrash;

pub use event::{EventKind, TelemetryEvent};
pub use series::{RingSeries, SeriesKind};
pub use sink::{SeriesSnapshot, Telemetry, TelemetryConfig, TelemetrySnapshot};
pub use thrash::{ThrashDetector, ThrashTransition};
