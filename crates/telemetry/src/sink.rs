//! The [`Telemetry`] handle: the single object threaded through the
//! simulation stack.
//!
//! A handle is either *disabled* (the default — one niche-optimized
//! pointer, every record call is a single branch, no allocation ever) or
//! *enabled* (an `Arc` around a mutex-guarded store, so clones handed to
//! the simulator, partitions, backends and DRAM channels all feed one
//! collection). `Arc`/`Mutex` rather than `Rc`/`RefCell` keeps the
//! simulator `Send`, which the bench crate's threaded runner requires.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::event::TelemetryEvent;
use crate::series::{RingSeries, SeriesKind};

/// Configuration for an enabled [`Telemetry`] handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Cycles between periodic samples (the simulator's sampling engine
    /// honors this; recorders may sample on their own cadence).
    pub sample_interval: u64,
    /// Maximum samples held per series before decimation halves the
    /// resolution.
    pub series_capacity: usize,
    /// Maximum buffered events; further events are counted as dropped.
    pub event_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self { sample_interval: 512, series_capacity: 1024, event_capacity: 4096 }
    }
}

#[derive(Debug, Default)]
struct State {
    series: BTreeMap<String, RingSeries>,
    events: Vec<TelemetryEvent>,
    dropped_events: u64,
}

#[derive(Debug)]
struct Inner {
    cfg: TelemetryConfig,
    state: Mutex<State>,
}

/// A cheaply clonable telemetry sink, disabled by default.
///
/// `size_of::<Telemetry>() == size_of::<usize>()`: the disabled case is
/// the `None` niche of an `Option<Arc>`, so threading a handle through
/// every component costs one word and a branch per record call.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A disabled handle: all record calls are no-ops, `snapshot` is
    /// `None`. This is `Default`.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle collecting into a fresh store.
    pub fn enabled(cfg: TelemetryConfig) -> Self {
        Self { inner: Some(Arc::new(Inner { cfg, state: Mutex::new(State::default()) })) }
    }

    /// True when this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A *staging* handle derived from this one: enabled iff `self` is,
    /// same sampling interval, but with an unbounded event buffer.
    ///
    /// The parallel simulator step hands one staging handle to each
    /// memory partition; events recorded there are drained with
    /// [`Telemetry::take_events`] by the coordinating thread every cycle
    /// and committed to the master handle in canonical partition order,
    /// so the master's event stream (and its `event_capacity` bound) is
    /// byte-identical to the serial schedule. Staging buffers are
    /// unbounded because the capacity policy must be applied exactly
    /// once, at the master.
    pub fn staging(&self) -> Telemetry {
        match &self.inner {
            None => Telemetry::disabled(),
            Some(inner) => Telemetry::enabled(TelemetryConfig { event_capacity: usize::MAX, ..inner.cfg }),
        }
    }

    /// Drains all buffered events in record order (empty when disabled).
    pub fn take_events(&self) -> Vec<TelemetryEvent> {
        let Some(inner) = &self.inner else { return Vec::new() };
        // A poisoned lock means a recording thread panicked mid-update;
        // telemetry is best-effort, so degrade to "nothing buffered"
        // instead of propagating the panic into the simulator.
        let Ok(mut state) = inner.state.lock() else { return Vec::new() };
        std::mem::take(&mut state.events)
    }

    /// The configured sampling interval (the default interval when
    /// disabled, so callers need no special case).
    pub fn sample_interval(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or_else(|| TelemetryConfig::default().sample_interval, |i| i.cfg.sample_interval)
    }

    fn record(&self, kind: SeriesKind, name: &str, cycle: u64, value: f64) {
        let Some(inner) = &self.inner else { return };
        // Rates computed over zero-width windows (a sample falling on the
        // very first cycle, or a run shorter than one interval) arrive as
        // NaN/inf; storing them would poison decimation sums and JSON
        // export, so they are dropped at the door.
        if !value.is_finite() {
            return;
        }
        let Ok(mut state) = inner.state.lock() else { return };
        match state.series.get_mut(name) {
            Some(series) => series.push(cycle, value),
            None => {
                let mut series = RingSeries::new(kind, inner.cfg.series_capacity);
                series.push(cycle, value);
                state.series.insert(name.to_string(), series);
            }
        }
    }

    /// Records an instantaneous level (queue depth, hit rate, ...).
    pub fn record_gauge(&self, name: &str, cycle: u64, value: f64) {
        self.record(SeriesKind::Gauge, name, cycle, value);
    }

    /// Records an amount accumulated since the previous sample of `name`
    /// (bytes, requests, ...). Delta series decimate by sum, so their
    /// total always reconciles with the run aggregate.
    pub fn record_delta(&self, name: &str, cycle: u64, value: f64) {
        self.record(SeriesKind::Delta, name, cycle, value);
    }

    /// Records a structured event. Bounded: once `event_capacity` events
    /// are buffered, further events only bump the dropped counter.
    ///
    /// Call sites that *construct* an event (allocating its strings)
    /// should guard on [`Telemetry::is_enabled`] first.
    pub fn record_event(&self, event: TelemetryEvent) {
        let Some(inner) = &self.inner else { return };
        // lint:allow(P1): phase-A workers record into their own staging sink (uncontended lock); the coordinator drains the stages in partition order during phase C (DESIGN.md §14)
        let Ok(mut state) = inner.state.lock() else { return };
        if state.events.len() < inner.cfg.event_capacity {
            state.events.push(event);
        } else {
            state.dropped_events += 1;
        }
    }

    /// Copies out everything recorded so far. `None` when disabled.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        let inner = self.inner.as_ref()?;
        let state = inner.state.lock().ok()?;
        Some(TelemetrySnapshot {
            sample_interval: inner.cfg.sample_interval,
            series: state
                .series
                .iter()
                .map(|(name, s)| {
                    (name.clone(), SeriesSnapshot { kind: s.kind(), points: s.points().to_vec() })
                })
                .collect(),
            events: state.events.clone(),
            dropped_events: state.dropped_events,
        })
    }

    /// Discards every recorded series (events kept). The simulator calls
    /// this when statistics are reset after warmup, so series totals keep
    /// reconciling with the measured-window aggregates.
    pub fn clear_series(&self) {
        if let Some(inner) = &self.inner {
            if let Ok(mut state) = inner.state.lock() {
                state.series.clear();
            }
        }
    }

    /// Discards all recorded series and events.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let Ok(mut state) = inner.state.lock() else { return };
            state.series.clear();
            state.events.clear();
            state.dropped_events = 0;
        }
    }
}

/// An exported copy of one series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// The merge rule the series used.
    pub kind: SeriesKind,
    /// Samples, oldest first: `(end-cycle, value)`.
    pub points: Vec<(u64, f64)>,
}

impl SeriesSnapshot {
    /// Sum of all sample values (the run total for a delta series).
    pub fn total(&self) -> f64 {
        self.points.iter().map(|(_, v)| v).sum()
    }

    /// Sample values without their cycles.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|(_, v)| *v).collect()
    }
}

/// Everything recorded by one [`Telemetry`] handle, copied out for
/// export. `BTreeMap` keeps iteration (and thus every exporter's output)
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// The configured sampling interval.
    pub sample_interval: u64,
    /// All recorded series, by metric name.
    pub series: BTreeMap<String, SeriesSnapshot>,
    /// All buffered events, in record order.
    pub events: Vec<TelemetryEvent>,
    /// Events discarded because the buffer was full.
    pub dropped_events: u64,
}

impl TelemetrySnapshot {
    /// Looks up one series.
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn disabled_handle_is_pointer_sized_and_inert() {
        assert_eq!(std::mem::size_of::<Telemetry>(), std::mem::size_of::<usize>());
        let t = Telemetry::disabled();
        t.record_gauge("g", 0, 1.0);
        t.record_delta("d", 0, 1.0);
        t.record_event(TelemetryEvent { cycle: 0, kind: EventKind::Stall { detail: "s".into() } });
        assert!(t.snapshot().is_none());
        assert!(!t.is_enabled());
        assert_eq!(t.sample_interval(), TelemetryConfig::default().sample_interval);
    }

    #[test]
    fn staging_mirrors_enablement_and_drains_in_order() {
        assert!(!Telemetry::disabled().staging().is_enabled());
        assert!(Telemetry::disabled().take_events().is_empty());

        let master = Telemetry::enabled(TelemetryConfig { event_capacity: 2, ..Default::default() });
        let stage = master.staging();
        assert!(stage.is_enabled());
        assert_eq!(stage.sample_interval(), master.sample_interval());
        // Staging buffers past the master's cap; the cap applies on commit.
        for c in 0..4u64 {
            stage.record_event(TelemetryEvent { cycle: c, kind: EventKind::Stall { detail: "s".into() } });
        }
        let drained = stage.take_events();
        assert_eq!(drained.len(), 4, "staging is unbounded");
        assert!(stage.take_events().is_empty(), "take_events drains");
        for ev in drained {
            master.record_event(ev);
        }
        let snap = master.snapshot().expect("enabled");
        assert_eq!(snap.events.len(), 2, "master enforces event_capacity");
        assert_eq!(snap.dropped_events, 2);
        assert_eq!(snap.events[0].cycle, 0);
        assert_eq!(snap.events[1].cycle, 1);
    }

    #[test]
    fn clones_share_one_store() {
        let t = Telemetry::enabled(TelemetryConfig::default());
        let u = t.clone();
        t.record_gauge("q", 10, 1.0);
        u.record_gauge("q", 20, 2.0);
        let snap = t.snapshot().expect("enabled");
        assert_eq!(snap.series("q").expect("recorded").points.len(), 2);
    }

    #[test]
    fn event_buffer_is_bounded() {
        let cfg = TelemetryConfig { event_capacity: 2, ..TelemetryConfig::default() };
        let t = Telemetry::enabled(cfg);
        for i in 0..5 {
            t.record_event(TelemetryEvent { cycle: i, kind: EventKind::PhaseBegin { name: "p".into() } });
        }
        let snap = t.snapshot().expect("enabled");
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped_events, 3);
    }

    #[test]
    fn clear_series_keeps_events() {
        let t = Telemetry::enabled(TelemetryConfig::default());
        t.record_delta("d", 0, 5.0);
        t.record_event(TelemetryEvent { cycle: 0, kind: EventKind::PhaseBegin { name: "warmup".into() } });
        t.clear_series();
        let snap = t.snapshot().expect("enabled");
        assert!(snap.series.is_empty());
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let t = Telemetry::enabled(TelemetryConfig::default());
        // A rate over a zero-width window (0/0) and a ratio against a zero
        // denominator (1/0) — both must never reach the store.
        t.record_gauge("rate", 0, f64::NAN);
        t.record_gauge("rate", 10, f64::INFINITY);
        t.record_delta("bytes", 10, f64::NEG_INFINITY);
        t.record_gauge("rate", 20, 0.5);
        let snap = t.snapshot().expect("enabled");
        let rate = snap.series("rate").expect("finite point recorded");
        assert_eq!(rate.points, vec![(20, 0.5)]);
        assert!(snap.series("bytes").is_none());
    }

    #[test]
    fn snapshot_iterates_metrics_in_sorted_order() {
        let t = Telemetry::enabled(TelemetryConfig::default());
        t.record_gauge("zeta", 0, 1.0);
        t.record_gauge("alpha", 0, 1.0);
        let snap = t.snapshot().expect("enabled");
        let names: Vec<String> = snap.series.keys().cloned().collect();
        assert_eq!(names, vec!["alpha".to_string(), "zeta".to_string()]);
    }
}
