//! Hysteresis detection of metadata-cache thrash episodes.
//!
//! A cache "thrashes" when its windowed miss rate stays high — the
//! working set no longer fits, every access streams through DRAM. A
//! single threshold would chatter around the boundary, so the detector
//! uses two: an episode opens when the miss rate *exceeds* the enter
//! threshold and closes only when it *falls below* the lower exit
//! threshold.

/// A state change reported by [`ThrashDetector::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrashTransition {
    /// The miss rate crossed the enter threshold: an episode began.
    Entered,
    /// The miss rate fell below the exit threshold: the episode ended.
    Exited,
}

/// Hysteresis rule over a windowed miss rate.
#[derive(Debug, Clone)]
pub struct ThrashDetector {
    enter_above: f64,
    exit_below: f64,
    active: bool,
}

impl Default for ThrashDetector {
    /// The thresholds used for the metadata caches: enter above 70%
    /// misses, exit below 50%.
    fn default() -> Self {
        Self::new(0.7, 0.5)
    }
}

impl ThrashDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `exit_below > enter_above` (the hysteresis band would
    /// be inverted and the detector would oscillate).
    pub fn new(enter_above: f64, exit_below: f64) -> Self {
        assert!(
            exit_below <= enter_above,
            "hysteresis band inverted: exit {exit_below} > enter {enter_above}"
        );
        Self { enter_above, exit_below, active: false }
    }

    /// True while inside an episode.
    pub fn is_thrashing(&self) -> bool {
        self.active
    }

    /// Forces the episode flag without generating a transition — used by
    /// checkpoint restore to carry an open episode across a resume so the
    /// exit event is not lost (and no spurious enter event is emitted).
    pub fn restore_active(&mut self, active: bool) {
        self.active = active;
    }

    /// Feeds one windowed miss rate; returns the transition, if any.
    pub fn update(&mut self, miss_rate: f64) -> Option<ThrashTransition> {
        if !self.active && miss_rate > self.enter_above {
            self.active = true;
            Some(ThrashTransition::Entered)
        } else if self.active && miss_rate < self.exit_below {
            self.active = false;
            Some(ThrashTransition::Exited)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enters_and_exits_with_hysteresis() {
        let mut d = ThrashDetector::new(0.7, 0.5);
        assert_eq!(d.update(0.6), None, "below enter threshold");
        assert_eq!(d.update(0.8), Some(ThrashTransition::Entered));
        assert!(d.is_thrashing());
        assert_eq!(d.update(0.6), None, "inside the hysteresis band");
        assert_eq!(d.update(0.4), Some(ThrashTransition::Exited));
        assert!(!d.is_thrashing());
    }

    #[test]
    fn no_chatter_at_a_single_boundary() {
        let mut d = ThrashDetector::new(0.7, 0.5);
        let mut transitions = 0;
        for rate in [0.71, 0.69, 0.71, 0.69, 0.71] {
            if d.update(rate).is_some() {
                transitions += 1;
            }
        }
        assert_eq!(transitions, 1, "oscillation around 0.7 must not re-trigger");
    }

    #[test]
    #[should_panic(expected = "hysteresis band inverted")]
    fn inverted_band_rejected() {
        let _ = ThrashDetector::new(0.5, 0.7);
    }
}
