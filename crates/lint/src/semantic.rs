//! Semantic lints over the workspace model: S1 snapshot-completeness,
//! P1 phase-A purity, T1 transitive hot-path. Unlike the token lints
//! these see the whole workspace at once — the call graph and the
//! struct tables — so a violation in one file can be caused by a
//! definition in another.

use crate::config::Policy;
use crate::diag::{Diagnostic, Disposition};
use crate::model::{FnId, WorkspaceModel};
use crate::parser::Site;

/// Runs all semantic lints, returning diagnostics sorted by position.
pub fn run_all(model: &WorkspaceModel, policy: &Policy) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    s1_snapshot_completeness(model, policy, &mut diags);
    p1_phase_a_purity(model, policy, &mut diags);
    t1_transitive_hot_path(model, policy, &mut diags);
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.lint).cmp(&(b.file.as_str(), b.line, b.col, b.lint))
    });
    diags
}

fn diag(lint: &'static str, name: &'static str, file: &str, site: &Site, message: String) -> Diagnostic {
    Diagnostic {
        lint,
        name,
        file: file.to_string(),
        line: site.line,
        col: site.col,
        message,
        disposition: Disposition::Active,
    }
}

/// S1: every named field of `T` must be mentioned in both the `save`
/// and `load` bodies of `impl Snapshot for T`. Enums, tuple structs and
/// unresolvable self types are skipped — the lint only has teeth where
/// the field list is knowable.
fn s1_snapshot_completeness(model: &WorkspaceModel, policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for (rel, pf) in &model.files {
        for f in &pf.fns {
            if f.is_test || (f.name != "save" && f.name != "load") {
                continue;
            }
            let Some(trait_name) = &f.trait_name else { continue };
            if !policy.snapshot_traits.iter().any(|t| t == trait_name) {
                continue;
            }
            let Some(self_ty) = &f.self_ty else { continue };
            let Some(def) = model.resolve_struct(rel, self_ty) else { continue };
            if !def.has_named_fields || def.fields.is_empty() {
                continue;
            }
            let missing: Vec<&str> = def
                .fields
                .iter()
                .map(String::as_str)
                .filter(|field| !f.body_idents.iter().any(|id| id == field))
                .collect();
            if missing.is_empty() {
                continue;
            }
            let site = Site { name: f.name.clone(), method: false, qual: None, line: f.line, col: f.col };
            diags.push(diag(
                "S1",
                "snapshot-completeness",
                rel,
                &site,
                format!(
                    "`{}::{}` never mentions field{} `{}` of `{}`; a field that skips the \
                     checkpoint frame silently breaks resume == uninterrupted (add it or justify \
                     with lint:allow(S1))",
                    self_ty,
                    f.name,
                    if missing.len() == 1 { "" } else { "s" },
                    missing.join("`, `"),
                    self_ty
                ),
            ));
        }
    }
}

/// P1: no function transitively reachable from a worker-pool entity
/// step may touch shared mutable state or call a coordinator-owned
/// staging commit. The roots are the call names inside `for_each` /
/// `for_each_grouped` argument groups (the entity-step closures).
fn p1_phase_a_purity(model: &WorkspaceModel, policy: &Policy, diags: &mut Vec<Diagnostic>) {
    let mut roots: Vec<FnId> = Vec::new();
    for (rel, pf) in &model.files {
        for site in &pf.phase_roots {
            roots.extend(model.resolve_name(rel, &site.name));
        }
    }
    roots.sort_unstable();
    roots.dedup();
    if roots.is_empty() {
        return;
    }
    let (reachable, parent) = model.reachable(&roots);
    for (id, node) in model.fns.iter().enumerate() {
        if !reachable[id] {
            continue;
        }
        let path = model.witness_path(&parent, id).join(" → ");
        for mark in &node.def.sync_marks {
            diags.push(diag(
                "P1",
                "phase-a-purity",
                &node.file,
                mark,
                format!(
                    "`{}` in `{}`, reachable from a phase-A entity step ({path}); workers must \
                     touch only their own entity's state (DESIGN.md §14)",
                    mark.name, node.def.name
                ),
            ));
        }
        for rc in &model.calls[id] {
            if policy.p1_forbidden_calls.iter().any(|f| f == &rc.site.name) {
                diags.push(diag(
                    "P1",
                    "phase-a-purity",
                    &node.file,
                    &rc.site,
                    format!(
                        "`{}` called from phase-A-reachable `{}` ({path}); staging queues are \
                         committed by the coordinator in phase B/C, never from a worker",
                        rc.site.name, node.def.name
                    ),
                ));
            }
        }
    }
}

/// Why a function may panic / allocate: a direct site in its body, or a
/// callee that may.
#[derive(Clone, Copy)]
enum Why {
    Direct(usize), // index into the fn's panics/allocs list
    Via(FnId),
}

/// Fixpoint-propagates a per-function "may" property backwards over the
/// call graph. `direct` gives the in-jurisdiction direct sites per fn.
fn propagate(model: &WorkspaceModel, direct: &[Option<usize>]) -> Vec<Option<Why>> {
    let n = model.fns.len();
    let mut why: Vec<Option<Why>> = direct.iter().map(|d| d.map(Why::Direct)).collect();
    // Reverse edges once; worklist from the directly-flagged fns.
    let mut rev: Vec<Vec<FnId>> = vec![Vec::new(); n];
    for (caller, calls) in model.calls.iter().enumerate() {
        for rc in calls {
            for &t in &rc.targets {
                rev[t].push(caller);
            }
        }
    }
    let mut queue: Vec<FnId> = (0..n).filter(|&i| why[i].is_some()).collect();
    let mut qi = 0;
    while qi < queue.len() {
        let f = queue[qi];
        qi += 1;
        for &caller in &rev[f] {
            if why[caller].is_none() {
                why[caller] = Some(Why::Via(f));
                queue.push(caller);
            }
        }
    }
    why
}

/// Renders the witness chain from `start` down to the direct site.
fn chain(
    model: &WorkspaceModel,
    why: &[Option<Why>],
    sites: &dyn Fn(FnId) -> Vec<Site>,
    start: FnId,
) -> String {
    let mut out = String::new();
    let mut cur = start;
    for _ in 0..64 {
        match why[cur] {
            Some(Why::Direct(i)) => {
                let node = &model.fns[cur];
                let list = sites(cur);
                let site = &list[i];
                out.push_str(&format!("`{}` ({}:{}: {})", node.def.name, node.file, site.line, site.name));
                return out;
            }
            Some(Why::Via(next)) => {
                out.push_str(&format!("`{}` → ", model.fns[cur].def.name));
                cur = next;
            }
            None => break,
        }
    }
    out
}

/// T1: extends H1 (no panic) and H2 (no alloc) transitively. A hot-path
/// function calling out of the H1/H2-audited modules into code that can
/// panic or allocate is flagged at the call site. Direct sites inside
/// the audited jurisdiction are not re-reported — H1/H2 own those.
fn t1_transitive_hot_path(model: &WorkspaceModel, policy: &Policy, diags: &mut Vec<Diagnostic>) {
    let in_hot_file = |id: FnId| policy.hot_files.iter().any(|h| h == &model.fns[id].file);
    let scoped = |id: FnId| {
        let node = &model.fns[id];
        in_hot_file(id) && policy.hot_fns.iter().any(|h| h == &node.def.name)
    };
    let n = model.fns.len();
    // H1's jurisdiction is whole hot files; H2's is hot fns in hot files.
    let direct_panic: Vec<Option<usize>> = (0..n)
        .map(|id| if !in_hot_file(id) && !model.fns[id].def.panics.is_empty() { Some(0) } else { None })
        .collect();
    let direct_alloc: Vec<Option<usize>> = (0..n)
        .map(|id| if !scoped(id) && !model.fns[id].def.allocs.is_empty() { Some(0) } else { None })
        .collect();
    let may_panic = propagate(model, &direct_panic);
    let may_alloc = propagate(model, &direct_alloc);
    let panic_sites = |id: FnId| model.fns[id].def.panics.clone();
    let alloc_sites = |id: FnId| model.fns[id].def.allocs.clone();

    for id in 0..n {
        if !scoped(id) {
            continue;
        }
        let node = &model.fns[id];
        for rc in &model.calls[id] {
            // The closest T1-scoped fn to the violation reports it;
            // calls into other scoped fns are their problem.
            let panic_target =
                rc.targets.iter().copied().find(|&t| t != id && !scoped(t) && may_panic[t].is_some());
            if let Some(t) = panic_target {
                diags.push(diag(
                    "T1",
                    "transitive-hot-path",
                    &node.file,
                    &rc.site,
                    format!(
                        "hot fn `{}` calls `{}`, which can panic: {}",
                        node.def.name,
                        rc.site.name,
                        chain(model, &may_panic, &panic_sites, t)
                    ),
                ));
            }
            let alloc_target =
                rc.targets.iter().copied().find(|&t| t != id && !scoped(t) && may_alloc[t].is_some());
            if let Some(t) = alloc_target {
                diags.push(diag(
                    "T1",
                    "transitive-hot-path",
                    &node.file,
                    &rc.site,
                    format!(
                        "hot fn `{}` calls `{}`, which allocates: {}",
                        node.def.name,
                        rc.site.name,
                        chain(model, &may_alloc, &alloc_sites, t)
                    ),
                ));
            }
        }
    }
}
