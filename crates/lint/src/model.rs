//! Workspace model: the parsed item skeletons of every file, stitched
//! into name-indexed tables and an intra-workspace call graph.
//!
//! Name resolution is deliberately coarse — the linter has no type
//! information, so a call `foo(…)` resolves to every non-test function
//! named `foo` with a preference order of same file, then same crate,
//! then the whole workspace. That over-approximates the real call graph
//! (a `cycle()` call in `sim.rs` may resolve to several `cycle`
//! methods), which is the safe direction for the reachability lints:
//! P1/T1 may consider a function reachable that is not, but never miss
//! one that is. Functions defined in crates outside
//! [`Policy::call_graph_crates`] are not candidates at all, which keeps
//! host-side tooling (the linter itself, the sweep server) from
//! polluting simulator call chains through common names like `run`.
//!
//! [`Policy::call_graph_crates`]: crate::config::Policy

use std::collections::BTreeMap;

use crate::config::Policy;
use crate::parser::{parse_file, FnDef, ParsedFile, Site, StructDef};
use crate::scanner::FileInfo;

/// Method/function names so common on std containers that a cross-crate
/// edge through them is noise, not signal (a `queue.push(…)` in gpusim
/// must not resolve to `telemetry::Series::push`). Same-file and
/// same-crate candidates still resolve — a local `push` shadows std.
const COMMON_STD_NAMES: &[&str] = &[
    "clear",
    "contains",
    "default",
    "drain",
    "extend",
    "find",
    "from",
    "get",
    "insert",
    "len",
    "new",
    "next",
    "pop",
    "position",
    "push",
    "remove",
    "replace",
    "resize",
    "retain",
    "swap",
    "take",
    "truncate",
    "with_capacity",
];

/// Primitive type names: a `u64::from(…)`-style qualified call never
/// targets workspace code.
const PRIMITIVES: &[&str] = &[
    "bool", "char", "f32", "f64", "i128", "i16", "i32", "i64", "i8", "isize", "str", "u128", "u16", "u32",
    "u64", "u8", "usize",
];

/// Index of a function in [`WorkspaceModel::fns`].
pub type FnId = usize;

/// A function plus its defining file.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Crate the file belongs to.
    pub krate: String,
    /// The parsed definition.
    pub def: FnDef,
}

/// One call site together with its resolved targets.
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    /// The call site (name, position).
    pub site: Site,
    /// Candidate target functions, best-preference tier only.
    pub targets: Vec<FnId>,
}

/// The stitched-together workspace: item tables plus the call graph.
pub struct WorkspaceModel {
    /// Per-file parse results, in input order.
    pub files: Vec<(String, ParsedFile)>,
    /// Non-test functions from call-graph crates, the graph's nodes.
    pub fns: Vec<FnNode>,
    /// Per-function resolved call sites (parallel to `fns`).
    pub calls: Vec<Vec<ResolvedCall>>,
    by_name: BTreeMap<String, Vec<FnId>>,
    structs: BTreeMap<String, Vec<(String, StructDef)>>,
    enums: BTreeMap<String, Vec<String>>,
}

impl WorkspaceModel {
    /// Parses every file and builds the call graph. `files` pairs
    /// repo-relative paths with analyzed file info.
    pub fn build(files: &[(String, FileInfo<'_>)], policy: &Policy) -> Self {
        let entries: Vec<&str> = policy.phase_entry_points.iter().map(|s| s.as_str()).collect();
        let parsed: Vec<(String, ParsedFile)> =
            files.iter().map(|(rel, info)| (rel.clone(), parse_file(info, &entries))).collect();

        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut structs: BTreeMap<String, Vec<(String, StructDef)>> = BTreeMap::new();
        let mut enums: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (rel, pf) in &parsed {
            let krate = Policy::crate_of(rel).to_string();
            for s in &pf.structs {
                if !s.is_test {
                    structs.entry(s.name.clone()).or_default().push((rel.clone(), s.clone()));
                }
            }
            for e in &pf.enums {
                if !e.is_test {
                    enums.entry(e.name.clone()).or_default().push(rel.clone());
                }
            }
            if !policy.call_graph_crates.iter().any(|c| c == &krate) {
                continue;
            }
            for def in &pf.fns {
                if def.is_test {
                    continue;
                }
                let id = fns.len();
                by_name.entry(def.name.clone()).or_default().push(id);
                fns.push(FnNode { file: rel.clone(), krate: krate.clone(), def: def.clone() });
            }
        }

        let mut model = WorkspaceModel { files: parsed, fns, calls: Vec::new(), by_name, structs, enums };
        model.calls = model
            .fns
            .iter()
            .enumerate()
            .map(|(id, node)| {
                node.def
                    .calls
                    .iter()
                    .map(|site| ResolvedCall { site: site.clone(), targets: model.resolve_call(site, id) })
                    .collect()
            })
            .collect();
        model
    }

    /// Resolves one call site from the perspective of the calling
    /// function. Path-qualified calls (`Type::name(…)`) resolve through
    /// the qualifier: a known workspace type restricts candidates to
    /// its associated functions; `Self` uses the caller's impl type; an
    /// unknown capitalized or primitive qualifier is a std type and
    /// produces no edge. Unqualified and module-qualified calls fall
    /// back to name tiers.
    fn resolve_call(&self, site: &Site, caller: FnId) -> Vec<FnId> {
        let node = &self.fns[caller];
        let qual = match site.qual.as_deref() {
            Some("Self") => node.def.self_ty.as_deref(),
            q => q,
        };
        if let Some(q) = qual {
            if PRIMITIVES.contains(&q) {
                return Vec::new();
            }
            if q.starts_with(char::is_uppercase) {
                let cands: Vec<FnId> = self
                    .by_name
                    .get(&site.name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&id| id != caller && self.fns[id].def.self_ty.as_deref() == Some(q))
                            .collect()
                    })
                    .unwrap_or_default();
                return self.prefer_tiers(cands, &node.file, &node.krate);
            }
        }
        self.resolve(&node.file, &node.krate, &site.name, caller, site.method)
    }

    /// Keeps only the best-preference tier of `cands`: same file, else
    /// same crate, else all.
    fn prefer_tiers(&self, cands: Vec<FnId>, file: &str, krate: &str) -> Vec<FnId> {
        let tiers: [&dyn Fn(&FnNode) -> bool; 3] =
            [&|n: &FnNode| n.file == file, &|n: &FnNode| n.krate == krate, &|_| true];
        for tier in tiers {
            let hit: Vec<FnId> = cands.iter().copied().filter(|&id| tier(&self.fns[id])).collect();
            if !hit.is_empty() {
                return hit;
            }
        }
        Vec::new()
    }

    /// Resolves a callee name from the perspective of `file`/`krate`:
    /// candidates in the same file win, else same crate, else anywhere
    /// in the call-graph crates — except for [`COMMON_STD_NAMES`],
    /// which never cross a crate boundary. Method calls (`require_self`)
    /// only target functions with a receiver. Self-edges are dropped
    /// (recursion adds nothing to reachability).
    fn resolve(&self, file: &str, krate: &str, name: &str, caller: FnId, require_self: bool) -> Vec<FnId> {
        let Some(cands) = self.by_name.get(name) else { return Vec::new() };
        let cross_crate_ok = !COMMON_STD_NAMES.contains(&name);
        let tiers: [(&dyn Fn(&FnNode) -> bool, bool); 3] = [
            (&|n: &FnNode| n.file == file, true),
            (&|n: &FnNode| n.krate == krate, true),
            (&|_| true, cross_crate_ok),
        ];
        for (tier, enabled) in tiers {
            if !enabled {
                continue;
            }
            let hit: Vec<FnId> = cands
                .iter()
                .copied()
                .filter(|&id| {
                    id != caller && (!require_self || self.fns[id].def.has_self) && tier(&self.fns[id])
                })
                .collect();
            if !hit.is_empty() {
                return hit;
            }
        }
        Vec::new()
    }

    /// Function ids matching a bare name, resolved from `file`'s
    /// perspective (used to seed phase roots).
    pub fn resolve_name(&self, file: &str, name: &str) -> Vec<FnId> {
        self.resolve(file, Policy::crate_of(file), name, usize::MAX, false)
    }

    /// The unique non-test struct definition for `name` visible from
    /// `file`: per tier (same file, then same crate, then workspace), an
    /// enum of that name means "definitely not a struct" (`None`), a
    /// single struct wins, and an ambiguous name is skipped (`None`).
    pub fn resolve_struct(&self, file: &str, name: &str) -> Option<&StructDef> {
        let structs: &[(String, StructDef)] = self.structs.get(name).map_or(&[], Vec::as_slice);
        let enums: &[String] = self.enums.get(name).map_or(&[], Vec::as_slice);
        let krate = Policy::crate_of(file);
        type FileFilter<'f> = &'f dyn Fn(&str) -> bool;
        let tiers: [FileFilter<'_>; 3] =
            [&|f: &str| f == file, &|f: &str| Policy::crate_of(f) == krate, &|_| true];
        for tier in tiers {
            if enums.iter().any(|f| tier(f)) {
                return None;
            }
            let hits: Vec<&StructDef> = structs.iter().filter(|(f, _)| tier(f)).map(|(_, s)| s).collect();
            match hits.as_slice() {
                [one] => return Some(one),
                [] => continue,
                _ => return None,
            }
        }
        None
    }

    /// Breadth-first reachability from `roots` over the call graph.
    /// Returns per-function reachability plus, for each reached
    /// function, the id it was first reached from (roots map to
    /// themselves) — enough to reconstruct a witness path.
    pub fn reachable(&self, roots: &[FnId]) -> (Vec<bool>, Vec<FnId>) {
        let mut seen = vec![false; self.fns.len()];
        let mut parent: Vec<FnId> = (0..self.fns.len()).collect();
        let mut queue: Vec<FnId> = Vec::new();
        for &r in roots {
            if r < seen.len() && !seen[r] {
                seen[r] = true;
                queue.push(r);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let f = queue[qi];
            qi += 1;
            for rc in &self.calls[f] {
                for &t in &rc.targets {
                    if !seen[t] {
                        seen[t] = true;
                        parent[t] = f;
                        queue.push(t);
                    }
                }
            }
        }
        (seen, parent)
    }

    /// Reconstructs the witness path `root → … → id` from a parent map
    /// produced by [`WorkspaceModel::reachable`], as function names.
    pub fn witness_path(&self, parent: &[FnId], id: FnId) -> Vec<String> {
        let mut path = vec![self.fns[id].def.name.clone()];
        let mut cur = id;
        // A root is its own parent; bound the walk defensively.
        for _ in 0..64 {
            let p = parent[cur];
            if p == cur {
                break;
            }
            path.push(self.fns[p].def.name.clone());
            cur = p;
        }
        path.reverse();
        path
    }
}
