//! The `secmem-lint` CLI. See `lib.rs` and DESIGN.md §11.

use std::path::PathBuf;
use std::process::ExitCode;

use secmem_lint::{diag, engine, Baseline, Policy};

const USAGE: &str = "\
secmem-lint — workspace static checks (determinism, hot path, error hygiene)

USAGE:
    cargo run -p secmem-lint -- [OPTIONS]

OPTIONS:
    --json            emit findings as JSON (CI artifact) instead of text
    --fix-baseline    rewrite lint.toml so every current finding is baselined
                      (entries for files that left the workspace are pruned)
    --root <path>     workspace root (default: nearest ancestor with crates/)
    --max-ms <n>      fail if the scan takes longer than n milliseconds
                      (CI keeps the pass cheap enough to stay in tier-1)
    --list            print the lint catalogue and exit
    --help            this message

EXIT STATUS:
    0  no active findings (allows and baseline may have suppressed some)
    1  at least one non-baselined, non-allowed finding, or --max-ms exceeded
    2  usage or I/O error
";

struct Args {
    json: bool,
    fix_baseline: bool,
    list: bool,
    root: Option<PathBuf>,
    max_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { json: false, fix_baseline: false, list: false, root: None, max_ms: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => args.json = true,
            "--fix-baseline" => args.fix_baseline = true,
            "--list" => args.list = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--max-ms" => {
                let v = it.next().ok_or("--max-ms needs a number")?;
                args.max_ms = Some(v.parse().map_err(|_| format!("--max-ms: '{v}' is not a number"))?);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(args)
}

/// Finds the workspace root: the nearest ancestor of the current
/// directory containing `crates/` and `Cargo.toml`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("secmem-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for doc in diag::CATALOGUE {
            println!("{:>3} {:<22} {}", doc.id, doc.name, doc.invariant);
        }
        return ExitCode::SUCCESS;
    }
    let Some(root) = args.root.or_else(find_root) else {
        eprintln!("secmem-lint: cannot locate workspace root (looked for crates/ + Cargo.toml)");
        return ExitCode::from(2);
    };
    let baseline = match Baseline::load(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("secmem-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let policy = Policy::default();
    // Wall-clock here is fine: the lint crate is host tooling, outside
    // the D1 determinism domain (see the "lint crate itself may time"
    // scoping test).
    let started = std::time::Instant::now();
    let report = match engine::scan_workspace(&root, &policy, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("secmem-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis() as u64;
    if args.fix_baseline {
        let existing = match engine::workspace_files(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("secmem-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let next = report.to_baseline(&baseline, &existing);
        let path = root.join("lint.toml");
        if let Err(e) = std::fs::write(&path, next.render()) {
            eprintln!("secmem-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "secmem-lint: baselined {} finding(s) into {}",
            report.diags.iter().filter(|d| d.disposition != diag::Disposition::Allowed).count(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    if args.json {
        print!("{}", diag::render_json(&report.diags));
    } else {
        print!("{}", diag::render_text(&report.diags));
        eprintln!("secmem-lint: scanned {} files in {elapsed_ms} ms", report.files_scanned);
    }
    if let Some(max) = args.max_ms {
        if elapsed_ms > max {
            eprintln!("secmem-lint: scan took {elapsed_ms} ms, over the --max-ms {max} budget");
            return ExitCode::FAILURE;
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
