//! A hand-rolled Rust lexer.
//!
//! The linter needs token-accurate positions (so diagnostics point at the
//! offending identifier, not its line) and must not be fooled by content
//! inside strings or comments — a doc comment mentioning `HashMap` is not
//! a violation. A full parser (`syn`) would drag in dependencies the
//! workspace forbids; lint rules here are token-pattern matches, so a
//! lexer is exactly the right amount of machinery.
//!
//! The tricky corners this lexer gets right (each pinned by
//! `tests/lexer_corpus.rs`):
//!
//! * raw strings `r"…"` / `r#"…"#` with arbitrarily many hashes, and the
//!   byte/C variants `br#"…"#`, `b"…"`, `c"…"`;
//! * nested block comments (`/* /* */ */` is one comment in Rust);
//! * lifetimes vs. char literals: `'a` is a lifetime, `'a'` is a char,
//!   `'\''` is a char, `b'x'` is a byte char;
//! * raw identifiers `r#match`;
//! * numeric literals with underscores, radix prefixes, float dots
//!   (without swallowing the `..` of a range), and type suffixes.
//!
//! Unterminated constructs never panic: the token is extended to end of
//! input, which keeps the linter total over malformed files.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'_` (no closing quote).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    CharLit,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    StrLit,
    /// A numeric literal, including suffix: `0xFF_u64`, `1.5e3`.
    NumLit,
    /// A `// …` comment (covers `///` and `//!`).
    LineComment,
    /// A `/* … */` comment, nesting respected.
    BlockComment,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
}

/// One lexeme with its byte span and 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in characters) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the string passed to [`lex`]).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Identifier text with any `r#` raw prefix stripped; `None` for
    /// non-identifier tokens.
    pub fn ident_text<'a>(&self, src: &'a str) -> Option<&'a str> {
        if self.kind != TokKind::Ident {
            return None;
        }
        let t = self.text(src);
        Some(t.strip_prefix("r#").unwrap_or(t))
    }

    /// True for a `Punct` token equal to `c`.
    pub fn is_punct(&self, src: &str, c: char) -> bool {
        self.kind == TokKind::Punct && self.text(src).chars().next() == Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    /// Advances one char, maintaining line/col.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }
}

/// Tokenizes `src`, keeping comments (the allow-directive scanner needs
/// them) and skipping only whitespace. Never fails; malformed input
/// produces best-effort tokens extending to end of input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = if cur.starts_with("//") {
            lex_line_comment(&mut cur)
        } else if cur.starts_with("/*") {
            lex_block_comment(&mut cur)
        } else if c == '\'' {
            lex_quote(&mut cur)
        } else if c == '"' {
            lex_string(&mut cur);
            TokKind::StrLit
        } else if is_ident_start(c) {
            lex_ident_or_prefixed(&mut cur)
        } else if c.is_ascii_digit() {
            lex_number(&mut cur);
            TokKind::NumLit
        } else {
            cur.bump();
            TokKind::Punct
        };
        out.push(Token { kind, start, end: cur.pos, line, col });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor) -> TokKind {
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        cur.bump();
    }
    TokKind::LineComment
}

fn lex_block_comment(cur: &mut Cursor) -> TokKind {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        if cur.starts_with("/*") {
            cur.bump();
            cur.bump();
            depth += 1;
        } else if cur.starts_with("*/") {
            cur.bump();
            cur.bump();
            depth -= 1;
        } else if cur.bump().is_none() {
            break; // unterminated: extend to EOF
        }
    }
    TokKind::BlockComment
}

/// Lexes from a `'`: either a lifetime or a char literal.
fn lex_quote(cur: &mut Cursor) -> TokKind {
    cur.bump(); // opening '
    match cur.peek() {
        // '\n', '\'', '\u{..}' — escape means char literal.
        Some('\\') => {
            cur.bump();
            cur.bump(); // the escaped char (or 'u' of \u{…})
                        // Consume a possible \u{…} payload and the closing quote.
            while let Some(c) = cur.peek() {
                let done = c == '\'';
                cur.bump();
                if done {
                    break;
                }
            }
            TokKind::CharLit
        }
        Some(c) if is_ident_start(c) => {
            // Could be 'a' (char) or 'a / 'abc (lifetime): a char literal
            // has exactly one ident char then a closing quote.
            if cur.peek_at(1) == Some('\'') {
                cur.bump();
                cur.bump();
                TokKind::CharLit
            } else {
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                TokKind::Lifetime
            }
        }
        // Non-ident single char: '1', '+', even '''. Treat as char lit.
        Some(_) => {
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokKind::CharLit
        }
        None => TokKind::CharLit,
    }
}

/// Lexes a non-raw string body starting at the opening `"`.
fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening "
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump(); // skip escaped char
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Lexes a raw string starting at `r` (cursor on the `r`): `r"…"`,
/// `r#"…"#`, any hash count.
fn lex_raw_string(cur: &mut Cursor) {
    cur.bump(); // 'r'
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek() != Some('"') {
        return; // not actually a raw string (e.g. r#ident handled earlier)
    }
    cur.bump(); // opening "
    let closer: String = std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
    while !cur.starts_with(&closer) {
        if cur.bump().is_none() {
            return; // unterminated
        }
    }
    for _ in 0..=hashes {
        cur.bump();
    }
}

/// Lexes an identifier, or a string/char literal with an `r`/`b`/`c`
/// prefix (`r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`, `c"…"`).
fn lex_ident_or_prefixed(cur: &mut Cursor) -> TokKind {
    let c = cur.peek().unwrap_or(' ');
    // Raw string / raw ident.
    if c == 'r' {
        match (cur.peek_at(1), cur.peek_at(2)) {
            (Some('"'), _) | (Some('#'), Some('"')) | (Some('#'), Some('#')) => {
                lex_raw_string(cur);
                return TokKind::StrLit;
            }
            (Some('#'), Some(n)) if is_ident_start(n) => {
                cur.bump(); // r
                cur.bump(); // #
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                return TokKind::Ident;
            }
            _ => {}
        }
    }
    // Byte / C-string prefixes.
    if c == 'b' || c == 'c' {
        match cur.peek_at(1) {
            Some('"') => {
                cur.bump();
                lex_string(cur);
                return TokKind::StrLit;
            }
            Some('\'') if c == 'b' => {
                cur.bump();
                lex_quote(cur);
                return TokKind::CharLit;
            }
            Some('r') if c == 'b' => {
                let third = cur.peek_at(2);
                if third == Some('"') || third == Some('#') {
                    cur.bump(); // b
                    lex_raw_string(cur);
                    return TokKind::StrLit;
                }
            }
            _ => {}
        }
    }
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    TokKind::Ident
}

/// Lexes a numeric literal. Must not swallow the `..` of `0..10`.
fn lex_number(cur: &mut Cursor) {
    let radix_tail = cur.peek() == Some('0')
        && matches!(cur.peek_at(1), Some('x') | Some('o') | Some('b') | Some('X') | Some('O') | Some('B'));
    if radix_tail {
        cur.bump();
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            cur.bump();
        }
        return;
    }
    while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
        cur.bump();
    }
    // A float dot only if followed by a digit ('1.5' yes, '0..10' and
    // '1.max(2)' no).
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
            cur.bump();
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some('e') | Some('E')) {
        let sign = matches!(cur.peek_at(1), Some('+') | Some('-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek_at(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            cur.bump();
            if sign {
                cur.bump();
            }
            while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == '_') {
                cur.bump();
            }
        }
    }
    // Type suffix (u64, f32, usize…).
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("fn main() {}");
        assert_eq!(ks[0], (TokKind::Ident, "fn".into()));
        assert_eq!(ks[1], (TokKind::Ident, "main".into()));
        assert_eq!(ks[2].0, TokKind::Punct);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn strings_hide_their_content() {
        let ks = kinds(r#"let x = "HashMap::new()";"#);
        assert!(ks.iter().all(|(k, t)| *k != TokKind::Ident || t != "HashMap"));
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::StrLit).count(), 1);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* open", "r#\"raw", "'", "b\"x"] {
            let _ = lex(src);
        }
    }
}
