//! Per-file token analysis shared by every lint: which tokens are test
//! code, which function body each token lives in, and which
//! `// lint:allow(...)` directives the file declares.

use crate::lexer::{lex, TokKind, Token};

/// A function discovered in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Whether `pub` appeared in the tokens directly before `fn`.
    pub is_pub: bool,
    /// Token-index range of the body, `{` inclusive to `}` inclusive.
    pub body: (usize, usize),
    /// Line of the `fn` keyword.
    pub line: u32,
}

/// An inline allow directive.
///
/// Grammar (inside a line comment):
/// `// lint:allow(<ID>): <justification>` suppresses findings of `<ID>`
/// on the same line, or on the next line when the comment stands alone.
/// `// lint:allow-file(<ID>): <justification>` suppresses the whole file.
/// The justification is mandatory: an allow without one is itself
/// reported (lint `A0`).
#[derive(Debug, Clone)]
pub struct Allow {
    /// The lint ID being allowed (e.g. `D1`).
    pub id: String,
    /// Required free-text justification.
    pub justification: String,
    /// Line the directive appears on.
    pub line: u32,
    /// Column of the directive.
    pub col: u32,
    /// True for `lint:allow-file`.
    pub file_level: bool,
    /// True when the directive is malformed (empty justification).
    pub malformed: bool,
}

/// Lexed file plus the derived structure lints consume.
pub struct FileInfo<'a> {
    /// The source text.
    pub src: &'a str,
    /// All tokens, comments included.
    pub toks: Vec<Token>,
    /// Per-token: true when the token is inside `#[cfg(test)]`-gated
    /// code or a `#[test]` function.
    pub is_test: Vec<bool>,
    /// Every function with a body, in source order.
    pub fns: Vec<FnSpan>,
    /// Allow directives declared in the file.
    pub allows: Vec<Allow>,
}

impl<'a> FileInfo<'a> {
    /// Lexes and analyzes one file.
    pub fn analyze(src: &'a str) -> Self {
        let toks = lex(src);
        let is_test = mark_test_regions(src, &toks);
        let fns = find_fns(src, &toks);
        let allows = find_allows(src, &toks);
        Self { src, toks, is_test, fns, allows }
    }

    /// The innermost function whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        // Functions are in source order; the innermost match is the one
        // with the largest body start that still contains `i`.
        self.fns.iter().filter(|f| f.body.0 <= i && i <= f.body.1).max_by_key(|f| f.body.0)
    }

    /// True when a finding of `id` at `line` is covered by an allow
    /// directive (same line, preceding line, or file-level).
    pub fn allowed(&self, id: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| !a.malformed && a.id == id && (a.file_level || a.line == line || a.line + 1 == line))
    }
}

/// Finds `#[cfg(test)]`/`#[test]` attributes and marks the item that
/// follows each one (up to its closing `}` or terminating `;`) as test
/// code. Nested attributes and `#[cfg(all(test, …))]` are covered by
/// looking for the `test` identifier anywhere inside the attribute.
fn mark_test_regions(src: &str, toks: &[Token]) -> Vec<bool> {
    let mut is_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct(src, '#') && i + 1 < toks.len() && toks[i + 1].is_punct(src, '[') {
            // Scan the attribute's bracket group for a `test` ident.
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut has_test = false;
            let mut is_cfg_or_test_attr = false;
            while j < toks.len() {
                let a = &toks[j];
                if a.is_punct(src, '[') {
                    depth += 1;
                } else if a.is_punct(src, ']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.kind == TokKind::Ident {
                    let text = a.ident_text(src).unwrap_or("");
                    if depth == 1 && j == i + 2 && (text == "cfg" || text == "test") {
                        is_cfg_or_test_attr = true;
                    }
                    if text == "test" {
                        has_test = true;
                    }
                }
                j += 1;
            }
            if is_cfg_or_test_attr && has_test {
                // Mark from the attribute through the gated item: skip any
                // further attributes, then to the matching `}` of the first
                // brace group, or the first `;` before one opens.
                let region_end = item_end(src, toks, j);
                for flag in is_test.iter_mut().take(region_end + 1).skip(i) {
                    *flag = true;
                }
                i = region_end + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    is_test
}

/// Token index of the end of the item starting after attribute-close
/// index `attr_close` — the matching `}` of the first brace group, or a
/// bare `;` if one appears first (e.g. `#[cfg(test)] use …;`).
fn item_end(src: &str, toks: &[Token], attr_close: usize) -> usize {
    let mut i = attr_close + 1;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct(src, ';') {
            return i;
        }
        if t.is_punct(src, '{') {
            let mut depth = 0i32;
            while i < toks.len() {
                if toks[i].is_punct(src, '{') {
                    depth += 1;
                } else if toks[i].is_punct(src, '}') {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                i += 1;
            }
            return toks.len() - 1;
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Finds every `fn name … { … }` and records its body token range.
fn find_fns(src: &str, toks: &[Token]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].ident_text(src) == Some("fn") {
            let Some(name_tok) = toks.get(i + 1) else { break };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let name = name_tok.ident_text(src).unwrap_or("").to_string();
            // `pub` within the few tokens before `fn` (possibly with a
            // visibility scope like `pub(crate)`).
            let is_pub = (1..=4).any(|back| {
                i.checked_sub(back)
                    .and_then(|k| toks.get(k))
                    .and_then(|t| t.ident_text(src))
                    .is_some_and(|t| t == "pub")
            });
            // Find the body `{` — or a `;` (trait method decl, no body).
            let mut j = i + 2;
            let mut body = None;
            while j < toks.len() {
                if toks[j].is_punct(src, ';') {
                    break;
                }
                if toks[j].is_punct(src, '{') {
                    let mut depth = 0i32;
                    let open = j;
                    while j < toks.len() {
                        if toks[j].is_punct(src, '{') {
                            depth += 1;
                        } else if toks[j].is_punct(src, '}') {
                            depth -= 1;
                            if depth == 0 {
                                body = Some((open, j));
                                break;
                            }
                        }
                        j += 1;
                    }
                    break;
                }
                j += 1;
            }
            if let Some(body) = body {
                fns.push(FnSpan { name, is_pub, body, line: toks[i].line });
                // Continue scanning *inside* the body too (closures,
                // nested fns): advance past the `fn` keyword only.
            }
        }
        i += 1;
    }
    fns
}

/// Extracts `lint:allow` directives from comment tokens.
fn find_allows(src: &str, toks: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        // Only a directive when it *starts* the comment content — prose
        // that merely mentions `lint:allow(...)` (like this line) is not
        // one.
        let content =
            t.text(src).trim_start_matches('/').trim_start_matches('*').trim_start_matches('!').trim_start();
        let Some(rest) = content.strip_prefix("lint:allow") else { continue };
        let (file_level, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let Some(rest) = rest.strip_prefix('(') else {
            allows.push(Allow {
                id: String::new(),
                justification: String::new(),
                line: t.line,
                col: t.col,
                file_level,
                malformed: true,
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            allows.push(Allow {
                id: String::new(),
                justification: String::new(),
                line: t.line,
                col: t.col,
                file_level,
                malformed: true,
            });
            continue;
        };
        let id = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim_start();
        let justification = tail.strip_prefix(':').map(|j| j.trim().to_string()).unwrap_or_default();
        let malformed = id.is_empty() || justification.is_empty();
        allows.push(Allow { id, justification, line: t.line, col: t.col, file_level, malformed });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let info = FileInfo::analyze(src);
        let unwrap_idx =
            info.toks.iter().position(|t| t.ident_text(src) == Some("unwrap")).expect("unwrap token present");
        assert!(info.is_test[unwrap_idx]);
        let live2 = info.toks.iter().position(|t| t.ident_text(src) == Some("live2")).expect("live2");
        assert!(!info.is_test[live2]);
    }

    #[test]
    fn fn_bodies_and_visibility() {
        let src = "pub fn new() { inner(); }\nfn helper() {}";
        let info = FileInfo::analyze(src);
        assert_eq!(info.fns.len(), 2);
        assert!(info.fns[0].is_pub);
        assert_eq!(info.fns[0].name, "new");
        assert!(!info.fns[1].is_pub);
        let inner = info.toks.iter().position(|t| t.ident_text(src) == Some("inner")).expect("inner");
        assert_eq!(info.enclosing_fn(inner).map(|f| f.name.as_str()), Some("new"));
    }

    #[test]
    fn allow_directives_parse() {
        let src = "// lint:allow(D1): benches must time\n// lint:allow-file(D2): wrapper module\n// lint:allow(H1)\n";
        let info = FileInfo::analyze(src);
        assert_eq!(info.allows.len(), 3);
        assert_eq!(info.allows[0].id, "D1");
        assert!(!info.allows[0].malformed);
        assert!(info.allows[1].file_level);
        assert!(info.allows[2].malformed, "missing justification is malformed");
        assert!(info.allowed("D1", 1), "same line");
        assert!(info.allowed("D1", 2), "next line");
        assert!(!info.allowed("D1", 3));
        assert!(info.allowed("D2", 40), "file-level covers any line");
        assert!(!info.allowed("H1", 3), "malformed allow suppresses nothing");
    }
}
