//! Diagnostics: the finding record, the lint catalogue, and the text /
//! JSON renderers.

/// How a finding is disposed after allow/baseline filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Fails the run.
    Active,
    /// Suppressed by an inline `lint:allow` with justification.
    Allowed,
    /// Suppressed by a `lint.toml` baseline budget.
    Baselined,
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint ID (`D1`, `H2`, …).
    pub lint: &'static str,
    /// Short lint name (`no-wallclock`, …).
    pub name: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found and why it matters.
    pub message: String,
    /// Post-filtering disposition.
    pub disposition: Disposition,
}

/// A catalogue entry describing one lint (`--list` output; the full
/// version with origin PRs lives in DESIGN.md §11).
pub struct LintDoc {
    /// Lint ID.
    pub id: &'static str,
    /// Short name.
    pub name: &'static str,
    /// The invariant the lint enforces.
    pub invariant: &'static str,
}

/// Every lint the engine knows, in report order.
pub const CATALOGUE: &[LintDoc] = &[
    LintDoc {
        id: "D1",
        name: "no-wallclock",
        invariant: "sim crates never read wall-clock time (Instant/SystemTime); \
                    results depend only on seed + config",
    },
    LintDoc {
        id: "D2",
        name: "nondeterministic-map",
        invariant: "sim crates use gpusim::hash::{FastHashMap,FastHashSet} or BTreeMap, \
                    never seed-randomized std HashMap/HashSet",
    },
    LintDoc {
        id: "D3",
        name: "map-order-leak",
        invariant: "report/telemetry-feeding code never iterates an Fx map without an \
                    order-independence justification",
    },
    LintDoc {
        id: "H1",
        name: "hot-path-panic",
        invariant: "per-cycle call-chain modules carry no unwrap/expect/panic!; \
                    typed errors or debug_assert! instead",
    },
    LintDoc {
        id: "H2",
        name: "hot-path-alloc",
        invariant: "per-cycle functions stay allocation-free: no clone/to_vec/Vec::new/\
                    format! in the steady-state path",
    },
    LintDoc {
        id: "C1",
        name: "narrowing-cast",
        invariant: "hot address/index paths never narrow with a bare `as` cast to a \
                    small integer; use crate::narrow helpers (debug-checked, documented \
                    invariant) or justify inline",
    },
    LintDoc {
        id: "E1",
        name: "error-hygiene",
        invariant: "library crates expose typed errors, not Box<dyn Error> or String; \
                    panicking pub constructors have try_ forms",
    },
    LintDoc {
        id: "S1",
        name: "snapshot-completeness",
        invariant: "every `impl Snapshot for T` mentions every named field of T in both \
                    the save and load bodies; a field added to T without checkpoint \
                    plumbing breaks resume == uninterrupted silently",
    },
    LintDoc {
        id: "P1",
        name: "phase-a-purity",
        invariant: "functions transitively reachable from a WorkerPool entity-step \
                    closure touch no cross-entity state: no static mut, no atomic \
                    store/fetch, no Mutex/RwLock/RefCell/Cell, no coordinator staging \
                    commits",
    },
    LintDoc {
        id: "T1",
        name: "transitive-hot-path",
        invariant: "hot-path functions never call (transitively) into code that can \
                    panic or allocate outside the H1/H2-audited modules; flagged at \
                    the call site with the witness chain",
    },
    LintDoc {
        id: "A0",
        name: "bad-allow",
        invariant: "every lint:allow directive names a lint ID and carries a non-empty \
                    justification",
    },
];

/// Renders findings as `file:line:col: ID name: message` lines plus a
/// summary, mirroring rustc so editors can jump to them.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    let mut active = 0usize;
    let mut allowed = 0usize;
    let mut baselined = 0usize;
    for d in diags {
        match d.disposition {
            Disposition::Active => {
                active += 1;
                out.push_str(&format!(
                    "{}:{}:{}: {} {}: {}\n",
                    d.file, d.line, d.col, d.lint, d.name, d.message
                ));
            }
            Disposition::Allowed => allowed += 1,
            Disposition::Baselined => baselined += 1,
        }
    }
    out.push_str(&format!(
        "secmem-lint: {active} finding(s), {allowed} allowed inline, {baselined} baselined\n"
    ));
    out
}

/// Renders all findings (including suppressed ones, with their
/// disposition) as a JSON document for CI artifacts.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let disp = match d.disposition {
            Disposition::Active => "active",
            Disposition::Allowed => "allowed",
            Disposition::Baselined => "baselined",
        };
        out.push_str(&format!(
            "\n    {{\"lint\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"col\": {}, \"disposition\": \"{}\", \"message\": \"{}\"}}",
            d.lint,
            d.name,
            json_escape(&d.file),
            d.line,
            d.col,
            disp,
            json_escape(&d.message)
        ));
    }
    let active = diags.iter().filter(|d| d.disposition == Disposition::Active).count();
    let allowed = diags.iter().filter(|d| d.disposition == Disposition::Allowed).count();
    let baselined = diags.iter().filter(|d| d.disposition == Disposition::Baselined).count();
    out.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"active\": {active}, \"allowed\": {allowed}, \"baselined\": {baselined}}}\n}}\n"
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(disp: Disposition) -> Diagnostic {
        Diagnostic {
            lint: "D1",
            name: "no-wallclock",
            file: "crates/x/src/a.rs".into(),
            line: 3,
            col: 9,
            message: "found `Instant`".into(),
            disposition: disp,
        }
    }

    #[test]
    fn text_lists_active_only() {
        let text = render_text(&[sample(Disposition::Active), sample(Disposition::Allowed)]);
        assert!(text.contains("crates/x/src/a.rs:3:9: D1 no-wallclock"));
        assert!(text.contains("1 finding(s), 1 allowed inline, 0 baselined"));
    }

    #[test]
    fn json_escapes() {
        let mut d = sample(Disposition::Baselined);
        d.message = "quote \" and\nnewline".into();
        let json = render_json(&[d]);
        assert!(json.contains("quote \\\" and\\nnewline"));
        assert!(json.contains("\"baselined\": 1"));
    }
}
