//! `secmem-lint` — a dependency-free static-analysis pass for this
//! workspace.
//!
//! PRs 1–3 established invariants that runtime tests can only spot-check:
//! typed error paths everywhere (PR 1), telemetry that must not perturb
//! results (PR 2), and a hot-loop overhaul whose correctness rests on
//! byte-identical `SimReport`s (PR 3). A single stray
//! `std::collections::HashMap` or `Instant::now()` in a sim crate can
//! silently reintroduce nondeterminism that the 28 pinned fingerprints
//! only catch after the fact — if the affected path happens to be
//! exercised. This crate checks the rules *mechanically*, at the source
//! level, on every file of every crate.
//!
//! The design is a hand-rolled lexer ([`lexer`]) feeding token-pattern
//! rules ([`lints`]) — no `syn`, matching the workspace's
//! zero-dependency policy. See DESIGN.md §11 for the lint catalogue
//! with per-lint origin PRs, and `lint.toml` for the baseline.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p secmem-lint --            # human-readable report
//! cargo run -p secmem-lint -- --json     # CI artifact
//! cargo run -p secmem-lint -- --fix-baseline
//! ```

pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod scanner;

pub use config::{Baseline, BaselineEntry, Policy};
pub use diag::{Diagnostic, Disposition, CATALOGUE};
pub use engine::{lint_source, scan_workspace, workspace_files, Report};
