//! `secmem-lint` — a dependency-free static-analysis pass for this
//! workspace.
//!
//! PRs 1–3 established invariants that runtime tests can only spot-check:
//! typed error paths everywhere (PR 1), telemetry that must not perturb
//! results (PR 2), and a hot-loop overhaul whose correctness rests on
//! byte-identical `SimReport`s (PR 3). A single stray
//! `std::collections::HashMap` or `Instant::now()` in a sim crate can
//! silently reintroduce nondeterminism that the 28 pinned fingerprints
//! only catch after the fact — if the affected path happens to be
//! exercised. This crate checks the rules *mechanically*, at the source
//! level, on every file of every crate.
//!
//! The design is a hand-rolled lexer ([`lexer`]) feeding two layers:
//! token-pattern rules ([`lints`]) over one file at a time, and — since
//! PR 10 — an item-level parser ([`parser`]) whose per-file skeletons
//! are stitched into a workspace model with an intra-workspace call
//! graph ([`model`]), on which the semantic lints S1/P1/T1 run
//! ([`semantic`]). No `syn`, matching the workspace's zero-dependency
//! policy. See DESIGN.md §11 and §16 for the lint catalogue with
//! per-lint origin PRs, and `lint.toml` for the baseline.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p secmem-lint --            # human-readable report
//! cargo run -p secmem-lint -- --json     # CI artifact
//! cargo run -p secmem-lint -- --fix-baseline
//! ```

pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod parser;
pub mod scanner;
pub mod semantic;

pub use config::{Baseline, BaselineEntry, Policy};
pub use diag::{Diagnostic, Disposition, CATALOGUE};
pub use engine::{lint_source, lint_sources, scan_workspace, workspace_files, Report};
pub use model::WorkspaceModel;
pub use parser::{parse_file, ParsedFile};
