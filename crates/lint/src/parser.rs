//! Item-level parser on top of the lexer.
//!
//! Extracts the *item skeleton* of a file — structs and their named
//! fields, enums, functions with the calls / panic sites / allocation
//! sites / synchronization touches inside their bodies, and the trait /
//! self-type attribution of every associated function — without
//! building expression trees. That skeleton is exactly what the
//! semantic lints (S1/P1/T1) need and nothing more; anything the parser
//! does not understand it skips soundly (macro bodies, attribute
//! groups, generic argument lists), so it stays total over arbitrary
//! input the same way the lexer does.
//!
//! Deliberate over-approximations, chosen to keep the walker simple:
//!
//! * calls inside a nested `fn` body are attributed to the enclosing
//!   function too (the nested fn is also parsed as its own item);
//! * a mention of a sync *type* (`Mutex`, `AtomicU64`, …) anywhere in a
//!   signature or body counts as a sync touch, even in a type position;
//! * macro invocation bodies are skipped entirely, so calls made inside
//!   `format!(…)` arguments are invisible.

use crate::lexer::{TokKind, Token};
use crate::scanner::FileInfo;

/// One call-shaped occurrence inside a function body: `name(`,
/// `name::<…>(`, or a named construct like `.unwrap()` / `panic!`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// The callee name (last path segment), or a display label for
    /// panic/alloc/sync sites (e.g. `panic!`, `.unwrap()`, `Mutex`).
    pub name: String,
    /// True when the call is a method call (`recv.name(…)`).
    pub method: bool,
    /// The path segment directly before the name (`Vec` in
    /// `Vec::new(…)`, `Self` in `Self::index(…)`), when there is one.
    pub qual: Option<String>,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A struct definition and its named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Named field identifiers, in declaration order. Empty for unit
    /// and tuple structs (see [`StructDef::has_named_fields`]).
    pub fields: Vec<String>,
    /// True for a `struct S { … }` with at least a brace body.
    pub has_named_fields: bool,
    /// Line of the `struct` keyword.
    pub line: u32,
    /// True when the definition is inside test-gated code.
    pub is_test: bool,
}

/// An enum definition (variants are not modelled; S1 skips enums).
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Type name.
    pub name: String,
    /// Line of the `enum` keyword.
    pub line: u32,
    /// True when the definition is inside test-gated code.
    pub is_test: bool,
}

/// A function definition with the body facts the semantic lints need.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Self type when defined inside an `impl` block.
    pub self_ty: Option<String>,
    /// Trait name when defined inside an `impl Trait for T` block.
    pub trait_name: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Column of the `fn` keyword.
    pub col: u32,
    /// True when the definition is inside test-gated code.
    pub is_test: bool,
    /// True when the first parameter is a `self` receiver. Method calls
    /// (`x.foo(…)`) can only target functions with a receiver, so
    /// resolution uses this to skip associated functions.
    pub has_self: bool,
    /// Call-shaped sites in the body (macros excluded).
    pub calls: Vec<Site>,
    /// Panic sites: `panic!`-family macros, `.unwrap()`, `.expect()`.
    pub panics: Vec<Site>,
    /// Allocation sites (the H2 pattern set).
    pub allocs: Vec<Site>,
    /// Synchronization touches: sync type mentions, lock/borrow/atomic
    /// RMW method calls, `static mut`.
    pub sync_marks: Vec<Site>,
    /// All identifiers mentioned in the body, sorted and deduplicated.
    /// Populated only for trait-impl methods (S1 consumes it).
    pub body_idents: Vec<String>,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Struct definitions.
    pub structs: Vec<StructDef>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
    /// Function definitions (nested fns appear as their own entries).
    pub fns: Vec<FnDef>,
    /// Callee names found inside the argument group of a call to one of
    /// the phase entry points (`entry_names` in [`parse_file`]), from
    /// non-test code: the roots of phase-A reachability.
    pub phase_roots: Vec<Site>,
}

/// Keywords that can be directly followed by `(` without being a call.
const KEYWORDS: &[&str] = &[
    "as", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
    "self", "static", "struct", "super", "trait", "true", "type", "unsafe", "use", "where", "while", "yield",
];

/// `name!` macros whose expansion panics.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// `.name()` methods that panic on the unhappy path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// `name!` macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// `.name()` methods that allocate (mirrors the H2 token patterns).
const ALLOC_METHODS: &[&str] = &["clone", "collect", "to_owned", "to_string", "to_vec"];

/// `Type::ctor(` allocation constructors (mirrors H2). `new` is *not*
/// here: `Vec::new`/`String::new` are const and allocation-free; only
/// `Box::new` (special-cased) always allocates.
const ALLOC_TYPES: &[&str] =
    &["Box", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "String", "Vec", "VecDeque"];
const ALLOC_CTORS: &[&str] = &["from", "with_capacity"];

/// Interior-mutability / synchronization type names.
const SYNC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicI8",
    "AtomicIsize",
    "AtomicPtr",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicU8",
    "AtomicUsize",
    "Cell",
    "Condvar",
    "Mutex",
    "RefCell",
    "RwLock",
    "UnsafeCell",
];

/// `.name(` methods that mutate through shared state.
const SYNC_METHODS: &[&str] = &[
    "borrow_mut",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "lock",
    "store",
    "try_lock",
];

/// Upper bound on tokens scanned when skipping a `<…>` generic group.
/// If no balanced close is found within the window, the `<` is treated
/// as a comparison operator — keeps the parser total on weird input.
const ANGLE_SCAN_LIMIT: usize = 512;

/// Parses the item skeleton of one analyzed file. `entry_names` are the
/// worker-pool entry points whose call arguments seed the phase-A
/// reachability roots (typically `for_each` / `for_each_grouped`).
pub fn parse_file(info: &FileInfo<'_>, entry_names: &[&str]) -> ParsedFile {
    // Work on comment-free token indices; comments never affect items.
    let code: Vec<usize> = (0..info.toks.len())
        .filter(|&i| !matches!(info.toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut p = Parser { info, code, entry_names, out: ParsedFile::default() };
    let n = p.code.len();
    p.items(0, n, &ImplCtx::default());
    p.out
}

/// Trait/self-type attribution inherited from an enclosing `impl`.
#[derive(Debug, Clone, Default)]
struct ImplCtx {
    self_ty: Option<String>,
    trait_name: Option<String>,
}

struct Parser<'a, 'b> {
    info: &'a FileInfo<'b>,
    /// Indices into `info.toks`, comments removed.
    code: Vec<usize>,
    entry_names: &'a [&'a str],
    out: ParsedFile,
}

impl Parser<'_, '_> {
    fn tok(&self, ci: usize) -> &Token {
        &self.info.toks[self.code[ci]]
    }

    /// Identifier text of code-token `ci`, `""` for non-identifiers.
    fn ident(&self, ci: usize) -> &str {
        if ci >= self.code.len() {
            return "";
        }
        self.tok(ci).ident_text(self.info.src).unwrap_or("")
    }

    fn is_punct(&self, ci: usize, c: char) -> bool {
        ci < self.code.len() && self.tok(ci).is_punct(self.info.src, c)
    }

    fn is_test(&self, ci: usize) -> bool {
        self.info.is_test[self.code[ci]]
    }

    fn site(&self, ci: usize, name: impl Into<String>, method: bool) -> Site {
        let t = self.tok(ci);
        Site { name: name.into(), method, qual: None, line: t.line, col: t.col }
    }

    /// The `Qual` of `Qual::name` when code-token `ci` (the name) is
    /// directly preceded by `::` and a path segment.
    fn qual_of(&self, ci: usize) -> Option<String> {
        if ci >= 3 && self.is_punct(ci - 1, ':') && self.is_punct(ci - 2, ':') {
            let q = self.ident(ci - 3);
            if !q.is_empty() {
                return Some(q.to_string());
            }
        }
        None
    }

    /// Skips a balanced delimiter group starting at `open` (one of
    /// `(`/`[`/`{`); returns the index one past the matching close.
    /// Unbalanced input returns `hi`.
    fn skip_group(&self, open: usize, hi: usize) -> usize {
        let (o, c) = match self.tok(open).text(self.info.src) {
            "(" => ('(', ')'),
            "[" => ('[', ']'),
            "{" => ('{', '}'),
            _ => return open + 1,
        };
        let mut depth = 0i32;
        let mut i = open;
        while i < hi {
            if self.is_punct(i, o) {
                depth += 1;
            } else if self.is_punct(i, c) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        hi
    }

    /// Skips a `<…>` generic group starting at `open` (a `<`); returns
    /// the index one past the matching `>`. `->` arrows inside (`Fn()
    /// -> T` bounds) do not close the group. Gives up after
    /// [`ANGLE_SCAN_LIMIT`] tokens and treats the `<` as an operator.
    fn skip_angles(&self, open: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        let limit = (open + ANGLE_SCAN_LIMIT).min(hi);
        while i < limit {
            if self.is_punct(i, '<') {
                depth += 1;
            } else if self.is_punct(i, '>') && !(i > 0 && self.is_punct(i - 1, '-')) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            } else if self.is_punct(i, '(') || self.is_punct(i, '[') || self.is_punct(i, '{') {
                i = self.skip_group(i, hi);
                continue;
            } else if self.is_punct(i, ';') {
                break; // a generic list never crosses a statement end
            }
            i += 1;
        }
        open + 1
    }

    /// Skips an attribute `#[…]` / `#![…]` starting at the `#`.
    fn skip_attr(&self, hash: usize, hi: usize) -> usize {
        let mut i = hash + 1;
        if self.is_punct(i, '!') {
            i += 1;
        }
        if self.is_punct(i, '[') {
            return self.skip_group(i, hi);
        }
        hash + 1
    }

    /// Walks items in `[lo, hi)` (code indices), recursing into `mod`,
    /// `impl`, `trait` and `fn` bodies.
    fn items(&mut self, lo: usize, hi: usize, ctx: &ImplCtx) {
        let mut i = lo;
        while i < hi {
            if self.is_punct(i, '#') {
                i = self.skip_attr(i, hi);
                continue;
            }
            if self.tok(i).kind != TokKind::Ident {
                // Stray delimiter groups at item level (e.g. inside a
                // malformed file): step over them wholesale.
                if self.is_punct(i, '(') || self.is_punct(i, '[') || self.is_punct(i, '{') {
                    i = self.skip_group(i, hi);
                } else {
                    i += 1;
                }
                continue;
            }
            match self.ident(i) {
                "macro_rules" => i = self.skip_macro_invocation(i, hi),
                "mod" => {
                    // `mod name;` or `mod name { items }`.
                    let mut j = i + 2;
                    while j < hi && !self.is_punct(j, ';') && !self.is_punct(j, '{') {
                        j += 1;
                    }
                    if j < hi && self.is_punct(j, '{') {
                        let end = self.skip_group(j, hi);
                        self.items(j + 1, end.saturating_sub(1), &ImplCtx::default());
                        i = end;
                    } else {
                        i = j + 1;
                    }
                }
                "struct" | "union" => i = self.struct_def(i, hi),
                "enum" => i = self.enum_def(i, hi),
                "trait" => i = self.trait_def(i, hi),
                "impl" => i = self.impl_block(i, hi),
                "fn" => i = self.fn_def(i, hi, ctx),
                "use" | "type" | "extern" => i = self.skip_to_semi(i, hi),
                "static" | "const" => {
                    // An associated const / static item; `const fn` is
                    // handled by the `fn` arm on the next iteration.
                    if self.ident(i + 1) == "fn" || self.ident(i + 1) == "unsafe" {
                        i += 1;
                    } else {
                        i = self.skip_to_semi(i, hi);
                    }
                }
                name => {
                    // A macro invocation at item level: `name! { … }` or
                    // `name!(…);` — skip it soundly.
                    if self.is_punct(i + 1, '!') {
                        i = self.skip_macro_invocation(i, hi);
                    } else if name == "pub" && self.is_punct(i + 1, '(') {
                        i = self.skip_group(i + 1, hi);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Skips `name ! (…)` / `name ! {…}` / `name ! […]` (also covers
    /// `macro_rules! name {…}`), plus a trailing `;` if present.
    fn skip_macro_invocation(&self, at: usize, hi: usize) -> usize {
        let mut i = at + 1;
        if self.is_punct(i, '!') {
            i += 1;
        }
        if i < hi && self.tok(i).kind == TokKind::Ident {
            i += 1; // `macro_rules! NAME {…}`
        }
        if i < hi && (self.is_punct(i, '(') || self.is_punct(i, '[') || self.is_punct(i, '{')) {
            i = self.skip_group(i, hi);
        }
        if i < hi && self.is_punct(i, ';') {
            i += 1;
        }
        i
    }

    /// Skips to one past the next `;` at delimiter depth 0.
    fn skip_to_semi(&self, at: usize, hi: usize) -> usize {
        let mut i = at;
        while i < hi {
            if self.is_punct(i, ';') {
                return i + 1;
            }
            if self.is_punct(i, '(') || self.is_punct(i, '[') || self.is_punct(i, '{') {
                i = self.skip_group(i, hi);
                continue;
            }
            if self.is_punct(i, '<') {
                i = self.skip_angles(i, hi);
                continue;
            }
            i += 1;
        }
        hi
    }

    /// Parses `struct Name … ;` / `struct Name(…);` / `struct Name {…}`.
    fn struct_def(&mut self, at: usize, hi: usize) -> usize {
        let name = self.ident(at + 1).to_string();
        if name.is_empty() {
            return at + 1;
        }
        let line = self.tok(at).line;
        let is_test = self.is_test(at);
        let mut i = at + 2;
        if self.is_punct(i, '<') {
            i = self.skip_angles(i, hi);
        }
        // Scan past where-clauses to the body or terminator.
        while i < hi {
            if self.is_punct(i, ';') {
                // Unit struct, or tuple struct whose paren group was
                // skipped below.
                self.out.structs.push(StructDef {
                    name,
                    fields: Vec::new(),
                    has_named_fields: false,
                    line,
                    is_test,
                });
                return i + 1;
            }
            if self.is_punct(i, '(') {
                i = self.skip_group(i, hi);
                continue;
            }
            if self.is_punct(i, '<') {
                i = self.skip_angles(i, hi);
                continue;
            }
            if self.is_punct(i, '{') {
                let end = self.skip_group(i, hi);
                let fields = self.named_fields(i + 1, end.saturating_sub(1));
                self.out.structs.push(StructDef { name, fields, has_named_fields: true, line, is_test });
                return end;
            }
            i += 1;
        }
        hi
    }

    /// Extracts field names from a `struct { … }` body range: an
    /// identifier at brace depth 0 directly followed by a single `:`.
    fn named_fields(&self, lo: usize, hi: usize) -> Vec<String> {
        let mut fields = Vec::new();
        let mut i = lo;
        let mut expect = true;
        while i < hi {
            if self.is_punct(i, '#') {
                i = self.skip_attr(i, hi);
                continue;
            }
            if self.is_punct(i, '(') || self.is_punct(i, '[') || self.is_punct(i, '{') {
                i = self.skip_group(i, hi);
                continue;
            }
            if self.is_punct(i, '<') {
                i = self.skip_angles(i, hi);
                continue;
            }
            if self.is_punct(i, ',') {
                expect = true;
                i += 1;
                continue;
            }
            let id = self.ident(i);
            if id == "pub" {
                i += 1;
                if self.is_punct(i, '(') {
                    i = self.skip_group(i, hi);
                }
                continue;
            }
            if expect && !id.is_empty() && self.is_punct(i + 1, ':') && !self.is_punct(i + 2, ':') {
                fields.push(id.to_string());
                expect = false;
            }
            i += 1;
        }
        fields
    }

    /// Parses `enum Name …` — records the name, skips the body.
    fn enum_def(&mut self, at: usize, hi: usize) -> usize {
        let name = self.ident(at + 1).to_string();
        if name.is_empty() {
            return at + 1;
        }
        self.out.enums.push(EnumDef { name, line: self.tok(at).line, is_test: self.is_test(at) });
        let mut i = at + 2;
        while i < hi {
            if self.is_punct(i, '<') {
                i = self.skip_angles(i, hi);
                continue;
            }
            if self.is_punct(i, '{') {
                return self.skip_group(i, hi);
            }
            if self.is_punct(i, ';') {
                return i + 1;
            }
            i += 1;
        }
        hi
    }

    /// Parses `trait Name … { decls }` — default method bodies inside
    /// get the trait name attributed.
    fn trait_def(&mut self, at: usize, hi: usize) -> usize {
        let name = self.ident(at + 1).to_string();
        let mut i = at + 2;
        while i < hi {
            if self.is_punct(i, '<') {
                i = self.skip_angles(i, hi);
                continue;
            }
            if self.is_punct(i, '{') {
                let end = self.skip_group(i, hi);
                let ctx = ImplCtx { self_ty: None, trait_name: Some(name) };
                self.items(i + 1, end.saturating_sub(1), &ctx);
                return end;
            }
            if self.is_punct(i, ';') {
                return i + 1;
            }
            i += 1;
        }
        hi
    }

    /// Parses `impl … {}` / `impl Trait for Type {}`, attributing the
    /// functions inside.
    fn impl_block(&mut self, at: usize, hi: usize) -> usize {
        let mut i = at + 1;
        if self.is_punct(i, '<') {
            i = self.skip_angles(i, hi);
        }
        // Collect the last depth-0 identifier before `for` (trait path)
        // and before the body (self-type path); a `where` clause ends
        // collection.
        let mut first_path_last: Option<String> = None;
        let mut second_path_last: Option<String> = None;
        let mut saw_for = false;
        let mut body = None;
        while i < hi {
            if self.is_punct(i, '{') {
                body = Some((i, self.skip_group(i, hi)));
                break;
            }
            if self.is_punct(i, ';') {
                return i + 1;
            }
            if self.is_punct(i, '<') {
                i = self.skip_angles(i, hi);
                continue;
            }
            if self.is_punct(i, '(') || self.is_punct(i, '[') {
                i = self.skip_group(i, hi);
                continue;
            }
            match self.ident(i) {
                "for" => saw_for = true,
                "where" => {
                    // Skip the where clause to the body brace.
                    while i < hi && !self.is_punct(i, '{') {
                        if self.is_punct(i, '<') {
                            i = self.skip_angles(i, hi);
                        } else if self.is_punct(i, '(') || self.is_punct(i, '[') {
                            i = self.skip_group(i, hi);
                        } else {
                            i += 1;
                        }
                    }
                    continue;
                }
                "" | "dyn" | "mut" | "const" | "unsafe" => {}
                id => {
                    let slot = if saw_for { &mut second_path_last } else { &mut first_path_last };
                    *slot = Some(id.to_string());
                }
            }
            i += 1;
        }
        let Some((open, end)) = body else { return hi };
        let ctx = if saw_for {
            ImplCtx { self_ty: second_path_last, trait_name: first_path_last }
        } else {
            ImplCtx { self_ty: first_path_last, trait_name: None }
        };
        self.items(open + 1, end.saturating_sub(1), &ctx);
        end
    }

    /// Parses `fn name…(…) … { body }`, extracting body facts, then
    /// recursing for nested items.
    fn fn_def(&mut self, at: usize, hi: usize, ctx: &ImplCtx) -> usize {
        let name = self.ident(at + 1).to_string();
        if name.is_empty() {
            return at + 1;
        }
        let (line, col) = (self.tok(at).line, self.tok(at).col);
        let is_test = self.is_test(at);
        let mut i = at + 2;
        if self.is_punct(i, '<') {
            i = self.skip_angles(i, hi);
        }
        // Signature: params, return type, where clause — up to `{`/`;`.
        let sig_start = i;
        let mut body = None;
        let mut has_self = false;
        let mut saw_params = false;
        while i < hi {
            if self.is_punct(i, ';') {
                i += 1;
                break; // trait declaration without a body
            }
            if self.is_punct(i, '{') {
                body = Some((i, self.skip_group(i, hi)));
                break;
            }
            if self.is_punct(i, '(') || self.is_punct(i, '[') {
                let close = self.skip_group(i, hi);
                if !saw_params && self.is_punct(i, '(') {
                    saw_params = true;
                    // A `self` before the first `,` of the param list is
                    // the receiver (`self`, `&self`, `&mut self`, `self: T`).
                    let mut j = i + 1;
                    while j < close && !self.is_punct(j, ',') {
                        if self.ident(j) == "self" {
                            has_self = true;
                            break;
                        }
                        j += 1;
                    }
                }
                i = close;
                continue;
            }
            if self.is_punct(i, '<') {
                i = self.skip_angles(i, hi);
                continue;
            }
            i += 1;
        }
        let mut def = FnDef {
            name,
            self_ty: ctx.self_ty.clone(),
            trait_name: ctx.trait_name.clone(),
            line,
            col,
            is_test,
            has_self,
            calls: Vec::new(),
            panics: Vec::new(),
            allocs: Vec::new(),
            sync_marks: Vec::new(),
            body_idents: Vec::new(),
        };
        let Some((open, end)) = body else {
            self.out.fns.push(def);
            return i;
        };
        // Sync *types* in the signature count (a fn taking `&Mutex<…>`
        // is as suspect as one constructing it).
        for j in sig_start..open {
            let id = self.ident(j);
            if SYNC_TYPES.contains(&id) {
                def.sync_marks.push(self.site(j, id, false));
            }
        }
        self.body_facts(open + 1, end.saturating_sub(1), &mut def);
        if def.trait_name.is_some() {
            let mut idents: Vec<String> = (open + 1..end.saturating_sub(1))
                .filter(|&j| self.tok(j).kind == TokKind::Ident)
                .map(|j| self.ident(j).to_string())
                .collect();
            idents.sort_unstable();
            idents.dedup();
            def.body_idents = idents;
        }
        self.out.fns.push(def);
        // Nested items (fns, structs) inside the body become their own
        // entries; the impl context does not propagate into them.
        self.items(open + 1, end.saturating_sub(1), &ImplCtx::default());
        end
    }

    /// Extracts calls / panics / allocs / sync marks from a body range.
    fn body_facts(&mut self, lo: usize, hi: usize, def: &mut FnDef) {
        let mut i = lo;
        while i < hi {
            if self.is_punct(i, '#') {
                i = self.skip_attr(i, hi);
                continue;
            }
            if self.tok(i).kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let name = self.ident(i);
            // Macro invocation: classify, then skip the token group so
            // nothing inside leaks into the call list.
            if self.is_punct(i + 1, '!') && !self.is_punct(i + 2, '=') {
                if PANIC_MACROS.contains(&name) {
                    def.panics.push(self.site(i, format!("{name}!"), false));
                } else if ALLOC_MACROS.contains(&name) {
                    def.allocs.push(self.site(i, format!("{name}!"), false));
                }
                i = self.skip_macro_invocation(i, hi);
                continue;
            }
            if name == "static" && self.ident(i + 1) == "mut" {
                def.sync_marks.push(self.site(i, "static mut", false));
                i += 2;
                continue;
            }
            if SYNC_TYPES.contains(&name) {
                def.sync_marks.push(self.site(i, name, false));
            }
            // `Vec::with_capacity(…)`-style allocation.
            if ALLOC_TYPES.contains(&name)
                && self.is_punct(i + 1, ':')
                && self.is_punct(i + 2, ':')
                && self.is_punct(i + 4, '(')
            {
                let ctor = self.ident(i + 3);
                if ALLOC_CTORS.contains(&ctor) || (name == "Box" && ctor == "new") {
                    def.allocs.push(self.site(i, format!("{name}::{ctor}"), false));
                }
            }
            // Call shapes: `name(` or `name::<…>(`.
            if !KEYWORDS.contains(&name) && self.ident(i.wrapping_sub(1)) != "fn" {
                let after =
                    if self.is_punct(i + 1, ':') && self.is_punct(i + 2, ':') && self.is_punct(i + 3, '<') {
                        self.skip_angles(i + 3, hi)
                    } else {
                        i + 1
                    };
                if self.is_punct(after, '(') {
                    let method = i > lo && self.is_punct(i - 1, '.');
                    let mut call = self.site(i, name, method);
                    if !method {
                        call.qual = self.qual_of(i);
                    }
                    def.calls.push(call);
                    if method {
                        if PANIC_METHODS.contains(&name) {
                            def.panics.push(self.site(i, format!(".{name}()"), true));
                        }
                        if ALLOC_METHODS.contains(&name) {
                            def.allocs.push(self.site(i, format!(".{name}()"), true));
                        }
                        if SYNC_METHODS.contains(&name) {
                            def.sync_marks.push(self.site(i, format!(".{name}()"), true));
                        }
                    }
                    if self.entry_names.contains(&name) && !self.is_test(i) {
                        let close = self.skip_group(after, hi);
                        self.phase_roots(after + 1, close.saturating_sub(1));
                    }
                }
            }
            i += 1;
        }
    }

    /// Records every call-shaped name inside a worker-pool entry-point
    /// argument group as a phase-A root (e.g. the `phase_a` of
    /// `|_, e| e.phase_a(now)`).
    fn phase_roots(&mut self, lo: usize, hi: usize) {
        let mut i = lo;
        while i < hi {
            let name = self.ident(i);
            if !name.is_empty() && !KEYWORDS.contains(&name) && self.is_punct(i + 1, '(') {
                let site = self.site(i, name, i > lo && self.is_punct(i - 1, '.'));
                self.out.phase_roots.push(site);
            }
            i += 1;
        }
    }
}
