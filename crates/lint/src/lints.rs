//! The lint rules. Each rule is a token-pattern pass over one file's
//! [`FileInfo`], scoped by the [`Policy`] (which crates / modules /
//! functions it applies to). Test code (`#[cfg(test)]` / `#[test]`) is
//! exempt from every rule: the invariants protect simulation results,
//! and tests are free to unwrap.

use crate::config::Policy;
use crate::diag::{Diagnostic, Disposition, CATALOGUE};
use crate::lexer::{TokKind, Token};
use crate::scanner::FileInfo;

/// Everything a lint needs to know about the file under scan.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// Owning crate name (empty when outside `crates/` and `src/`).
    pub krate: &'a str,
    /// Token-level analysis.
    pub info: &'a FileInfo<'a>,
    /// Scope policy.
    pub policy: &'a Policy,
}

impl FileCtx<'_> {
    /// Indices of lintable tokens: not comments, not test code.
    fn code(&self) -> Vec<usize> {
        (0..self.info.toks.len())
            .filter(|&i| {
                !self.info.is_test[i]
                    && !matches!(self.info.toks[i].kind, TokKind::LineComment | TokKind::BlockComment)
            })
            .collect()
    }

    fn tok(&self, i: usize) -> &Token {
        &self.info.toks[i]
    }

    fn ident(&self, i: usize) -> &str {
        self.info.toks[i].ident_text(self.info.src).unwrap_or("")
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.info.toks[i].is_punct(self.info.src, c)
    }

    fn diag(&self, id: &'static str, i: usize, message: String) -> Diagnostic {
        let doc = CATALOGUE.iter().find(|d| d.id == id);
        let t = self.tok(i);
        Diagnostic {
            lint: id,
            name: doc.map(|d| d.name).unwrap_or(""),
            file: self.rel.to_string(),
            line: t.line,
            col: t.col,
            message,
            disposition: Disposition::Active,
        }
    }
}

/// Runs every lint over one file.
pub fn run_all(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let code = ctx.code();
    d1_no_wallclock(ctx, &code, out);
    d2_nondeterministic_map(ctx, &code, out);
    d3_map_order_leak(ctx, &code, out);
    h1_hot_path_panic(ctx, &code, out);
    h2_hot_path_alloc(ctx, &code, out);
    c1_narrowing_cast(ctx, &code, out);
    e1_error_hygiene(ctx, &code, out);
    a0_bad_allow(ctx, out);
}

/// D1: wall-clock reads are banned wherever results must be a function
/// of (seed, config) alone. `crates/bench` may time, but only via its
/// single allowlisted `timing` module.
fn d1_no_wallclock(ctx: &FileCtx, code: &[usize], out: &mut Vec<Diagnostic>) {
    let applies = ctx.policy.sim_crates.iter().any(|c| c == ctx.krate)
        || ctx.policy.extra_d1_crates.iter().any(|c| c == ctx.krate);
    if !applies {
        return;
    }
    for &i in code {
        let name = ctx.ident(i);
        if matches!(name, "Instant" | "SystemTime" | "Date") {
            out.push(ctx.diag(
                "D1",
                i,
                format!(
                    "`{name}` reads wall-clock time; simulation results must depend only on \
                     seed + config (time through `bench::timing` in harness code)"
                ),
            ));
        }
    }
}

/// D2: seed-randomized std maps are banned in sim crates; their
/// iteration order varies run-to-run. Use
/// `gpusim::hash::{FastHashMap,FastHashSet}` or `BTreeMap`.
fn d2_nondeterministic_map(ctx: &FileCtx, code: &[usize], out: &mut Vec<Diagnostic>) {
    if !ctx.policy.sim_crates.iter().any(|c| c == ctx.krate) {
        return;
    }
    for &i in code {
        let name = ctx.ident(i);
        if matches!(name, "HashMap" | "HashSet") {
            out.push(ctx.diag(
                "D2",
                i,
                format!(
                    "`{name}` is seed-randomized (RandomState); use \
                     `gpusim::hash::Fast{name}` or `BTree{}` so determinism survives \
                     iteration",
                    name.strip_prefix("Hash").unwrap_or("Map")
                ),
            ));
        }
    }
}

/// D3: iterating an Fx map in report/telemetry-feeding code can leak
/// insertion order into results; each such loop needs a justified
/// order-independence allow.
fn d3_map_order_leak(ctx: &FileCtx, code: &[usize], out: &mut Vec<Diagnostic>) {
    if !ctx.policy.report_files.iter().any(|f| f == ctx.rel) {
        return;
    }
    // Pass 1: names declared (field or let) with an Fx map type.
    let mut map_names: Vec<String> = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        if ctx.tok(i).kind != TokKind::Ident {
            continue;
        }
        let name = ctx.ident(i);
        let next = code.get(k + 1).copied();
        let annotated = next.is_some_and(|n| ctx.is_punct(n, ':'))
            && code.get(k + 2).copied().is_some_and(|n| !ctx.is_punct(n, ':'));
        let assigned = next.is_some_and(|n| ctx.is_punct(n, '='));
        if !annotated && !assigned {
            continue;
        }
        // Look a few tokens ahead (the type or initializer path) for an
        // Fx map, stopping at statement boundaries.
        for look in 2..10 {
            let Some(&j) = code.get(k + look) else { break };
            if ctx.is_punct(j, ';') || ctx.is_punct(j, '{') {
                break;
            }
            if matches!(ctx.ident(j), "FastHashMap" | "FastHashSet") {
                map_names.push(name.to_string());
                break;
            }
        }
    }
    map_names.sort();
    map_names.dedup();
    // Pass 2: iteration over a known map name.
    const ITER_METHODS: &[&str] =
        &["iter", "iter_mut", "keys", "values", "values_mut", "drain", "into_iter", "retain", "for_each"];
    for (k, &i) in code.iter().enumerate() {
        let name = ctx.ident(i);
        if map_names.iter().any(|m| m == name) {
            // `name.iter()` and friends.
            if code.get(k + 1).copied().is_some_and(|n| ctx.is_punct(n, '.')) {
                if let Some(&m) = code.get(k + 2) {
                    let method = ctx.ident(m);
                    if ITER_METHODS.contains(&method)
                        && code.get(k + 3).copied().is_some_and(|n| ctx.is_punct(n, '('))
                    {
                        out.push(ctx.diag(
                            "D3",
                            m,
                            format!(
                                "`{name}.{method}()` iterates an Fx map in report-feeding code; \
                                 map order is insertion-dependent — justify no-order-dependence \
                                 with an allow or iterate a sorted view"
                            ),
                        ));
                    }
                }
            }
        }
        // `for x in &name {` / `for x in name {`.
        if name == "in" {
            let mut j = k + 1;
            while code.get(j).copied().is_some_and(|n| ctx.is_punct(n, '&'))
                || code.get(j).copied().is_some_and(|n| ctx.ident(n) == "mut")
            {
                j += 1;
            }
            if let Some(&target) = code.get(j) {
                let tname = ctx.ident(target);
                if map_names.iter().any(|m| m == tname)
                    && code.get(j + 1).copied().is_some_and(|n| ctx.is_punct(n, '{'))
                {
                    out.push(ctx.diag(
                        "D3",
                        target,
                        format!(
                            "`for … in {tname}` iterates an Fx map in report-feeding code; \
                             map order is insertion-dependent — justify no-order-dependence \
                             with an allow or iterate a sorted view"
                        ),
                    ));
                }
            }
        }
    }
}

/// C1: a bare `as` cast to a small integer type silently truncates out
/// of range values. On the hot address/index paths that is a wrong
/// simulation result, not a crash; narrowing must go through the
/// debug-checked `gpusim::narrow` helpers (which name the invariant
/// making the cast safe) or carry an inline justification.
fn c1_narrowing_cast(ctx: &FileCtx, code: &[usize], out: &mut Vec<Diagnostic>) {
    if !ctx.policy.hot_files.iter().any(|f| f == ctx.rel) {
        return;
    }
    const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    for (k, &i) in code.iter().enumerate() {
        if ctx.ident(i) != "as" {
            continue;
        }
        let Some(&t) = code.get(k + 1) else { continue };
        let target = ctx.ident(t);
        if NARROW_TARGETS.contains(&target) {
            out.push(ctx.diag(
                "C1",
                i,
                format!(
                    "bare `as {target}` silently truncates on a hot address/index path; \
                     use a `gpusim::narrow` helper (debug-checked, named invariant) or \
                     justify with an allow"
                ),
            ));
        }
    }
}

/// H1: no panic paths in the per-cycle call chain. A panic mid-cycle
/// tears down the whole run a typed `SimError`/`CoreError` (or a
/// `debug_assert!` for checked invariants) would have survived.
fn h1_hot_path_panic(ctx: &FileCtx, code: &[usize], out: &mut Vec<Diagnostic>) {
    if !ctx.policy.hot_files.iter().any(|f| f == ctx.rel) {
        return;
    }
    for (k, &i) in code.iter().enumerate() {
        let name = ctx.ident(i);
        let followed_by_bang = code.get(k + 1).copied().is_some_and(|n| ctx.is_punct(n, '!'));
        let method_call = k > 0
            && ctx.is_punct(code[k - 1], '.')
            && code.get(k + 1).copied().is_some_and(|n| ctx.is_punct(n, '('));
        if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented") && followed_by_bang {
            out.push(ctx.diag(
                "H1",
                i,
                format!(
                    "`{name}!` in a per-cycle module; return a typed error or use \
                     `debug_assert!` for invariants the caller already guarantees"
                ),
            ));
        } else if matches!(name, "unwrap" | "expect") && method_call {
            out.push(ctx.diag(
                "H1",
                i,
                format!(
                    "`.{name}()` in a per-cycle module; restructure with let-else / \
                     `if let` plus `debug_assert!`, or propagate a typed error"
                ),
            ));
        }
    }
}

/// H2: the per-cycle functions PR 3 made allocation-free must stay that
/// way; a stray `clone()` or `format!` regresses cycles/sec silently.
fn h2_hot_path_alloc(ctx: &FileCtx, code: &[usize], out: &mut Vec<Diagnostic>) {
    if !ctx.policy.hot_files.iter().any(|f| f == ctx.rel) {
        return;
    }
    const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string", "collect"];
    const ALLOC_MACROS: &[&str] = &["format", "vec"];
    const ALLOC_TYPES: &[&str] = &["Vec", "Box", "String", "VecDeque", "BinaryHeap"];
    const ALLOC_CTORS: &[&str] = &["new", "from", "with_capacity"];
    for (k, &i) in code.iter().enumerate() {
        let Some(f) = ctx.info.enclosing_fn(i) else { continue };
        if !ctx.policy.hot_fns.iter().any(|h| h == &f.name) {
            continue;
        }
        let name = ctx.ident(i);
        let method_call = k > 0
            && ctx.is_punct(code[k - 1], '.')
            && code.get(k + 1).copied().is_some_and(|n| ctx.is_punct(n, '('));
        if ALLOC_METHODS.contains(&name) && method_call {
            out.push(ctx.diag(
                "H2",
                i,
                format!(
                    "`.{name}()` allocates inside per-cycle fn `{}`; move it off the \
                     steady-state path or reuse a scratch buffer",
                    f.name
                ),
            ));
            continue;
        }
        if ALLOC_MACROS.contains(&name) && code.get(k + 1).copied().is_some_and(|n| ctx.is_punct(n, '!')) {
            out.push(ctx.diag("H2", i, format!("`{name}!` allocates inside per-cycle fn `{}`", f.name)));
            continue;
        }
        if ALLOC_TYPES.contains(&name)
            && code.get(k + 1).copied().is_some_and(|n| ctx.is_punct(n, ':'))
            && code.get(k + 2).copied().is_some_and(|n| ctx.is_punct(n, ':'))
            && code.get(k + 3).copied().is_some_and(|n| ALLOC_CTORS.contains(&ctx.ident(n)))
        {
            out.push(ctx.diag(
                "H2",
                i,
                format!("`{name}::{}` allocates inside per-cycle fn `{}`", ctx.ident(code[k + 3]), f.name),
            ));
        }
    }
}

/// E1: library crates expose typed errors. `Box<dyn Error>` and
/// `Result<_, String>` erase what failed; panicking `pub fn new`
/// constructors must offer a `try_new`.
fn e1_error_hygiene(ctx: &FileCtx, code: &[usize], out: &mut Vec<Diagnostic>) {
    if !ctx.policy.lib_crates.iter().any(|c| c == ctx.krate) {
        return;
    }
    for (k, &i) in code.iter().enumerate() {
        let name = ctx.ident(i);
        // Box < dyn … Error … >
        if name == "Box"
            && code.get(k + 1).copied().is_some_and(|n| ctx.is_punct(n, '<'))
            && code.get(k + 2).copied().is_some_and(|n| ctx.ident(n) == "dyn")
        {
            let mut depth = 1i32;
            let mut j = k + 2;
            while let Some(&t) = code.get(j) {
                if ctx.is_punct(t, '<') {
                    depth += 1;
                } else if ctx.is_punct(t, '>') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if ctx.ident(t) == "Error" {
                    out.push(
                        ctx.diag(
                            "E1",
                            i,
                            "`Box<dyn Error>` erases the failure type; define or reuse a typed \
                         error enum (SimError / CoreError pattern)"
                                .to_string(),
                        ),
                    );
                    break;
                }
                j += 1;
            }
        }
        // Result < _ , String >
        if name == "Result" && code.get(k + 1).copied().is_some_and(|n| ctx.is_punct(n, '<')) {
            let mut depth = 1i32;
            let mut j = k + 2;
            while let Some(&t) = code.get(j) {
                if ctx.is_punct(t, '<') {
                    depth += 1;
                } else if ctx.is_punct(t, '>') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1 && ctx.is_punct(t, ',') {
                    if code.get(j + 1).copied().is_some_and(|n| ctx.ident(n) == "String") {
                        out.push(
                            ctx.diag(
                                "E1",
                                i,
                                "`Result<_, String>` is a stringly error; define or reuse a typed \
                             error enum"
                                    .to_string(),
                            ),
                        );
                    }
                    break;
                }
                j += 1;
            }
        }
    }
    // Panicking pub constructors need a try_ form.
    let has_try_new = ctx.info.fns.iter().any(|f| f.name == "try_new");
    for f in &ctx.info.fns {
        if f.name != "new" || !f.is_pub || has_try_new {
            continue;
        }
        let panics = code.iter().enumerate().any(|(k, &i)| {
            if i < f.body.0 || i > f.body.1 {
                return false;
            }
            let name = ctx.ident(i);
            (name == "panic" && code.get(k + 1).copied().is_some_and(|n| ctx.is_punct(n, '!')))
                || (matches!(name, "unwrap" | "expect")
                    && k > 0
                    && ctx.is_punct(code[k - 1], '.')
                    && code.get(k + 1).copied().is_some_and(|n| ctx.is_punct(n, '(')))
        });
        if panics {
            let idx = ctx.info.toks.iter().position(|t| t.line == f.line).unwrap_or(f.body.0);
            out.push(
                ctx.diag(
                    "E1",
                    idx,
                    "panicking `pub fn new` without a fallible `try_new`; expose the typed-error \
                 form alongside the convenience constructor"
                        .to_string(),
                ),
            );
        }
    }
}

/// A0: allow directives must be well-formed — a real lint ID and a
/// non-empty justification. An unexplained allow is how invariants rot.
fn a0_bad_allow(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for a in &ctx.info.allows {
        let unknown_id = !a.id.is_empty() && !CATALOGUE.iter().any(|d| d.id == a.id);
        if a.malformed || unknown_id {
            let t = Token { kind: TokKind::LineComment, start: 0, end: 0, line: a.line, col: a.col };
            let mut d = Diagnostic {
                lint: "A0",
                name: "bad-allow",
                file: ctx.rel.to_string(),
                line: t.line,
                col: t.col,
                message: if unknown_id {
                    format!("allow names unknown lint `{}`", a.id)
                } else {
                    "allow directive needs `lint:allow(<ID>): <justification>` — the \
                     justification is mandatory"
                        .to_string()
                },
                disposition: Disposition::Active,
            };
            d.line = a.line;
            d.col = a.col;
            out.push(d);
        }
    }
}
