//! The lint engine: walks the workspace, runs every lint over every
//! file, then applies inline allows and the `lint.toml` baseline.

use std::path::{Path, PathBuf};

use crate::config::{Baseline, BaselineEntry, Policy};
use crate::diag::{Diagnostic, Disposition};
use crate::lints::{run_all, FileCtx};
use crate::model::WorkspaceModel;
use crate::scanner::FileInfo;
use crate::semantic;

/// The outcome of a workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, including suppressed ones (disposition records
    /// how each was handled).
    pub diags: Vec<Diagnostic>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when nothing fails the run.
    pub fn is_clean(&self) -> bool {
        self.active() == 0
    }

    /// Findings that fail the run.
    pub fn active(&self) -> usize {
        self.diags.iter().filter(|d| d.disposition == Disposition::Active).count()
    }

    /// A regenerated baseline covering every currently-active finding
    /// (the `--fix-baseline` payload). Keeps the existing disabled
    /// list. Prior entries whose (file, lint) has no current findings
    /// are carried forward only while the file still exists
    /// (`existing_files`); entries for deleted files are pruned.
    pub fn to_baseline(&self, prior: &Baseline, existing_files: &[String]) -> Baseline {
        let mut entries: Vec<BaselineEntry> = Vec::new();
        for d in self.diags.iter().filter(|d| d.disposition != Disposition::Allowed) {
            match entries.iter_mut().find(|e| e.file == d.file && e.lint == d.lint) {
                Some(e) => e.count += 1,
                None => {
                    entries.push(BaselineEntry { file: d.file.clone(), lint: d.lint.to_string(), count: 1 })
                }
            }
        }
        for e in &prior.entries {
            let covered = entries.iter().any(|n| n.file == e.file && n.lint == e.lint);
            if !covered && existing_files.iter().any(|f| f == &e.file) {
                entries.push(e.clone());
            }
        }
        Baseline { disabled: prior.disabled.clone(), entries }
    }
}

/// A scan failure (I/O on the workspace tree).
#[derive(Debug)]
pub enum ScanError {
    /// The workspace root is missing the expected layout.
    BadRoot(PathBuf),
    /// Reading a file or directory failed.
    Io(PathBuf, std::io::Error),
}

impl core::fmt::Display for ScanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScanError::BadRoot(p) => {
                write!(f, "{} does not look like the workspace root (no crates/)", p.display())
            }
            ScanError::Io(p, e) => write!(f, "reading {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for ScanError {}

/// Collects the workspace-relative paths of every `.rs` file under
/// `crates/*/src` and `src/`, sorted for deterministic reports.
///
/// # Errors
///
/// Fails when `root` has no `crates/` directory or a directory read
/// fails mid-walk.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, ScanError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(ScanError::BadRoot(root.to_path_buf()));
    }
    let mut files = Vec::new();
    let entries = std::fs::read_dir(&crates_dir).map_err(|e| ScanError::Io(crates_dir.clone(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| ScanError::Io(crates_dir.clone(), e))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, &mut files)?;
    }
    let mut rel: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| p.to_string_lossy().replace('\\', "/"))
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), ScanError> {
    let entries = std::fs::read_dir(dir).map_err(|e| ScanError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| ScanError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one file's source text (exposed for fixture tests). Runs the
/// full pipeline — token lints plus the semantic passes over a
/// one-file workspace model.
pub fn lint_source(rel: &str, src: &str, policy: &Policy) -> Vec<Diagnostic> {
    lint_sources(&[(rel.to_string(), src.to_string())], policy)
}

/// Lints a set of files as one workspace: per-file token lints, then
/// the semantic lints (S1/P1/T1) over the stitched workspace model,
/// then inline allow filtering. `files` pairs workspace-relative paths
/// with source text.
pub fn lint_sources(files: &[(String, String)], policy: &Policy) -> Vec<Diagnostic> {
    let infos: Vec<(String, FileInfo<'_>)> =
        files.iter().map(|(rel, src)| (rel.clone(), FileInfo::analyze(src))).collect();
    let mut out = Vec::new();
    for (rel, info) in &infos {
        let ctx = FileCtx { rel, krate: Policy::crate_of(rel), info, policy };
        run_all(&ctx, &mut out);
    }
    let model = WorkspaceModel::build(&infos, policy);
    out.extend(semantic::run_all(&model, policy));
    // Inline allows: A0 itself is exempt (an allow cannot excuse a
    // malformed allow).
    for d in &mut out {
        if d.lint == "A0" {
            continue;
        }
        if let Some((_, info)) = infos.iter().find(|(rel, _)| rel == &d.file) {
            if info.allowed(d.lint, d.line) {
                d.disposition = Disposition::Allowed;
            }
        }
    }
    out
}

/// Scans the whole workspace under `root`, applying `baseline`.
///
/// # Errors
///
/// Propagates tree-walk and file-read failures.
pub fn scan_workspace(root: &Path, policy: &Policy, baseline: &Baseline) -> Result<Report, ScanError> {
    let mut report = Report::default();
    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in workspace_files(root)? {
        let path = root.join(&rel);
        let src = std::fs::read_to_string(&path).map_err(|e| ScanError::Io(path.clone(), e))?;
        sources.push((rel, src));
    }
    report.files_scanned = sources.len();
    report.diags = lint_sources(&sources, policy);
    // Disabled lints vanish entirely.
    report.diags.retain(|d| !baseline.disabled.iter().any(|id| id == d.lint));
    // Baseline budgets: the first N active findings per (file, lint)
    // become Baselined.
    for entry in &baseline.entries {
        let mut budget = entry.count;
        for d in report.diags.iter_mut() {
            if budget == 0 {
                break;
            }
            if d.disposition == Disposition::Active && d.file == entry.file && d.lint == entry.lint {
                d.disposition = Disposition::Baselined;
                budget -= 1;
            }
        }
    }
    Ok(report)
}
