//! Linter configuration and the `lint.toml` baseline.
//!
//! The *policy* — which crates are simulation crates, which modules form
//! the per-cycle hot path, which functions must stay allocation-free —
//! is code, not configuration: it encodes decisions from PRs 1–3 and
//! changes only with a PR that changes the architecture (see
//! DESIGN.md §11). `lint.toml` carries the *baseline*: grandfathered
//! findings tolerated per (file, lint) while they are burned down, plus
//! an optional list of disabled lint IDs.
//!
//! The TOML support is a deliberately small hand-rolled subset (the
//! workspace is dependency-free): comments, `key = "string"`,
//! `key = int`, `key = [ "a", "b" ]`, and `[[baseline]]` array tables.

use std::collections::BTreeMap;
use std::path::Path;

/// One grandfathered (file, lint) bucket: up to `count` findings of
/// `lint` in `file` are reported as *baselined* instead of failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// Lint ID, e.g. `H1`.
    pub lint: String,
    /// Number of tolerated findings.
    pub count: usize,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Lint IDs disabled outright.
    pub disabled: Vec<String>,
    /// Grandfathered findings.
    pub entries: Vec<BaselineEntry>,
}

/// A `lint.toml` parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Parses the `lint.toml` subset.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line.
    pub fn parse(text: &str) -> Result<Self, BaselineError> {
        let mut out = Baseline::default();
        // Which table the parser is inside: None = top level.
        let mut in_baseline = false;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[baseline]]" {
                out.entries.push(BaselineEntry { file: String::new(), lint: String::new(), count: 0 });
                in_baseline = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(BaselineError { line: line_no, message: format!("unknown table {line}") });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineError {
                    line: line_no,
                    message: format!("expected key = value, got '{line}'"),
                });
            };
            let (key, value) = (key.trim(), value.trim());
            if in_baseline {
                let entry = out
                    .entries
                    .last_mut()
                    .ok_or(BaselineError { line: line_no, message: "key before any [[baseline]]".into() })?;
                match key {
                    "file" => entry.file = parse_string(value, line_no)?,
                    "lint" => entry.lint = parse_string(value, line_no)?,
                    "count" => {
                        entry.count = value.parse().map_err(|_| BaselineError {
                            line: line_no,
                            message: format!("count must be an integer, got '{value}'"),
                        })?;
                    }
                    other => {
                        return Err(BaselineError {
                            line: line_no,
                            message: format!("unknown baseline key '{other}'"),
                        })
                    }
                }
            } else {
                match key {
                    "disabled" => out.disabled = parse_string_array(value, line_no)?,
                    other => {
                        return Err(BaselineError {
                            line: line_no,
                            message: format!("unknown key '{other}'"),
                        })
                    }
                }
            }
        }
        for (i, e) in out.entries.iter().enumerate() {
            if e.file.is_empty() || e.lint.is_empty() || e.count == 0 {
                return Err(BaselineError {
                    line: 0,
                    message: format!("baseline entry {} needs file, lint, and count > 0", i + 1),
                });
            }
        }
        Ok(out)
    }

    /// Loads `lint.toml` from `root`, or an empty baseline if absent.
    ///
    /// # Errors
    ///
    /// Returns a parse error for a present-but-malformed file.
    pub fn load(root: &Path) -> Result<Self, BaselineError> {
        match std::fs::read_to_string(root.join("lint.toml")) {
            Ok(text) => Self::parse(&text),
            Err(_) => Ok(Self::default()),
        }
    }

    /// Renders the baseline back to `lint.toml` text (used by
    /// `--fix-baseline`).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# secmem-lint baseline. Regenerate with:\n#   cargo run -p secmem-lint -- --fix-baseline\n\
             # Prefer an inline `// lint:allow(<ID>): <why>` over a baseline entry:\n\
             # the baseline exists to burn down, not to grow.\n",
        );
        if !self.disabled.is_empty() {
            let ids: Vec<String> = self.disabled.iter().map(|d| format!("\"{d}\"")).collect();
            out.push_str(&format!("disabled = [{}]\n", ids.join(", ")));
        }
        // Deterministic order regardless of discovery order.
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *entries.entry((e.file.clone(), e.lint.clone())).or_insert(0) += e.count;
        }
        for ((file, lint), count) in entries {
            out.push_str(&format!("\n[[baseline]]\nfile = \"{file}\"\nlint = \"{lint}\"\ncount = {count}\n"));
        }
        out
    }

    /// Tolerated finding count for a (file, lint) pair.
    pub fn budget(&self, file: &str, lint: &str) -> usize {
        self.entries.iter().filter(|e| e.file == file && e.lint == lint).map(|e| e.count).sum()
    }
}

fn strip_comment(line: &str) -> &str {
    // Good enough for our subset: no '#' inside the strings we write.
    line.split('#').next().unwrap_or("")
}

fn parse_string(value: &str, line: usize) -> Result<String, BaselineError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(BaselineError { line, message: format!("expected quoted string, got '{value}'") })
    }
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, BaselineError> {
    let v = value.trim();
    let Some(inner) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
        return Err(BaselineError { line, message: format!("expected [ ... ] array, got '{value}'") });
    };
    inner.split(',').map(str::trim).filter(|s| !s.is_empty()).map(|s| parse_string(s, line)).collect()
}

/// Static policy: how files map to lint domains. Paths are
/// workspace-relative with forward slashes.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Crates whose results must be cycle-deterministic (D2 applies, and
    /// D1: no wall-clock reads).
    pub sim_crates: Vec<String>,
    /// Crates additionally covered by D1 (the bench harness may time,
    /// but only through its one allowlisted timing module).
    pub extra_d1_crates: Vec<String>,
    /// Per-cycle call-chain modules (H1: no panic paths).
    pub hot_files: Vec<String>,
    /// Functions inside `hot_files` that must stay allocation-free (H2).
    pub hot_fns: Vec<String>,
    /// Files that assemble `SimReport` or telemetry output (D3: no
    /// iteration-order leaks from Fx maps).
    pub report_files: Vec<String>,
    /// Library crates held to E1 error hygiene.
    pub lib_crates: Vec<String>,
    /// Crates whose functions are nodes in the intra-workspace call
    /// graph (P1/T1). Host-side tooling (bench drivers, the sweep
    /// server, the linter itself) is excluded so common names like
    /// `run` do not alias simulator call chains.
    pub call_graph_crates: Vec<String>,
    /// Traits whose impls must round-trip every named field of the self
    /// type through both `save` and `load` (S1).
    pub snapshot_traits: Vec<String>,
    /// Worker-pool entry points whose call arguments seed phase-A
    /// reachability (P1).
    pub phase_entry_points: Vec<String>,
    /// Coordinator-owned functions that phase-A-reachable code must
    /// never call directly (P1): the phase-B/C staging commit points.
    pub p1_forbidden_calls: Vec<String>,
}

impl Default for Policy {
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|x| (*x).to_string()).collect();
        Self {
            sim_crates: s(&["gpusim", "core", "workloads", "telemetry", "checkpoint", "serve"]),
            extra_d1_crates: s(&["bench", "gpu-secure-memory"]),
            // The per-cycle chain from DESIGN.md §10:
            // sim -> sm -> icnt -> partition -> cache/mshr -> backend ->
            // engine/mdcache -> dram, plus the hasher they key maps with.
            hot_files: s(&[
                "crates/gpusim/src/sim.rs",
                "crates/gpusim/src/par.rs",
                "crates/gpusim/src/sm.rs",
                "crates/gpusim/src/icnt.rs",
                "crates/gpusim/src/partition.rs",
                "crates/gpusim/src/cache.rs",
                "crates/gpusim/src/mshr.rs",
                "crates/gpusim/src/dram.rs",
                "crates/gpusim/src/backend.rs",
                "crates/gpusim/src/coalesce.rs",
                "crates/gpusim/src/hash.rs",
                "crates/gpusim/src/trace_bin.rs",
                "crates/core/src/engine.rs",
                "crates/core/src/mdcache.rs",
            ]),
            // The functions PR 3 made allocation-free in steady state.
            hot_fns: s(&[
                "cycle",
                "step",
                "advance_idle",
                "issue",
                "issuable",
                "access",
                "complete",
                "try_accept",
                "next_event_cycle",
                "account_idle_stall",
                "progress_signature",
                "submit_read",
                "submit_write",
                "pop_completed",
                "advance_read",
                "advance_write",
                "next_inst",
            ]),
            report_files: s(&[
                "crates/gpusim/src/stats.rs",
                "crates/gpusim/src/sim.rs",
                "crates/core/src/engine.rs",
                "crates/core/src/mdcache.rs",
                "crates/telemetry/src/sink.rs",
            ]),
            lib_crates: s(&["gpusim", "core", "crypto", "telemetry", "workloads", "checkpoint", "serve"]),
            call_graph_crates: s(&["gpusim", "core", "crypto", "telemetry", "workloads", "checkpoint"]),
            snapshot_traits: s(&["Snapshot"]),
            phase_entry_points: s(&["for_each", "for_each_grouped"]),
            // Phase B/C commit points (DESIGN.md §14): only the
            // coordinator may move staged work across entities.
            p1_forbidden_calls: s(&["push_request_occupied", "push_response", "take_events"]),
        }
    }
}

impl Policy {
    /// Crate name for a workspace-relative path (`crates/<name>/…`, or
    /// the root package for `src/…`).
    pub fn crate_of(rel: &str) -> &str {
        if let Some(rest) = rel.strip_prefix("crates/") {
            rest.split('/').next().unwrap_or("")
        } else if rel.starts_with("src/") {
            "gpu-secure-memory"
        } else {
            ""
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_baseline_entries() {
        let text = "# header\ndisabled = [\"D3\"]\n\n[[baseline]]\nfile = \"crates/x/src/a.rs\"\nlint = \"H1\"\ncount = 2\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.disabled, vec!["D3"]);
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.budget("crates/x/src/a.rs", "H1"), 2);
        assert_eq!(b.budget("crates/x/src/a.rs", "D1"), 0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Baseline::parse("[unknown]\n").is_err());
        assert!(Baseline::parse("count = 1\n").is_err());
        assert!(Baseline::parse("[[baseline]]\nfile = \"x\"\nlint = \"H1\"\ncount = 0\n").is_err());
        assert!(Baseline::parse("[[baseline]]\nfile = x\n").is_err());
    }

    #[test]
    fn render_roundtrips() {
        let b = Baseline {
            disabled: vec!["D3".into()],
            entries: vec![BaselineEntry { file: "a.rs".into(), lint: "H1".into(), count: 3 }],
        };
        let back = Baseline::parse(&b.render()).expect("rendered text parses");
        assert_eq!(back.disabled, b.disabled);
        assert_eq!(back.entries, b.entries);
    }

    #[test]
    fn crate_classification() {
        assert_eq!(Policy::crate_of("crates/gpusim/src/sim.rs"), "gpusim");
        assert_eq!(Policy::crate_of("src/lib.rs"), "gpu-secure-memory");
        assert_eq!(Policy::crate_of("examples/x.rs"), "");
    }
}
