//! File-level allow fixture.
// lint:allow-file(D1): fixture-wide justification for timing helpers
use std::time::Instant;

pub fn start() -> Instant {
    Instant::now()
}
