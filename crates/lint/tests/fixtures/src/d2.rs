//! D2 fixture: seed-randomized std maps in a sim crate.
use std::collections::HashMap;

pub fn build() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    m.len()
}
