//! C1 fixture: narrowing casts on a hot path.

pub fn bank_index(addr: u64, banks: u64) -> u32 {
    (addr % banks) as u32
}

pub fn sector(addr: u64) -> u8 {
    (addr / 32 % 4) as u8
}

pub fn widen(x: u32) -> u64 {
    x as u64
}

pub fn to_float(x: u64) -> f64 {
    x as f64
}

pub fn to_size(x: u64) -> usize {
    // lint:allow(C1): not flagged anyway, but exercise the allow path
    x as usize
}

pub fn justified(addr: u64) -> u32 {
    // lint:allow(C1): modulo bounds the value below 2^32
    (addr % 16) as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_cast() {
        let x = 300u64 as u8;
        let _ = x;
    }
}
