//! H1 fixture: panic paths in a per-cycle module.
pub fn lookup(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    *first
}

pub fn boom(v: &[u32]) -> u32 {
    if v.is_empty() {
        panic!("empty");
    }
    v[0]
}

pub fn checked(v: &[u32]) -> u32 {
    v.first().copied().expect("nonempty")
}
