//! E1 fixture: stringly errors and a panicking constructor.
pub struct Engine {
    size: usize,
}

impl Engine {
    pub fn new(size: usize) -> Self {
        if size == 0 {
            panic!("size must be nonzero");
        }
        Self { size }
    }

    pub fn size(&self) -> usize {
        self.size
    }
}

pub fn load(path: &str) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let _ = path;
    Ok(Vec::new())
}

pub fn parse(text: &str) -> Result<u32, String> {
    text.trim().parse().map_err(|_| "bad".to_string())
}
