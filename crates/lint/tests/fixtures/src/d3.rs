//! D3 fixture: iterating an Fx map in report-feeding code.
use secmem_gpusim::hash::FastHashMap;

pub fn summarize(map: &FastHashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_k, v) in map.iter() {
        total += v;
    }
    total
}

pub fn keys_in_order(set: FastHashMap<u64, u64>) -> Vec<u64> {
    set.keys().copied().collect()
}
