//! D1 fixture: wall-clock reads in simulation code.
use std::time::Instant;

pub fn timed() -> u64 {
    let t = Instant::now();
    let _ = t;
    0
}
