//! Allow-directive fixture: justified, same-line, malformed, unknown.
pub fn cycle(v: &[u32]) -> u32 {
    // lint:allow(H1): fixture justification on the preceding line
    let a = v.first().unwrap();
    let b = v.last().unwrap(); // lint:allow(H1): same-line justification
    *a + *b
}

pub fn bad_allow(v: &[u32]) -> u32 {
    // lint:allow(H1)
    v.first().copied().unwrap()
}

pub fn unknown_id() -> u32 {
    // lint:allow(Z9): no such lint exists
    7
}
