//! H2 fixture: allocation in a hot per-cycle function.
pub struct Cache {
    lines: Vec<u64>,
}

impl Cache {
    pub fn access(&mut self, tag: u64) -> bool {
        let snapshot = self.lines.clone();
        let label = format!("{tag}");
        let extra: Vec<u64> = Vec::new();
        let _ = (snapshot, label, extra);
        self.lines.contains(&tag)
    }

    pub fn cold_summary(&self) -> String {
        format!("{} lines", self.lines.len())
    }
}
