// Lexer fixture: every flavour of string literal. None of the banned
// names inside the literals below may be seen as identifiers.
fn strings() {
    let a = "plain HashMap mention";
    let b = "escaped quote \" and Instant";
    let c = r"raw, no hashes: SystemTime";
    let d = r#"one hash: "quoted" HashSet"#;
    let e = r##"two hashes: r#"inner"# unwrap()"##;
    let f = b"byte string HashMap";
    let g = br#"raw byte string Instant"#;
    let h = c"c string SystemTime";
    let _ = (a, b, c, d, e, f, g, h);
}
