// Scanner fixture: test-gated regions are exempt from every lint.
pub fn hot() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn gated() {
        let m: HashMap<u32, u32> = HashMap::new();
        let t = Instant::now();
        assert!(m.is_empty());
        let _ = t.elapsed();
        let _ = Some(1).unwrap();
    }
}

#[test]
fn bare_test_fn() {
    let _ = Some(2).expect("fine in tests");
}

pub fn also_hot() -> u32 {
    9
}
