// Lexer fixture: comment forms. Banned names in comments never count.
// line comment: HashMap Instant unwrap()
/// doc comment: SystemTime
//! inner doc: HashSet
/* block: HashMap */
/* outer /* nested Instant */ still outer */
/* unbalanced-looking "quote inside comment */
fn after_comments() {
    let x = 1; /* trailing HashMap */
    let _ = x;
}
