// Lexer fixture: lifetimes vs char literals, numbers vs ranges.
struct Holder<'a, 'b: 'a> {
    s: &'a str,
    t: &'b str,
}
fn chars<'x>(v: &'x [u8]) -> usize {
    let a = 'q';
    let b = '\n';
    let c = '\'';
    let d = '\u{41}';
    let e = b'\0';
    let lt: &'static str = "static lifetime";
    let range: Vec<u32> = (0..10).collect();
    let fp = 1.5e3_f64;
    let hex = 0xFF_u64;
    let _ = (a, b, c, d, e, lt, range, fp, hex);
    v.len()
}
