//! Parser fixture: `impl Trait` in argument and return position is an
//! anonymous type, not an `impl` block — the item parser must not treat
//! `impl Fn(u32)` as the start of an inherent impl.

pub fn make_adder(n: u32) -> impl Fn(u32) -> u32 {
    move |x| x + n
}

pub fn take_iter(it: impl Iterator<Item = u8>) -> usize {
    it.count()
}

pub struct Real {
    count: u32,
}

impl Real {
    pub fn bump(&mut self, by: impl Into<u32>) -> u32 {
        self.count += by.into();
        self.count
    }
}
