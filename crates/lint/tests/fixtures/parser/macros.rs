//! Parser fixture: macro definitions and invocations are skipped as
//! opaque token groups. Item keywords and panic-looking tokens inside
//! them must not leak into the item tables or the body facts.

macro_rules! define_things {
    ($name:ident) => {
        // These `fn` / `struct` keywords live inside a macro body: the
        // item parser must not surface them as definitions.
        fn $name() {
            panic!("expanded, not parsed");
        }
        struct PhantomThing;
    };
}

pub fn uses_macros(flag: bool) -> u32 {
    // `!=` must not be taken for a macro invocation of `flag!`.
    if flag != false {
        return 1;
    }
    // A plain invocation: the group is skipped, `unwrap` inside it is
    // the macro's business (matches!' pattern, not a call).
    let ok = matches!(flag, false);
    u32::from(ok)
}

pub fn real_panic_site() {
    // This one IS a body fact: a panic macro outside any definition.
    unreachable!("fixture: the parser must record this");
}
