//! Parser fixture: nested generics close with `>>`, which the
//! single-char lexer sees as two `>` tokens. Shifts and comparisons must
//! not be confused for generic groups.

pub struct Wrap {
    inner: Vec<Vec<u8>>,
    deep: Option<Result<Vec<u64>, String>>,
}

impl Wrap {
    pub fn shift(&self, x: u64) -> u64 {
        // `>>` here is a shift, not a generic close.
        let y = x >> 2;
        // `<` here is a comparison: the angle scanner must give up and
        // back out rather than swallowing the rest of the function.
        if y < 3 && x > 1 {
            helper(y)
        } else {
            y
        }
    }

    pub fn turbofish(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::<Vec<u8>>::default();
        out.extend(self.inner.iter().cloned());
        out
    }
}

fn helper(v: u64) -> u64 {
    v.wrapping_mul(3)
}

pub fn generic_fn<K: Ord, V: Clone + Default>(pairs: Vec<(K, Vec<V>)>) -> usize {
    pairs.len()
}
