//! Parser fixture: `where` clauses sit between the signature and the
//! body; the impl-header scanner must stop collecting names at `where`,
//! and the fn parser must still find the body group after one.

pub struct Holder<T> {
    items: Vec<T>,
}

impl<T> Holder<T>
where
    T: Clone + Send + 'static,
{
    pub fn first(&self) -> Option<T>
    where
        T: Default,
    {
        self.items.first().cloned()
    }
}

pub trait Visit {
    fn visit(&self) -> usize;
}

impl<T> Visit for Holder<T>
where
    T: Clone,
{
    fn visit(&self) -> usize {
        self.items.len()
    }
}

pub fn free_where<I>(it: I) -> usize
where
    I: IntoIterator,
    I::IntoIter: ExactSizeIterator,
{
    it.into_iter().len()
}
