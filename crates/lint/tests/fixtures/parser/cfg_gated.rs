//! Parser fixture: `#[cfg(test)]` items are marked `is_test` and must
//! not become call-graph nodes or S1 subjects; `#[cfg(feature = …)]`
//! attributes are skipped without derailing the item scan.

pub struct Production {
    live: u64,
}

#[cfg(feature = "extras")]
pub struct FeatureGated {
    extra: u64,
}

impl Production {
    #[cfg(feature = "extras")]
    pub fn with_extra(&self) -> u64 {
        self.live + 1
    }

    pub fn live(&self) -> u64 {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestOnly {
        scratch: u64,
    }

    #[test]
    fn lives() {
        let p = Production { live: 3 };
        assert_eq!(p.live(), 3);
        let t = TestOnly { scratch: p.live() };
        assert_eq!(t.scratch, 3);
    }
}
