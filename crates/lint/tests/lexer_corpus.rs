//! Fixture-driven corpus tests for the hand-rolled lexer and the
//! scanner's test-region marking: the lexer must never see an identifier
//! inside a string literal or comment, must keep lifetimes distinct from
//! char literals, and must leave `#[cfg(test)]` code exempt.

use secmem_lint::lexer::{lex, TokKind};
use secmem_lint::lint_source;
use secmem_lint::scanner::FileInfo;

const BANNED: &[&str] = &["HashMap", "HashSet", "Instant", "SystemTime", "unwrap"];

/// Identifier texts of every `Ident` token in `src`.
fn idents(src: &str) -> Vec<&str> {
    lex(src).iter().filter_map(|t| t.ident_text(src)).collect()
}

fn kind_count(src: &str, kind: TokKind) -> usize {
    lex(src).iter().filter(|t| t.kind == kind).count()
}

#[test]
fn raw_strings_hide_their_contents() {
    let src = include_str!("fixtures/lexer/raw_strings.rs");
    let ids = idents(src);
    for banned in BANNED {
        assert!(!ids.contains(banned), "{banned} leaked out of a string literal");
    }
    // One string literal per let binding: plain, escaped, r, r#, r##, b, br#, c.
    assert_eq!(kind_count(src, TokKind::StrLit), 8);
}

#[test]
fn comments_hide_their_contents() {
    let src = include_str!("fixtures/lexer/comments.rs");
    let ids = idents(src);
    for banned in BANNED {
        assert!(!ids.contains(banned), "{banned} leaked out of a comment");
    }
    // `/* outer /* nested */ still outer */` must lex as ONE block comment.
    let blocks: Vec<_> = lex(src).into_iter().filter(|t| t.kind == TokKind::BlockComment).collect();
    assert_eq!(blocks.len(), 4, "three standalone + one trailing block comment");
    assert!(
        blocks.iter().any(|t| t.text(src).contains("nested") && t.text(src).contains("still outer")),
        "nested block comment split too early"
    );
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = include_str!("fixtures/lexer/chars.rs");
    let toks = lex(src);
    let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::CharLit).collect();
    assert_eq!(chars.len(), 5, "'q' '\\n' '\\'' '\\u{{41}}' b'\\0'");
    for c in &chars {
        assert!(c.text(src).ends_with('\''), "char literal keeps closing quote");
    }
    let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
    assert!(lifetimes.len() >= 5, "found {} lifetimes", lifetimes.len());
    for lt in &lifetimes {
        let text = lt.text(src);
        assert!(text.starts_with('\'') && !text.ends_with('\''), "lifetime {text:?} mislexed");
    }
    assert!(lifetimes.iter().any(|t| t.text(src) == "'static"));
}

#[test]
fn numbers_do_not_swallow_ranges() {
    let src = include_str!("fixtures/lexer/chars.rs");
    let toks = lex(src);
    let nums: Vec<&str> = toks.iter().filter(|t| t.kind == TokKind::NumLit).map(|t| t.text(src)).collect();
    assert!(nums.contains(&"0") && nums.contains(&"10"), "range endpoints lex separately: {nums:?}");
    assert!(nums.contains(&"1.5e3_f64"), "float with exponent + suffix is one token: {nums:?}");
    assert!(nums.contains(&"0xFF_u64"), "hex with suffix is one token: {nums:?}");
    assert!(nums.iter().all(|n| !n.contains("..")), "a number swallowed `..`: {nums:?}");
}

#[test]
fn positions_are_one_based_lines_and_char_columns() {
    let src = "ab\n  cd\n";
    let toks = lex(src);
    assert_eq!((toks[0].line, toks[0].col), (1, 1));
    assert_eq!((toks[1].line, toks[1].col), (2, 3));
}

#[test]
fn cfg_test_regions_are_marked_exempt() {
    let src = include_str!("fixtures/lexer/cfg_gated.rs");
    let info = FileInfo::analyze(src);
    let banned_positions: Vec<usize> = info
        .toks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.ident_text(src).is_some_and(|id| BANNED.contains(&id) || id == "expect"))
        .map(|(i, _)| i)
        .collect();
    assert!(!banned_positions.is_empty(), "fixture contains gated banned idents");
    for i in banned_positions {
        assert!(info.is_test[i], "token {:?} should be inside a test region", info.toks[i].text(src));
    }
    // The two real functions stay lintable.
    for name in ["hot", "also_hot"] {
        let f = info.fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("{name} found"));
        assert!(!info.is_test[f.body.0], "{name} must not be test-exempt");
    }
}

#[test]
fn cfg_gated_fixture_produces_no_findings_even_in_a_hot_file() {
    let src = include_str!("fixtures/lexer/cfg_gated.rs");
    let policy = secmem_lint::Policy::default();
    // Pretend the fixture sits at a hot path in a sim crate: every lint
    // is in scope, yet all banned tokens are inside test regions.
    let diags = lint_source("crates/gpusim/src/mshr.rs", src, &policy);
    assert!(diags.is_empty(), "test-gated code must not fire lints: {diags:?}");
}
