//! Unit tests for the symbol-aware passes added in PR 10: the item
//! parser (over the fixture corpus in `fixtures/parser/`), the workspace
//! model's name resolution, and the three semantic lints S1 / P1 / T1 —
//! each with positive, negative and inline-allow cases.
//!
//! The semantic tests fabricate tiny multi-file "workspaces" through
//! [`lint_sources`], using workspace-relative paths that land in the
//! right policy buckets (call-graph crates, hot files, hot fns).

use secmem_lint::parser::parse_file;
use secmem_lint::scanner::FileInfo;
use secmem_lint::{lint_sources, Disposition, Policy};

const ENTRIES: &[&str] = &["for_each", "for_each_grouped"];

fn parsed(src: &str) -> secmem_lint::ParsedFile {
    let info = FileInfo::analyze(src);
    parse_file(&info, ENTRIES)
}

/// Active diagnostics of one lint over a fabricated workspace.
fn active(files: &[(&str, &str)], lint: &str) -> Vec<String> {
    let owned: Vec<(String, String)> =
        files.iter().map(|(rel, src)| (rel.to_string(), src.to_string())).collect();
    lint_sources(&owned, &Policy::default())
        .into_iter()
        .filter(|d| d.lint == lint && d.disposition == Disposition::Active)
        .map(|d| format!("{}:{} {}", d.file, d.line, d.message))
        .collect()
}

// ---------------------------------------------------------------- parser

#[test]
fn parser_handles_nested_generics_and_shifts() {
    let pf = parsed(include_str!("fixtures/parser/nested_generics.rs"));
    let wrap = pf.structs.iter().find(|s| s.name == "Wrap").expect("Wrap parsed");
    assert_eq!(wrap.fields, ["inner", "deep"], "fields behind Vec<Vec<u8>> generics");
    assert!(wrap.has_named_fields);
    let names: Vec<&str> = pf.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, ["shift", "turbofish", "helper", "generic_fn"]);
    let shift = &pf.fns[0];
    assert!(shift.calls.iter().any(|c| c.name == "helper"), "x >> 2 must not eat the body");
    assert!(shift.has_self);
    assert!(!pf.fns[2].has_self, "free helper has no receiver");
}

#[test]
fn parser_handles_where_clauses() {
    let pf = parsed(include_str!("fixtures/parser/where_clauses.rs"));
    let visit = pf
        .fns
        .iter()
        .find(|f| f.name == "visit" && f.self_ty.is_some())
        .expect("trait-impl method parsed (the trait's own declaration has no self type)");
    assert_eq!(visit.self_ty.as_deref(), Some("Holder"), "where clause must not shift the self type");
    assert_eq!(visit.trait_name.as_deref(), Some("Visit"));
    let first = pf.fns.iter().find(|f| f.name == "first").expect("inherent method parsed");
    assert_eq!(first.self_ty.as_deref(), Some("Holder"));
    assert_eq!(first.trait_name, None, "inherent impl has no trait");
    assert!(pf.fns.iter().any(|f| f.name == "free_where"));
}

#[test]
fn parser_handles_impl_trait_positions() {
    let pf = parsed(include_str!("fixtures/parser/impl_trait.rs"));
    let names: Vec<&str> = pf.structs.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["Real"], "impl Fn(u32) / impl Iterator are not impl blocks");
    let bump = pf.fns.iter().find(|f| f.name == "bump").expect("bump parsed");
    assert_eq!(bump.self_ty.as_deref(), Some("Real"));
    assert!(pf.fns.iter().any(|f| f.name == "make_adder"));
}

#[test]
fn parser_skips_macros_soundly() {
    let pf = parsed(include_str!("fixtures/parser/macros.rs"));
    let fn_names: Vec<&str> = pf.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(fn_names, ["uses_macros", "real_panic_site"], "macro-internal items must not leak");
    assert!(pf.structs.is_empty(), "PhantomThing lives inside macro_rules!");
    let uses = &pf.fns[0];
    assert!(uses.panics.is_empty(), "panic! inside a skipped macro body is not a body fact");
    let real = &pf.fns[1];
    assert_eq!(real.panics.len(), 1, "unreachable! outside a macro body is recorded");
}

#[test]
fn parser_marks_cfg_test_items() {
    let pf = parsed(include_str!("fixtures/parser/cfg_gated.rs"));
    let prod = pf.structs.iter().find(|s| s.name == "Production").expect("Production parsed");
    assert!(!prod.is_test);
    let test_only = pf.structs.iter().find(|s| s.name == "TestOnly").expect("TestOnly parsed");
    assert!(test_only.is_test, "structs under #[cfg(test)] are test-marked");
    let live = pf.fns.iter().find(|f| f.name == "live").expect("live parsed");
    assert!(!live.is_test);
    let lives = pf.fns.iter().find(|f| f.name == "lives").expect("test fn parsed");
    assert!(lives.is_test);
}

// ------------------------------------------------------------------- S1

const PAIR_COMPLETE: &str = "\
pub struct Pair { a: u64, b: u64 }
impl Snapshot for Pair {
    fn save(&self, w: &mut Writer) { w.put_u64(self.a); w.put_u64(self.b); }
    fn load(r: &mut Reader<'_>) -> Result<Self, E> { Ok(Self { a: r.get_u64()?, b: r.get_u64()? }) }
}
";

const PAIR_MISSING_B: &str = "\
pub struct Pair { a: u64, b: u64 }
impl Snapshot for Pair {
    fn save(&self, w: &mut Writer) { w.put_u64(self.a); w.put_u64(self.b); }
    fn load(r: &mut Reader<'_>) -> Result<Self, E> { let a = r.get_u64()?; Ok(Self { a, ..Self::zeroed() }) }
}
";

#[test]
fn s1_flags_a_snapshot_impl_omitting_a_field() {
    let diags = active(&[("crates/gpusim/src/pair.rs", PAIR_MISSING_B)], "S1");
    assert_eq!(diags.len(), 1, "load never mentions `b`: {diags:?}");
    assert!(diags[0].contains("`b`"), "names the missing field: {}", diags[0]);
    assert!(diags[0].contains("load"), "anchored at the offending method: {}", diags[0]);
}

#[test]
fn s1_accepts_a_complete_snapshot_impl() {
    assert!(active(&[("crates/gpusim/src/pair.rs", PAIR_COMPLETE)], "S1").is_empty());
}

#[test]
fn s1_respects_an_inline_allow() {
    let src = PAIR_MISSING_B
        .replace("    fn load", "    // lint:allow(S1): b is derived at first use after resume\n    fn load");
    assert!(active(&[("crates/gpusim/src/pair.rs", &src)], "S1").is_empty());
}

#[test]
fn s1_skips_enums_and_unresolved_types() {
    // `Token` is an enum here; a same-named struct in another crate must
    // not be consulted (the tier that sees the enum wins).
    let enum_file = "\
pub enum Token { A, B }
impl Snapshot for Token {
    fn save(&self, w: &mut Writer) { w.put_u8(0); }
    fn load(r: &mut Reader<'_>) -> Result<Self, E> { Ok(Token::A) }
}
";
    let decoy = "pub struct Token { kind: u8, text: String }\n";
    let files = [("crates/gpusim/src/tok.rs", enum_file), ("crates/telemetry/src/decoy.rs", decoy)];
    assert!(active(&files, "S1").is_empty(), "enum impls are out of S1's reach");
}

// ------------------------------------------------------------------- P1

/// A coordinator that steps entities through a worker pool, plus the
/// entity-step fns the lint must chase.
const PHASE_DRIVER: &str = "\
pub fn run_phase(pool: &Pool, es: &mut [Entity]) {
    pool.for_each(es, &|e| e.phase_a(7));
}
";

#[test]
fn p1_flags_a_phase_a_reachable_fn_taking_a_mutex() {
    let entity = "\
pub struct Entity;
impl Entity {
    pub fn phase_a(&mut self, n: u64) { shared_tally(n); }
}
fn shared_tally(n: u64) {
    let m: &Mutex<u64> = global();
    *m.lock().unwrap() += n;
}
";
    let files = [("crates/gpusim/src/driver.rs", PHASE_DRIVER), ("crates/gpusim/src/entity.rs", entity)];
    let diags = active(&files, "P1");
    assert!(!diags.is_empty(), "Mutex in a phase-A-reachable fn must be flagged");
    assert!(diags.iter().any(|d| d.contains("shared_tally")), "witness names the fn: {diags:?}");
}

#[test]
fn p1_flags_a_forbidden_staging_call() {
    let entity = "\
pub struct Entity;
impl Entity {
    pub fn phase_a(&mut self, n: u64) { self.events = take_events(n); }
}
";
    let files = [("crates/gpusim/src/driver.rs", PHASE_DRIVER), ("crates/gpusim/src/entity.rs", entity)];
    let diags = active(&files, "P1");
    assert_eq!(diags.len(), 1, "staging drain from a worker: {diags:?}");
    assert!(diags[0].contains("take_events"));
}

#[test]
fn p1_ignores_sync_outside_the_phase_a_cone() {
    let entity = "\
pub struct Entity;
impl Entity {
    pub fn phase_a(&mut self, n: u64) { let _ = n; }
}
pub fn coordinator_only() {
    let m: Mutex<u64> = Mutex::new(0);
    let _ = m.lock();
}
";
    let files = [("crates/gpusim/src/driver.rs", PHASE_DRIVER), ("crates/gpusim/src/entity.rs", entity)];
    assert!(active(&files, "P1").is_empty(), "unreachable sync is the coordinator's business");
}

#[test]
fn p1_respects_an_inline_allow() {
    let entity = "\
pub struct Entity;
impl Entity {
    pub fn phase_a(&mut self, n: u64) {
        // lint:allow(P1): per-entity staging sink, merged by the coordinator
        let _ = self.stage.lock();
    }
}
";
    let files = [("crates/gpusim/src/driver.rs", PHASE_DRIVER), ("crates/gpusim/src/entity.rs", entity)];
    assert!(active(&files, "P1").is_empty());
}

// ------------------------------------------------------------------- T1

/// `cycle` in `sm.rs` is a hot fn in a hot file (policy), so calls out
/// of the audited jurisdiction are T1's to judge.
fn hot_caller(body: &str) -> String {
    format!("pub struct Sm;\nimpl Sm {{\n    pub fn cycle(&mut self) {{ {body} }}\n}}\n")
}

#[test]
fn t1_flags_a_hot_call_into_panicking_code() {
    let helper = "pub fn helper_panics(x: u64) -> u64 { if x > 7 { panic!(\"boom\") } else { x } }\n";
    let files = [
        ("crates/gpusim/src/sm.rs", hot_caller("helper_panics(3);")),
        ("crates/gpusim/src/other.rs", helper.to_string()),
    ];
    let borrowed: Vec<(&str, &str)> = files.iter().map(|(a, b)| (*a, b.as_str())).collect();
    let diags = active(&borrowed, "T1");
    assert_eq!(diags.len(), 1, "panic behind one call edge: {diags:?}");
    assert!(diags[0].contains("can panic"));
    assert!(diags[0].contains("helper_panics"));
}

#[test]
fn t1_flags_a_transitive_allocation() {
    let helper = "\
pub fn outer(x: u64) -> u64 { inner(x) }
fn inner(x: u64) -> u64 { let s = format!(\"{x}\"); s.len() as u64 }
";
    let files = [
        ("crates/gpusim/src/sm.rs", hot_caller("outer(3);")),
        ("crates/gpusim/src/other.rs", helper.to_string()),
    ];
    let borrowed: Vec<(&str, &str)> = files.iter().map(|(a, b)| (*a, b.as_str())).collect();
    let diags = active(&borrowed, "T1");
    assert_eq!(diags.len(), 1, "alloc two edges away: {diags:?}");
    assert!(diags[0].contains("allocates"));
    assert!(diags[0].contains("inner"), "chain reaches the direct site: {}", diags[0]);
}

#[test]
fn t1_accepts_clean_transitive_callees() {
    let helper = "pub fn helper_clean(x: u64) -> u64 { x.wrapping_mul(3) }\n";
    let files = [
        ("crates/gpusim/src/sm.rs", hot_caller("helper_clean(3);")),
        ("crates/gpusim/src/other.rs", helper.to_string()),
    ];
    let borrowed: Vec<(&str, &str)> = files.iter().map(|(a, b)| (*a, b.as_str())).collect();
    assert!(active(&borrowed, "T1").is_empty());
}

#[test]
fn t1_respects_an_inline_allow_at_the_call_site() {
    let helper = "pub fn helper_panics(x: u64) -> u64 { if x > 7 { panic!(\"boom\") } else { x } }\n";
    let caller = "\
pub struct Sm;
impl Sm {
    pub fn cycle(&mut self) {
        // lint:allow(T1): fixture justification
        helper_panics(3);
    }
}
";
    let files = [("crates/gpusim/src/sm.rs", caller), ("crates/gpusim/src/other.rs", helper)];
    assert!(active(&files, "T1").is_empty());
}
