//! Fixture-driven tests for the lint rules, the allow directives, the
//! baseline mechanics, and an end-to-end workspace scan. Each fixture
//! under `tests/fixtures/src/` is linted as if it sat at a policy-scoped
//! path (hot file, report file, lib crate), so every lint is exercised
//! with exact `file:line:col` expectations.

use std::path::PathBuf;

use secmem_lint::diag::Disposition;
use secmem_lint::{lint_source, scan_workspace, Baseline, Diagnostic, Policy};

fn lint(rel: &str, src: &str) -> Vec<Diagnostic> {
    lint_source(rel, src, &Policy::default())
}

fn active(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags.iter().filter(|d| d.disposition == Disposition::Active).collect()
}

#[test]
fn d1_flags_wallclock_with_exact_positions() {
    let diags = lint("crates/gpusim/src/foo.rs", include_str!("fixtures/src/d1.rs"));
    let d1: Vec<_> = diags.iter().filter(|d| d.lint == "D1").collect();
    assert_eq!(d1.len(), 2, "{diags:?}");
    assert_eq!((d1[0].line, d1[0].col), (2, 16), "Instant in the use statement");
    assert_eq!((d1[1].line, d1[1].col), (5, 13), "Instant::now() call");
    assert!(d1.iter().all(|d| d.disposition == Disposition::Active));
}

#[test]
fn d1_covers_the_bench_crate_too() {
    let diags = lint("crates/bench/src/foo.rs", include_str!("fixtures/src/d1.rs"));
    assert_eq!(diags.iter().filter(|d| d.lint == "D1").count(), 2);
}

#[test]
fn d1_ignores_crates_outside_the_policy() {
    let diags = lint("crates/lint/src/foo.rs", include_str!("fixtures/src/d1.rs"));
    assert!(diags.iter().all(|d| d.lint != "D1"), "lint crate itself may time: {diags:?}");
}

#[test]
fn d2_flags_std_maps_in_sim_crates() {
    let diags = lint("crates/core/src/foo.rs", include_str!("fixtures/src/d2.rs"));
    let lines: Vec<u32> = diags.iter().filter(|d| d.lint == "D2").map(|d| d.line).collect();
    assert_eq!(lines, vec![2, 5, 5], "use + type + constructor: {diags:?}");
}

#[test]
fn d3_flags_fx_map_iteration_in_report_files() {
    let diags = lint("crates/gpusim/src/stats.rs", include_str!("fixtures/src/d3.rs"));
    let d3: Vec<_> = diags.iter().filter(|d| d.lint == "D3").collect();
    assert_eq!(d3.len(), 2, "map.iter() and set.keys(): {diags:?}");
    // The same source outside a report file is not D3's business.
    let elsewhere = lint("crates/gpusim/src/kernel.rs", include_str!("fixtures/src/d3.rs"));
    assert!(elsewhere.iter().all(|d| d.lint != "D3"));
}

#[test]
fn h1_flags_panic_paths_in_hot_modules() {
    let diags = lint("crates/gpusim/src/mshr.rs", include_str!("fixtures/src/h1.rs"));
    let h1: Vec<(u32, u32)> = diags.iter().filter(|d| d.lint == "H1").map(|d| (d.line, d.col)).collect();
    assert_eq!(h1, vec![(3, 27), (9, 9), (15, 24)], "unwrap, panic!, expect: {diags:?}");
    // The same file outside the hot set carries no H1 findings.
    let cold = lint("crates/gpusim/src/kernel.rs", include_str!("fixtures/src/h1.rs"));
    assert!(cold.iter().all(|d| d.lint != "H1"));
}

#[test]
fn h2_flags_allocation_only_in_hot_functions() {
    let diags = lint("crates/gpusim/src/cache.rs", include_str!("fixtures/src/h2.rs"));
    let h2: Vec<u32> = diags.iter().filter(|d| d.lint == "H2").map(|d| d.line).collect();
    assert_eq!(h2, vec![8, 9, 10], "clone, format!, Vec::new in `access`: {diags:?}");
    assert!(diags.iter().all(|d| d.line < 15), "cold_summary is not a per-cycle function: {diags:?}");
}

#[test]
fn c1_flags_narrowing_casts_only_in_hot_files() {
    let diags = lint("crates/gpusim/src/partition.rs", include_str!("fixtures/src/c1.rs"));
    let c1: Vec<(u32, Disposition)> =
        diags.iter().filter(|d| d.lint == "C1").map(|d| (d.line, d.disposition)).collect();
    assert_eq!(
        c1,
        vec![(4, Disposition::Active), (8, Disposition::Active), (26, Disposition::Allowed)],
        "as u32 / as u8 flagged; widening, float, usize and test casts are not: {diags:?}"
    );
    // The same file outside the hot set carries no C1 findings.
    let cold = lint("crates/gpusim/src/kernel.rs", include_str!("fixtures/src/c1.rs"));
    assert!(cold.iter().all(|d| d.lint != "C1"), "{cold:?}");
}

#[test]
fn e1_flags_stringly_errors_and_panicking_constructors() {
    let diags = lint("crates/core/src/foo.rs", include_str!("fixtures/src/e1.rs"));
    let e1: Vec<_> = diags.iter().filter(|d| d.lint == "E1").collect();
    assert_eq!(e1.len(), 3, "{diags:?}");
    assert!(e1.iter().any(|d| d.message.contains("try_new")), "panicking new: {e1:?}");
    assert!(e1.iter().any(|d| d.line == 19), "Box<dyn Error> return: {e1:?}");
    assert!(e1.iter().any(|d| d.line == 24), "Result<_, String> return: {e1:?}");
}

#[test]
fn justified_allows_suppress_and_malformed_allows_do_not() {
    let diags = lint("crates/gpusim/src/mshr.rs", include_str!("fixtures/src/allows.rs"));
    let h1: Vec<_> = diags.iter().filter(|d| d.lint == "H1").collect();
    assert_eq!(h1.len(), 3, "{diags:?}");
    assert_eq!(h1[0].disposition, Disposition::Allowed, "preceding-line allow");
    assert_eq!(h1[1].disposition, Disposition::Allowed, "same-line allow");
    assert_eq!(
        (h1[2].line, h1[2].disposition),
        (11, Disposition::Active),
        "a justification-free allow suppresses nothing"
    );
    let a0: Vec<u32> = diags.iter().filter(|d| d.lint == "A0").map(|d| d.line).collect();
    assert_eq!(a0, vec![10, 15], "missing justification + unknown lint id: {diags:?}");
    assert!(active(&diags).iter().all(|d| d.lint == "H1" || d.lint == "A0"));
}

#[test]
fn file_level_allow_covers_the_whole_file() {
    let diags = lint("crates/gpusim/src/foo.rs", include_str!("fixtures/src/file_allow.rs"));
    let d1: Vec<_> = diags.iter().filter(|d| d.lint == "D1").collect();
    assert_eq!(d1.len(), 3, "{diags:?}");
    assert!(d1.iter().all(|d| d.disposition == Disposition::Allowed));
    assert!(active(&diags).is_empty());
}

#[test]
fn baseline_parses_renders_and_budgets() {
    let text = "\
disabled = [\"E1\"]

[[baseline]]
file = \"crates/gpusim/src/cache.rs\"
lint = \"H1\"
count = 2
";
    let b = Baseline::parse(text).expect("parses");
    assert_eq!(b.disabled, vec!["E1"]);
    assert_eq!(b.entries.len(), 1);
    assert_eq!(b.budget("crates/gpusim/src/cache.rs", "H1"), 2);
    assert_eq!(b.budget("crates/gpusim/src/cache.rs", "H2"), 0);
    assert_eq!(b.budget("crates/gpusim/src/mshr.rs", "H1"), 0);
    let roundtrip = Baseline::parse(&b.render()).expect("rendered baseline reparses");
    assert_eq!(roundtrip.disabled, b.disabled);
    assert_eq!(roundtrip.entries.len(), b.entries.len());
}

#[test]
fn baseline_rejects_malformed_entries() {
    assert!(Baseline::parse("[[baseline]]\nlint = \"H1\"\ncount = 1\n").is_err(), "missing file");
    assert!(
        Baseline::parse("[[baseline]]\nfile = \"a.rs\"\nlint = \"H1\"\ncount = 0\n").is_err(),
        "zero count"
    );
}

/// Builds a throwaway mini-workspace containing one hot file with three
/// H1 violations, returning its root.
fn mini_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("secmem-lint-{}-{tag}", std::process::id()));
    let src_dir = root.join("crates/gpusim/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(src_dir.join("mshr.rs"), include_str!("fixtures/src/h1.rs")).expect("write src");
    root
}

#[test]
fn scan_workspace_applies_baseline_budgets_first_n() {
    let root = mini_workspace("budget");
    let policy = Policy::default();

    let report = scan_workspace(&root, &policy, &Baseline::default()).expect("scan");
    assert_eq!(report.files_scanned, 1);
    assert_eq!(report.active(), 3);
    assert!(!report.is_clean());

    let baseline =
        Baseline::parse("[[baseline]]\nfile = \"crates/gpusim/src/mshr.rs\"\nlint = \"H1\"\ncount = 2\n")
            .expect("baseline");
    let report = scan_workspace(&root, &policy, &baseline).expect("scan");
    assert_eq!(report.active(), 1, "third finding exceeds the budget");
    assert_eq!(report.diags.iter().filter(|d| d.disposition == Disposition::Baselined).count(), 2);

    let existing = vec!["crates/gpusim/src/mshr.rs".to_string()];
    let fixed = report.to_baseline(&baseline, &existing);
    assert_eq!(fixed.budget("crates/gpusim/src/mshr.rs", "H1"), 3, "--fix-baseline covers all");

    // Satellite (PR 10): entries for files that left the workspace are
    // pruned, entries for still-existing files are carried forward.
    let stale = Baseline::parse(
        "[[baseline]]\nfile = \"crates/gpusim/src/deleted.rs\"\nlint = \"H1\"\ncount = 5\n\
         [[baseline]]\nfile = \"crates/gpusim/src/mshr.rs\"\nlint = \"D1\"\ncount = 4\n",
    )
    .expect("baseline");
    let fixed = report.to_baseline(&stale, &existing);
    assert_eq!(fixed.budget("crates/gpusim/src/deleted.rs", "H1"), 0, "stale file entry pruned");
    assert_eq!(fixed.budget("crates/gpusim/src/mshr.rs", "D1"), 4, "existing file entry carried");
    assert_eq!(fixed.budget("crates/gpusim/src/mshr.rs", "H1"), 3, "current findings win");

    let disabled = Baseline::parse("disabled = [\"H1\"]\n").expect("baseline");
    let report = scan_workspace(&root, &policy, &disabled).expect("scan");
    assert!(report.diags.is_empty(), "disabled lints vanish entirely");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn scan_workspace_rejects_a_non_workspace_root() {
    let bogus = std::env::temp_dir().join(format!("secmem-lint-bogus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&bogus);
    std::fs::create_dir_all(&bogus).expect("mkdir");
    assert!(scan_workspace(&bogus, &Policy::default(), &Baseline::default()).is_err());
    let _ = std::fs::remove_dir_all(&bogus);
}

/// The real workspace must lint clean — this is the tier-1 gate that
/// keeps the determinism/hot-path/error-hygiene invariants enforced on
/// every `cargo test` run, not just in CI.
#[test]
fn the_actual_workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baseline = Baseline::load(&root).expect("lint.toml, if present, parses");
    let report = scan_workspace(&root, &Policy::default(), &baseline).expect("scan");
    let failing: Vec<String> = report
        .diags
        .iter()
        .filter(|d| d.disposition == Disposition::Active)
        .map(|d| format!("{}:{}:{}: {} {}", d.file, d.line, d.col, d.lint, d.message))
        .collect();
    assert!(failing.is_empty(), "workspace has active lint findings:\n{}", failing.join("\n"));
}
