//! A minimal blocking HTTP client over `std::net`, shared by the
//! `sweep-client` binary and the end-to-end tests. One request per
//! connection, mirroring the server's `Connection: close` discipline.

use std::io::Write;
use std::net::TcpStream;

use crate::http::{self, ChunkReader, HttpError, Response};

fn open(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> Result<TcpStream, HttpError> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n")?;
    match body {
        Some(b) => {
            write!(stream, "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n", b.len())?;
            stream.write_all(b)?;
        }
        None => write!(stream, "\r\n")?,
    }
    stream.flush()?;
    Ok(stream)
}

/// `GET path`, returning the full decoded response.
///
/// # Errors
///
/// Connection, I/O, and response-parse errors.
pub fn get(addr: &str, path: &str) -> Result<Response, HttpError> {
    let mut stream = open(addr, "GET", path, None)?;
    http::read_response(&mut stream)
}

/// `POST path` with a JSON body, returning the full decoded response.
///
/// # Errors
///
/// Connection, I/O, and response-parse errors.
pub fn post(addr: &str, path: &str, body: &[u8]) -> Result<Response, HttpError> {
    let mut stream = open(addr, "POST", path, Some(body))?;
    http::read_response(&mut stream)
}

/// `GET path` consuming a chunked response incrementally: `on_data` is
/// called with each chunk as it arrives (progress streaming). For a
/// non-chunked response (e.g. an error) the whole body is delivered as
/// one call. Returns the status code.
///
/// # Errors
///
/// Connection, I/O, and response-parse errors.
pub fn stream_get(addr: &str, path: &str, on_data: &mut dyn FnMut(&[u8])) -> Result<u16, HttpError> {
    let mut stream = open(addr, "GET", path, None)?;
    let (head_bytes, pre) = http::read_head_bytes(&mut stream)?;
    let head = http::parse_head(&head_bytes)?;
    if !head.part0.starts_with("HTTP/1.") {
        return Err(HttpError::BadStartLine);
    }
    let code: u16 = head.part1.parse().map_err(|_| HttpError::BadStartLine)?;
    let chunked = head.header("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    if chunked {
        let mut reader = ChunkReader::new(&mut stream, pre);
        while let Some(chunk) = reader.next_chunk()? {
            on_data(&chunk);
        }
    } else {
        let mut body = pre;
        let want = head.content_length()?;
        http::read_body_more(&mut stream, &mut body, want)?;
        on_data(&body);
    }
    Ok(code)
}
