//! `secmem-serve`: a persistent sweep server for the ISPASS'21 GPU
//! secure-memory reproduction.
//!
//! The batch `reproduce` harness re-simulates every configuration on
//! every invocation, even though a result is a pure function of its
//! `(workload+seed, gpu, backend, cycles, warmup, telemetry)`
//! fingerprint. This crate keeps a simulator warm behind a hand-rolled
//! HTTP/1.1 interface (`std::net` only — the workspace is
//! dependency-free): sweep specs arrive as JSON, expand through
//! [`secmem_bench::sweep`] into jobs on a work-stealing pool, and every
//! job is answered through a content-addressed [`cache::ResultCache`] —
//! so repeated or concurrent identical sweeps cost zero extra
//! simulations and return **byte-identical** CSVs to a batch
//! `reproduce matrix` run.
//!
//! Endpoints (see DESIGN.md §13 for the wire protocol):
//!
//! | method | path                  | purpose                          |
//! |--------|-----------------------|----------------------------------|
//! | GET    | `/health`             | liveness + queue depth           |
//! | POST   | `/sweeps`             | submit a sweep spec (JSON)       |
//! | GET    | `/sweeps/{id}`        | progress + cache-hit counters    |
//! | GET    | `/sweeps/{id}/results`| final CSV (409 while running)    |
//! | GET    | `/sweeps/{id}/stream` | chunked NDJSON progress events   |
//! | GET    | `/cache/stats`        | cache + simulation counters      |
//! | POST   | `/drain`              | finish queued work, refuse new   |
//! | POST   | `/shutdown`           | drain, then exit                 |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod queue;
pub mod server;
pub mod spec;

pub use cache::{CacheRole, CacheStats, ResultCache};
pub use queue::WorkPool;
pub use server::{ServeError, Server, ServerConfig};
pub use spec::{parse_sweep_spec, render_sweep_spec, SpecError};
