//! `secmem-serve` — the persistent sweep server.
//!
//! ```text
//! secmem-serve [--addr HOST:PORT] [--sim-workers N] [--http-threads N]
//!              [--cache-capacity N] [--sim-threads N]
//! ```
//!
//! Prints one `listening on <addr>` line once the socket is bound (CI
//! and scripts key on it), then serves until `POST /shutdown`.

use secmem_serve::{ServeError, Server, ServerConfig};

/// A rejected command-line invocation.
#[derive(Debug)]
enum ArgError {
    /// Flag given without its value.
    MissingValue(&'static str),
    /// Flag value failed to parse as a number.
    BadNumber(&'static str, std::num::ParseIntError),
    /// Flag not recognised.
    UnknownFlag(String),
}

impl core::fmt::Display for ArgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::MissingValue(flag) => write!(f, "{flag} needs a value"),
            Self::BadNumber(flag, e) => write!(f, "{flag}: {e}"),
            Self::UnknownFlag(flag) => write!(f, "unknown flag: {flag}"),
        }
    }
}

fn parse_args() -> Result<ServerConfig, ArgError> {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &'static str| args.next().ok_or(ArgError::MissingValue(name));
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--sim-workers" => {
                cfg.sim_workers =
                    value("--sim-workers")?.parse().map_err(|e| ArgError::BadNumber("--sim-workers", e))?;
            }
            "--http-threads" => {
                cfg.http_threads =
                    value("--http-threads")?.parse().map_err(|e| ArgError::BadNumber("--http-threads", e))?;
            }
            "--cache-capacity" => {
                cfg.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| ArgError::BadNumber("--cache-capacity", e))?;
            }
            "--sim-threads" => {
                cfg.sim_threads =
                    value("--sim-threads")?.parse().map_err(|e| ArgError::BadNumber("--sim-threads", e))?;
            }
            "--help" | "-h" => {
                println!(
                    "secmem-serve [--addr HOST:PORT] [--sim-workers N] [--http-threads N] \
                     [--cache-capacity N] [--sim-threads N]"
                );
                std::process::exit(0);
            }
            other => return Err(ArgError::UnknownFlag(other.to_string())),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("secmem-serve: {e}");
            std::process::exit(2);
        }
    };
    let server = match Server::bind(&cfg) {
        Ok(s) => s,
        Err(ServeError::Io(e)) => {
            eprintln!("secmem-serve: cannot bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("secmem-serve: {e}");
        std::process::exit(1);
    }
}
