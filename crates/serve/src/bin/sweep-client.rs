//! `sweep-client` — command-line client for `secmem-serve`.
//!
//! ```text
//! sweep-client [--server HOST:PORT] <command>
//!
//! commands:
//!   health [--retries N]      wait for the server to answer /health
//!   submit <spec.json|->      submit a sweep, print {"sweep":id,...}
//!   status <id>               print sweep progress JSON
//!   wait <id>                 poll until the sweep completes
//!   results <id> [--out F]    fetch the final CSV
//!   stream <id>               print NDJSON progress events as they land
//!   stats                     print cache/simulation counters
//!   run <spec.json|-> [--out F]   submit + wait + fetch in one go
//!   drain                     finish queued work, refuse new sweeps
//!   shutdown                  drain, then stop the server
//! ```
//!
//! Exits nonzero on connection failures, HTTP errors, and failed jobs.

use std::io::{Read, Write};
use std::time::Duration;

use secmem_serve::client;
use secmem_serve::http::Response;
use secmem_serve::json;

/// Delay between /health retries and status polls.
const POLL: Duration = Duration::from_millis(100);

fn fail(message: impl core::fmt::Display) -> ! {
    eprintln!("sweep-client: {message}");
    std::process::exit(1)
}

/// Writes raw bytes to stdout; a closed pipe (e.g. `| head`) is a
/// normal way for the consumer to stop, not an error.
fn emit(data: &[u8]) {
    let mut out = std::io::stdout();
    if let Err(e) = out.write_all(data).and_then(|()| out.flush()) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        fail(format!("writing stdout: {e}"));
    }
}

fn check(resp: Response, context: &str) -> Response {
    if resp.code != 200 {
        fail(format!("{context}: HTTP {} — {}", resp.code, resp.text().trim()));
    }
    resp
}

/// Reads a spec argument: a path, or `-` for stdin.
fn read_spec(arg: &str) -> String {
    if arg == "-" {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            fail(format!("reading stdin: {e}"));
        }
        text
    } else {
        match std::fs::read_to_string(arg) {
            Ok(text) => text,
            Err(e) => fail(format!("reading {arg}: {e}")),
        }
    }
}

fn sweep_field(body: &str, field: &str) -> Option<u64> {
    json::parse(body).ok()?.get(field)?.as_u64()
}

fn submit(server: &str, spec_text: &str) -> u64 {
    let resp = match client::post(server, "/sweeps", spec_text.as_bytes()) {
        Ok(r) => r,
        Err(e) => fail(format!("submitting sweep: {e}")),
    };
    let resp = check(resp, "submit");
    let body = resp.text();
    println!("{body}");
    match sweep_field(&body, "sweep") {
        Some(id) => id,
        None => fail("submit response had no sweep id"),
    }
}

/// Polls until the sweep reports complete; returns the final status body.
fn wait(server: &str, id: u64) -> String {
    loop {
        let resp = match client::get(server, &format!("/sweeps/{id}")) {
            Ok(r) => r,
            Err(e) => fail(format!("polling sweep {id}: {e}")),
        };
        let resp = check(resp, "status");
        let body = resp.text();
        let complete = json::parse(&body).ok().and_then(|v| v.get("complete")?.as_bool());
        match complete {
            Some(true) => return body,
            Some(false) => std::thread::sleep(POLL),
            None => fail(format!("malformed status response: {body}")),
        }
    }
}

fn fetch_results(server: &str, id: u64, out: Option<&str>) {
    let resp = match client::get(server, &format!("/sweeps/{id}/results")) {
        Ok(r) => r,
        Err(e) => fail(format!("fetching results for sweep {id}: {e}")),
    };
    let resp = check(resp, "results");
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &resp.body) {
                fail(format!("writing {path}: {e}"));
            }
        }
        None => emit(&resp.body),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut server = "127.0.0.1:8642".to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut retries: u64 = 50;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--server" => {
                i += 1;
                server = args.get(i).cloned().unwrap_or_else(|| fail("--server needs a value"));
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| fail("--out needs a value")));
            }
            "--retries" => {
                i += 1;
                let v = args.get(i).cloned().unwrap_or_else(|| fail("--retries needs a value"));
                retries = v.parse().unwrap_or_else(|e| fail(format!("--retries: {e}")));
            }
            "--help" | "-h" => {
                println!(
                    "sweep-client [--server HOST:PORT] \
                     health|submit|status|wait|results|stream|stats|run|drain|shutdown"
                );
                return;
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    let command = rest.first().map(String::as_str).unwrap_or("");
    let arg = rest.get(1).map(String::as_str);

    match (command, arg) {
        ("health", _) => {
            for attempt in 0..=retries {
                match client::get(&server, "/health") {
                    Ok(resp) if resp.code == 200 => {
                        println!("{}", resp.text());
                        return;
                    }
                    _ if attempt < retries => std::thread::sleep(POLL),
                    Ok(resp) => fail(format!("health: HTTP {}", resp.code)),
                    Err(e) => fail(format!("health: {e}")),
                }
            }
        }
        ("submit", Some(spec)) => {
            submit(&server, &read_spec(spec));
        }
        ("status", Some(id)) => {
            let id: u64 = id.parse().unwrap_or_else(|e| fail(format!("sweep id: {e}")));
            let resp = client::get(&server, &format!("/sweeps/{id}"))
                .unwrap_or_else(|e| fail(format!("status: {e}")));
            println!("{}", check(resp, "status").text());
        }
        ("wait", Some(id)) => {
            let id: u64 = id.parse().unwrap_or_else(|e| fail(format!("sweep id: {e}")));
            println!("{}", wait(&server, id));
        }
        ("results", Some(id)) => {
            let id: u64 = id.parse().unwrap_or_else(|e| fail(format!("sweep id: {e}")));
            fetch_results(&server, id, out.as_deref());
        }
        ("stream", Some(id)) => {
            let id: u64 = id.parse().unwrap_or_else(|e| fail(format!("sweep id: {e}")));
            let code = client::stream_get(&server, &format!("/sweeps/{id}/stream"), &mut emit)
                .unwrap_or_else(|e| fail(format!("stream: {e}")));
            if code != 200 {
                fail(format!("stream: HTTP {code}"));
            }
        }
        ("stats", _) => {
            let resp = client::get(&server, "/cache/stats").unwrap_or_else(|e| fail(format!("stats: {e}")));
            println!("{}", check(resp, "stats").text());
        }
        ("run", Some(spec)) => {
            let id = submit(&server, &read_spec(spec));
            let status = wait(&server, id);
            println!("{status}");
            fetch_results(&server, id, out.as_deref());
            let failed = sweep_field(&status, "failed").unwrap_or(0);
            if failed > 0 {
                fail(format!("{failed} job(s) failed"));
            }
        }
        ("drain", _) => {
            let resp = client::post(&server, "/drain", b"").unwrap_or_else(|e| fail(format!("drain: {e}")));
            println!("{}", check(resp, "drain").text());
        }
        ("shutdown", _) => {
            let resp =
                client::post(&server, "/shutdown", b"").unwrap_or_else(|e| fail(format!("shutdown: {e}")));
            println!("{}", check(resp, "shutdown").text());
        }
        _ => fail("usage: sweep-client [--server HOST:PORT] <command> (see --help)"),
    }
}
