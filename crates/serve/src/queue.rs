//! A bounded work-stealing thread pool. Each worker owns a deque:
//! submissions land round-robin across the deques, an owner pops its
//! own front (FIFO), and an idle worker steals from the *back* of the
//! longest sibling deque — the classic split that keeps an owner's
//! queue warm while still balancing bursts (one sweep's 28 jobs spread
//! across all workers instead of serializing behind one).
//!
//! Panic containment: a panicking task is caught (the pool's threads
//! must survive arbitrary job code), counted, and the pool moves on —
//! the simulation layer already wraps jobs in
//! [`secmem_bench::run_job_isolated`], so a panic reaching the pool is
//! a bug, but it must not wedge [`WorkPool::drain`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    /// One deque per worker, indexed by worker id.
    queues: Vec<VecDeque<Task>>,
    /// Queued + currently-running task count.
    pending: usize,
    /// No new submissions; workers exit once the queues empty.
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers: work available or shutdown.
    work: Condvar,
    /// Signals waiters in [`WorkPool::drain`]: `pending` hit zero.
    idle: Condvar,
    /// Tasks whose closure panicked (bugs, but contained).
    panicked: AtomicU64,
}

/// A fixed-size work-stealing thread pool for `FnOnce` tasks.
pub struct WorkPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    next: AtomicU64,
}

impl WorkPool {
    /// Spawns a pool of `workers` threads (clamped to at least 1).
    ///
    /// # Panics
    ///
    /// If the OS refuses to spawn a thread; [`WorkPool::try_new`] is the
    /// fallible form.
    pub fn new(workers: usize) -> Self {
        Self::try_new(workers).expect("spawning pool worker threads")
    }

    /// Fallible constructor: spawns `workers` threads (clamped to at
    /// least 1).
    ///
    /// # Errors
    ///
    /// The OS error if a worker thread cannot be spawned.
    pub fn try_new(workers: usize) -> Result<Self, std::io::Error> {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                pending: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            panicked: AtomicU64::new(0),
        });
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("secmem-pool-{id}"))
                .spawn(move || worker_loop(&shared, id))?;
            handles.push(handle);
        }
        Ok(Self { shared, handles, next: AtomicU64::new(0) })
    }

    /// Queues a task; returns `false` (dropping the task) after
    /// [`WorkPool::shutdown`] has begun.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, task: F) -> bool {
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.shutdown {
            return false;
        }
        let n = state.queues.len() as u64;
        let slot = (self.next.fetch_add(1, Ordering::Relaxed) % n) as usize;
        state.queues[slot].push_back(Box::new(task));
        state.pending += 1;
        drop(state);
        self.shared.work.notify_one();
        true
    }

    /// Queued plus currently-running task count.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().unwrap_or_else(PoisonError::into_inner).pending
    }

    /// Number of tasks whose closure panicked (contained, see module doc).
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Blocks until every queued task has finished.
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.pending > 0 {
            state = self.shared.idle.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Begins shutdown without joining: new submissions are rejected and
    /// workers exit once the queues empty. For shared (`Arc`) pools that
    /// cannot be consumed by [`WorkPool::shutdown`]; pair with
    /// [`WorkPool::drain`] to wait for queued work first.
    pub fn stop(&self) {
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.shutdown = true;
        drop(state);
        self.shared.work.notify_all();
    }

    /// Finishes all queued work, then stops and joins every worker.
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that somehow panicked outside a task is already
            // counted via `panicked`; nothing left to propagate.
            let _ = handle.join();
        }
    }
}

/// Takes the next task for worker `id`: own queue front first (FIFO for
/// the owner), then steal from the back of the longest sibling queue.
fn take_task(state: &mut PoolState, id: usize) -> Option<Task> {
    if let Some(task) = state.queues[id].pop_front() {
        return Some(task);
    }
    let victim = (0..state.queues.len())
        .filter(|&v| v != id)
        .max_by_key(|&v| state.queues[v].len())
        .filter(|&v| !state.queues[v].is_empty())?;
    state.queues[victim].pop_back()
}

fn worker_loop(shared: &Shared, id: usize) {
    loop {
        let task = {
            let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(task) = take_task(&mut state, id) {
                    break Some(task);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.work.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(task) = task else {
            return;
        };
        if catch_unwind(AssertUnwindSafe(task)).is_err() {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
        }
        let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.pending -= 1;
        let now_idle = state.pending == 0;
        drop(state);
        if now_idle {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_submitted_task() {
        let pool = WorkPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = counter.clone();
            assert!(pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.pending(), 0);
        pool.shutdown();
    }

    #[test]
    fn idle_workers_steal_queued_bursts() {
        // One worker's queue gets a slow task plus followers; with 4
        // workers the followers must be stolen to finish promptly.
        let pool = WorkPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..16 {
            let counter = counter.clone();
            pool.submit(move || {
                if i % 4 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        pool.shutdown();
    }

    #[test]
    fn panicking_tasks_are_contained() {
        let pool = WorkPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("task bug"));
        for _ in 0..10 {
            let counter = counter.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::SeqCst), 10, "pool survives a panicking task");
        assert_eq!(pool.panicked(), 1);
        pool.shutdown();
    }

    #[test]
    fn shutdown_finishes_queued_work_and_rejects_new() {
        let pool = WorkPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let counter = counter.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 20, "queued work completes before shutdown");
        let pool = WorkPool::new(1);
        let pending = {
            let mut state = pool.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.shutdown = true;
            state.pending
        };
        assert_eq!(pending, 0);
        assert!(!pool.submit(|| ()), "submissions after shutdown are rejected");
        pool.shared.work.notify_all();
        // Drop the handles without joining twice.
    }
}
