//! A small JSON value parser for request bodies (the workspace is
//! dependency-free). Strict RFC 8259 syntax with a depth bound; numbers
//! land in `f64`, objects keep key order in a `Vec` so nothing about the
//! server depends on map iteration order.
//!
//! Incoming sweep specs are *also* run through the structural validator
//! in `secmem-telemetry::chrome` before this parser builds values — one
//! grammar implementation cross-checks the other, and the fuzz harness
//! asserts they accept/reject in agreement.

/// Maximum nesting depth accepted (arrays + objects).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string, escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The string inside `Str`, else `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The bool inside `Bool`, else `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements inside `Arr`, else `None`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object field lookup (first match), else `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A syntax error: byte offset and a static description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What the parser expected.
    pub message: &'static str,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing garbage is an error).
///
/// # Errors
///
/// The first syntax error, with its byte offset.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u', "expected low surrogate")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 is passed through; the input is a
                    // &str so boundaries are already valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        core::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = core::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: no leading zeros.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

/// Escapes a string for embedding in JSON output (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spec_shaped_documents() {
        let v = parse(r#"{"benches":["nw","b+tree"],"cycles":3000,"gpu":"small","deep":[1,[2,[3]]]}"#)
            .expect("parses");
        assert_eq!(v.get("cycles").and_then(Json::as_u64), Some(3000));
        assert_eq!(v.get("gpu").and_then(Json::as_str), Some("small"));
        let benches = v.get("benches").and_then(Json::as_arr).expect("array");
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[1].as_str(), Some("b+tree"));
    }

    #[test]
    fn decodes_escapes_and_unicode() {
        let v = parse(r#""a\n\t\"\\ \u0041 \ud83d\ude00 é""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\n\t\"\\ A 😀 é"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "tru",
            "{\"a\":1} extra",
            "\"unterminated",
            "\"\\ud800x\"",
            "-",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(parse(&deep).expect_err("too deep").message, "nesting too deep");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn numbers_convert_exactly_in_the_integer_range() {
        assert_eq!(parse("5932").expect("parses").as_u64(), Some(5932));
        assert_eq!(parse("0").expect("parses").as_u64(), Some(0));
        assert_eq!(parse("-3").expect("parses").as_u64(), None);
        assert_eq!(parse("1.5").expect("parses").as_u64(), None);
        assert_eq!(parse("1e300").expect("parses").as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\nquote\" back\\slash\ttab\u{1} emoji😀";
        let wire = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&wire).expect("parses").as_str(), Some(nasty));
    }
}
