//! Hand-rolled HTTP/1.1 over `std::io` streams: just enough of RFC 9112
//! for a localhost experiment server — request/response heads, fixed
//! `Content-Length` bodies and chunked transfer encoding for progress
//! streams. Every connection is `Connection: close`, which removes
//! keep-alive state machines from both ends.
//!
//! The head parser ([`parse_head`]) is a pure function over bytes so the
//! fuzz harness can hammer it directly; [`read_request`] adds the I/O
//! and the size caps.

use std::io::{Read, Write};

/// Upper bound on a request/response head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request/response body.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Upper bound on header count in one head.
pub const MAX_HEADERS: usize = 64;

/// Everything that can go wrong reading or parsing an HTTP message.
#[derive(Debug)]
pub enum HttpError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The head grew past [`MAX_HEAD_BYTES`] without a blank line.
    HeadTooLarge,
    /// The declared or streamed body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// The stream ended mid-message.
    Truncated,
    /// The head contains bytes outside printable ASCII + CRLF/TAB.
    NonAscii,
    /// The request/status line is malformed.
    BadStartLine,
    /// Header line `n` (1-based, after the start line) is malformed.
    BadHeader(usize),
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders,
    /// `Content-Length` present but not a decimal integer.
    BadContentLength,
    /// A chunked-encoding size line is malformed.
    BadChunkSize,
}

impl core::fmt::Display for HttpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::HeadTooLarge => write!(f, "head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge => write!(f, "body exceeds {MAX_BODY_BYTES} bytes"),
            HttpError::Truncated => write!(f, "stream ended mid-message"),
            HttpError::NonAscii => write!(f, "head contains non-ASCII or control bytes"),
            HttpError::BadStartLine => write!(f, "malformed request/status line"),
            HttpError::BadHeader(n) => write!(f, "malformed header line {n}"),
            HttpError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            HttpError::BadContentLength => write!(f, "Content-Length is not a decimal integer"),
            HttpError::BadChunkSize => write!(f, "malformed chunk size line"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request head plus its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercase by construction.
    pub method: String,
    /// Request target, e.g. `/sweeps/3/results`.
    pub target: String,
    /// Header `(name, value)` pairs in wire order; names as sent.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// A parsed head: start line split into three parts, plus headers.
/// For requests the parts are (method, target, version); for responses
/// (version, status code, reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// First token of the start line.
    pub part0: String,
    /// Second token.
    pub part1: String,
    /// Rest of the line (may contain spaces — the response reason).
    pub part2: String,
    /// Header `(name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
}

impl Head {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Parsed `Content-Length`, 0 when absent.
    ///
    /// # Errors
    ///
    /// [`HttpError::BadContentLength`] for a non-decimal value and
    /// [`HttpError::BodyTooLarge`] past [`MAX_BODY_BYTES`].
    pub fn content_length(&self) -> Result<usize, HttpError> {
        let Some(v) = self.header("content-length") else {
            return Ok(0);
        };
        let n: usize = v.trim().parse().map_err(|_| HttpError::BadContentLength)?;
        if n > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }
        Ok(n)
    }
}

fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Parses a message head: the bytes of the start line and header lines,
/// up to but **not** including the blank line that terminates the head.
/// Lines are separated by CRLF (a lone LF is also accepted — curl and
/// netcat users type those). Total parse is panic-free for arbitrary
/// input; the fuzz harness leans on that.
///
/// # Errors
///
/// Any [`HttpError`] parse variant; never `Io`.
pub fn parse_head(raw: &[u8]) -> Result<Head, HttpError> {
    if raw.len() > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }
    if raw.iter().any(|&b| !(b == b'\r' || b == b'\n' || b == b'\t' || (0x20..0x7f).contains(&b))) {
        return Err(HttpError::NonAscii);
    }
    let text = core::str::from_utf8(raw).map_err(|_| HttpError::NonAscii)?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let start = lines.next().ok_or(HttpError::BadStartLine)?;

    // Start line: exactly three parts, single-space separated; the third
    // part may itself contain spaces (response reason phrases).
    let (part0, rest) = start.split_once(' ').ok_or(HttpError::BadStartLine)?;
    let (part1, part2) = rest.split_once(' ').unwrap_or((rest, ""));
    // part0 is a method (`GET`) or a version (`HTTP/1.1`), so the token
    // set plus '/'.
    if part0.is_empty() || part1.is_empty() || !part0.bytes().all(|b| is_token_byte(b) || b == b'/') {
        return Err(HttpError::BadStartLine);
    }

    let mut headers = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            // Interior blank line: parse_head receives the head without
            // its terminator, so this is a malformed (folded/empty) header.
            return Err(HttpError::BadHeader(i + 1));
        }
        if headers.len() == MAX_HEADERS {
            return Err(HttpError::TooManyHeaders);
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader(i + 1))?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::BadHeader(i + 1));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(Head { part0: part0.to_string(), part1: part1.to_string(), part2: part2.to_string(), headers })
}

/// Reads bytes until the blank line ending a head; returns the head
/// bytes (terminator stripped) and any body bytes already read past it.
pub(crate) fn read_head_bytes(stream: &mut impl Read) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        // Scan for CRLFCRLF (or LFLF) over what we have.
        if let Some((end, skip)) = find_head_end(&buf) {
            let rest = buf.split_off(end + skip);
            buf.truncate(end);
            return Ok((buf, rest));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Truncated);
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Finds the head terminator: returns (offset of terminator, its length).
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        if buf[i..].starts_with(b"\r\n\r\n") {
            return Some((i, 4));
        }
        if buf[i..].starts_with(b"\n\n") {
            return Some((i, 2));
        }
    }
    None
}

/// Reads one full request (head + `Content-Length` body) from a stream.
///
/// # Errors
///
/// I/O errors and every parse failure of [`parse_head`].
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    let (head_bytes, mut body) = read_head_bytes(stream)?;
    let head = parse_head(&head_bytes)?;
    if !head.part2.starts_with("HTTP/1.") {
        return Err(HttpError::BadStartLine);
    }
    let want = head.content_length()?;
    read_body_more(stream, &mut body, want)?;
    Ok(Request { method: head.part0.to_ascii_uppercase(), target: head.part1, headers: head.headers, body })
}

/// Grows `body` from the stream until it holds `want` bytes.
pub(crate) fn read_body_more(
    stream: &mut impl Read,
    body: &mut Vec<u8>,
    want: usize,
) -> Result<(), HttpError> {
    if body.len() > want {
        // Pipelined bytes past the declared body: with Connection: close
        // semantics nothing may follow, so treat it as malformed.
        return Err(HttpError::BadContentLength);
    }
    let mut chunk = [0u8; 4096];
    while body.len() < want {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Truncated);
        }
        if body.len() + n > want {
            return Err(HttpError::BadContentLength);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(())
}

/// A parsed response (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub code: u16,
    /// Header pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// Decoded body (chunked transfer already reassembled).
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one full response, decoding `Content-Length` or chunked bodies.
/// Without either, reads to EOF (legal under `Connection: close`).
///
/// # Errors
///
/// I/O errors and every parse failure of [`parse_head`].
pub fn read_response(stream: &mut impl Read) -> Result<Response, HttpError> {
    let (head_bytes, pre) = read_head_bytes(stream)?;
    let head = parse_head(&head_bytes)?;
    if !head.part0.starts_with("HTTP/1.") {
        return Err(HttpError::BadStartLine);
    }
    let code: u16 = head.part1.parse().map_err(|_| HttpError::BadStartLine)?;
    let chunked = head.header("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        let mut reader = ChunkReader::new(stream, pre);
        let mut body = Vec::new();
        while let Some(chunk) = reader.next_chunk()? {
            if body.len() + chunk.len() > MAX_BODY_BYTES {
                return Err(HttpError::BodyTooLarge);
            }
            body.extend_from_slice(&chunk);
        }
        body
    } else if head.header("content-length").is_some() {
        let want = head.content_length()?;
        let mut body = pre;
        read_body_more(stream, &mut body, want)?;
        body
    } else {
        let mut body = pre;
        stream.read_to_end(&mut body)?;
        if body.len() > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }
        body
    };
    Ok(Response { code, headers: head.headers, body })
}

/// Incremental chunked-transfer decoder: yields one chunk at a time so a
/// progress stream can be consumed as it is produced.
pub struct ChunkReader<'a, R: Read> {
    stream: &'a mut R,
    buf: Vec<u8>,
    done: bool,
}

impl<'a, R: Read> ChunkReader<'a, R> {
    /// Wraps a stream, with `pre` holding bytes already read past the head.
    pub fn new(stream: &'a mut R, pre: Vec<u8>) -> Self {
        Self { stream, buf: pre, done: false }
    }

    fn fill(&mut self) -> Result<usize, HttpError> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Next decoded chunk, or `None` after the terminal zero-size chunk.
    ///
    /// # Errors
    ///
    /// I/O errors, [`HttpError::BadChunkSize`], [`HttpError::Truncated`].
    pub fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, HttpError> {
        if self.done {
            return Ok(None);
        }
        // Read the size line.
        let line = loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                    line.pop();
                }
                break line;
            }
            if self.buf.len() > 1024 {
                return Err(HttpError::BadChunkSize);
            }
            if self.fill()? == 0 {
                return Err(HttpError::Truncated);
            }
        };
        let text = core::str::from_utf8(&line).map_err(|_| HttpError::BadChunkSize)?;
        let size_part = text.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_part, 16).map_err(|_| HttpError::BadChunkSize)?;
        if size > MAX_BODY_BYTES {
            return Err(HttpError::BodyTooLarge);
        }
        if size == 0 {
            self.done = true;
            return Ok(None);
        }
        // Read size bytes + trailing CRLF.
        while self.buf.len() < size + 2 {
            if self.fill()? == 0 {
                return Err(HttpError::Truncated);
            }
        }
        let chunk: Vec<u8> = self.buf.drain(..size).collect();
        // Drop the chunk's trailing CRLF (or bare LF).
        if self.buf.first() == Some(&b'\r') {
            self.buf.remove(0);
        }
        if self.buf.first() == Some(&b'\n') {
            self.buf.remove(0);
        }
        Ok(Some(chunk))
    }
}

/// Reason phrase for the status codes this server emits.
fn reason(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a complete fixed-length response and flushes it.
///
/// # Errors
///
/// I/O errors from the underlying stream.
pub fn write_response(
    stream: &mut impl Write,
    code: u16,
    content_type: &str,
    body: &[u8],
) -> Result<(), HttpError> {
    write!(
        stream,
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(code),
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    Ok(())
}

/// Starts a chunked response; follow with [`write_chunk`] and
/// [`finish_chunked`].
///
/// # Errors
///
/// I/O errors from the underlying stream.
pub fn start_chunked(stream: &mut impl Write, code: u16, content_type: &str) -> Result<(), HttpError> {
    write!(
        stream,
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        reason(code)
    )?;
    stream.flush()?;
    Ok(())
}

/// Writes one chunk of a chunked response (empty data is skipped: a
/// zero-size chunk would terminate the stream).
///
/// # Errors
///
/// I/O errors from the underlying stream.
pub fn write_chunk(stream: &mut impl Write, data: &[u8]) -> Result<(), HttpError> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()?;
    Ok(())
}

/// Terminates a chunked response.
///
/// # Errors
///
/// I/O errors from the underlying stream.
pub fn finish_chunked(stream: &mut impl Write) -> Result<(), HttpError> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_head() {
        let head = parse_head(b"POST /sweeps HTTP/1.1\r\nHost: x\r\nContent-Length: 12").expect("parses");
        assert_eq!(head.part0, "POST");
        assert_eq!(head.part1, "/sweeps");
        assert_eq!(head.part2, "HTTP/1.1");
        assert_eq!(head.header("content-length"), Some("12"));
        assert_eq!(head.content_length().expect("length"), 12);
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(matches!(parse_head(b""), Err(HttpError::BadStartLine)));
        assert!(matches!(parse_head(b"GET"), Err(HttpError::BadStartLine)));
        assert!(matches!(parse_head(b"GET /x HTTP/1.1\nno-colon-here"), Err(HttpError::BadHeader(1))));
        assert!(matches!(parse_head(b"GET /x HTTP/1.1\n: empty"), Err(HttpError::BadHeader(1))));
        assert!(matches!(parse_head(b"G\x01T / HTTP/1.1"), Err(HttpError::NonAscii)));
        assert!(matches!(parse_head("GÉ / HTTP/1.1".as_bytes()), Err(HttpError::NonAscii)));
    }

    #[test]
    fn caps_are_enforced() {
        let big = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(matches!(parse_head(&big), Err(HttpError::HeadTooLarge)));
        let mut many = b"GET / HTTP/1.1".to_vec();
        for i in 0..=MAX_HEADERS {
            many.extend_from_slice(format!("\r\nh{i}: v").as_bytes());
        }
        assert!(matches!(parse_head(&many), Err(HttpError::TooManyHeaders)));
        let head = parse_head(b"POST / HTTP/1.1\r\nContent-Length: 99999999999").expect("parses");
        assert!(matches!(head.content_length(), Err(HttpError::BodyTooLarge)));
    }

    #[test]
    fn reads_full_request_from_stream() {
        let wire = b"POST /sweeps HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut &wire[..]).expect("reads");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/sweeps");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn response_round_trips_fixed_and_chunked() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "application/json", b"{\"ok\":true}").expect("writes");
        let resp = read_response(&mut &wire[..]).expect("reads");
        assert_eq!(resp.code, 200);
        assert_eq!(resp.body, b"{\"ok\":true}");

        let mut wire = Vec::new();
        start_chunked(&mut wire, 200, "text/plain").expect("starts");
        write_chunk(&mut wire, b"first ").expect("chunk");
        write_chunk(&mut wire, b"second").expect("chunk");
        finish_chunked(&mut wire).expect("finishes");
        let resp = read_response(&mut &wire[..]).expect("reads");
        assert_eq!(resp.code, 200);
        assert_eq!(resp.text(), "first second");
    }

    #[test]
    fn chunk_reader_is_incremental() {
        let mut body = Vec::new();
        write_chunk(&mut body, b"one\n").expect("chunk");
        write_chunk(&mut body, b"two\n").expect("chunk");
        finish_chunked(&mut body).expect("finish");
        let mut stream = &body[..];
        let mut reader = ChunkReader::new(&mut stream, Vec::new());
        assert_eq!(reader.next_chunk().expect("chunk"), Some(b"one\n".to_vec()));
        assert_eq!(reader.next_chunk().expect("chunk"), Some(b"two\n".to_vec()));
        assert_eq!(reader.next_chunk().expect("chunk"), None);
        assert_eq!(reader.next_chunk().expect("chunk"), None, "stays done");
    }

    #[test]
    fn truncated_streams_error() {
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert!(matches!(read_request(&mut &wire[..]), Err(HttpError::Truncated)));
        let wire = b"GET / HTTP/1.1\r\nNo-Terminator: yes";
        assert!(matches!(read_request(&mut &wire[..]), Err(HttpError::Truncated)));
    }
}
