//! The sweep server: accepts HTTP connections on a bounded thread pool,
//! expands submitted sweep specs into jobs on the work-stealing
//! simulation pool, and answers repeated specs from the
//! content-addressed result cache.
//!
//! Request flow:
//!
//! ```text
//! client ──HTTP──▶ http pool ──POST /sweeps──▶ SweepSpec::jobs()
//!                                   │ one task per job
//!                                   ▼
//!                        work-stealing sim pool
//!                                   │ cache.get_or_compute(job_fingerprint)
//!                                   ▼
//!                  ResultCache ──miss──▶ run_job_isolated + WarmCache
//! ```
//!
//! Every job funnels through [`ResultCache::get_or_compute`], so a
//! repeated submission — or two clients racing the same spec — costs
//! zero extra simulations; the `simulations` counter exposed by
//! `GET /cache/stats` proves it.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use secmem_bench::sweep::{job_fingerprint, report_fingerprint, SweepSpec};
use secmem_bench::{run_job_isolated, Job, RunResult, WarmCache};
use secmem_gpusim::kernel::Kernel;

use crate::cache::{CacheRole, ResultCache};
use crate::http;
use crate::json;
use crate::queue::WorkPool;
use crate::spec::{parse_sweep_spec, render_sweep_spec};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks a free one).
    pub addr: String,
    /// Simulation worker threads (0 = available parallelism).
    pub sim_workers: usize,
    /// HTTP connection-handler threads.
    pub http_threads: usize,
    /// Result-cache capacity in entries (0 = unbounded).
    pub cache_capacity: usize,
    /// Worker threads *inside* each simulator (partition/SM stepping;
    /// see `Simulator::set_threads`). Jobs are already parallel across
    /// `sim_workers`, so raising this oversubscribes unless
    /// `sim_workers` is lowered to match; results are byte-identical at
    /// every value. Defaults to 1.
    pub sim_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8642".into(),
            sim_workers: 0,
            http_threads: 4,
            cache_capacity: 4096,
            sim_threads: 1,
        }
    }
}

/// Binding or serving failed.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or thread-spawn operation failed.
    Io(std::io::Error),
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "server i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One submitted sweep and its progress.
struct SweepEntry {
    id: u64,
    spec: SweepSpec,
    total: usize,
    state: Mutex<SweepProgress>,
    /// Signaled on every job completion (status pollers, streamers).
    cond: Condvar,
}

struct SweepProgress {
    done: usize,
    failed: usize,
    /// Jobs served from the cache (hit or coalesced) instead of computed.
    cache_hits: usize,
    /// One slot per job, spec order; `None` until done (or failed).
    results: Vec<Option<Arc<RunResult>>>,
    /// One JSON line per completed job, appended in completion order.
    events: Vec<String>,
}

impl SweepEntry {
    fn lock(&self) -> MutexGuard<'_, SweepProgress> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shared server state: the cache, the sweeps, and the counters.
struct ServerState {
    cache: ResultCache<RunResult>,
    /// Warm-checkpoint forks shared across all jobs (PR 6).
    warm: WarmCache,
    sweeps: Mutex<BTreeMap<u64, Arc<SweepEntry>>>,
    next_sweep: AtomicU64,
    /// Simulations actually executed (cache misses that ran). The
    /// end-to-end determinism gate asserts this does NOT grow on a
    /// repeated submission.
    simulations: AtomicU64,
    draining: AtomicBool,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// Per-simulator stepping threads applied to every queued job.
    sim_threads: usize,
}

impl ServerState {
    fn sweeps(&self) -> MutexGuard<'_, BTreeMap<u64, Arc<SweepEntry>>> {
        self.sweeps.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sweep server. [`Server::bind`] then [`Server::run`]; `run`
/// returns after a `POST /shutdown` has drained the pools.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    http_pool: WorkPool,
    sim_pool: Arc<WorkPool>,
}

impl Server {
    /// Binds the listener and spawns both thread pools.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound or threads
    /// cannot be spawned.
    pub fn bind(cfg: &ServerConfig) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(ServeError::Io)?;
        let addr = listener.local_addr().map_err(ServeError::Io)?;
        let sim_workers = if cfg.sim_workers == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            cfg.sim_workers
        };
        let state = Arc::new(ServerState {
            cache: ResultCache::new(cfg.cache_capacity),
            warm: WarmCache::new(),
            sweeps: Mutex::new(BTreeMap::new()),
            next_sweep: AtomicU64::new(1),
            simulations: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            addr,
            sim_threads: cfg.sim_threads.max(1),
        });
        let http_pool = WorkPool::try_new(cfg.http_threads.max(1)).map_err(ServeError::Io)?;
        let sim_pool = Arc::new(WorkPool::try_new(sim_workers).map_err(ServeError::Io)?);
        Ok(Self { listener, state, http_pool, sim_pool })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until shutdown: accepts connections and hands each to the
    /// HTTP pool. On `POST /shutdown`, stops accepting, completes queued
    /// simulations, and joins the HTTP pool.
    ///
    /// # Errors
    ///
    /// Currently infallible after bind (accept errors on individual
    /// connections are skipped); typed for forward compatibility.
    pub fn run(self) -> Result<(), ServeError> {
        let Server { listener, state, http_pool, sim_pool } = self;
        for stream in listener.incoming() {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            let state = state.clone();
            let sim_pool = sim_pool.clone();
            http_pool.submit(move || handle_connection(&state, &sim_pool, &mut stream));
        }
        // Graceful teardown: finish in-flight HTTP exchanges and queued
        // simulations, then release the workers.
        http_pool.shutdown();
        sim_pool.drain();
        sim_pool.stop();
        Ok(())
    }
}

/// Runs one job through the cache, recording progress on its sweep.
fn execute_job(state: &ServerState, entry: &SweepEntry, index: usize, job: &Job) {
    let fp = job_fingerprint(job);
    let (result, role) = state.cache.get_or_compute(fp, || {
        state.simulations.fetch_add(1, Ordering::SeqCst);
        run_job_isolated(job, &state.warm).ok()
    });

    let mut progress = entry.lock();
    progress.done += 1;
    let cached = role != CacheRole::Computed;
    if cached {
        progress.cache_hits += 1;
    }
    let mut event = format!(
        "{{\"sweep\":{},\"job\":{},\"bench\":\"{}\",\"scheme\":\"{}\",\"done\":{},\"total\":{},\"cached\":{}",
        entry.id,
        index,
        json::escape(job.kernel.name()),
        json::escape(&job.label),
        progress.done,
        entry.total,
        cached
    );
    match &result {
        Some(r) => {
            event.push_str(&format!(",\"ok\":true,\"fp\":\"{:016x}\"", report_fingerprint(&r.report)));
            if let Some(snap) = &r.telemetry {
                if let Some(series) = snap.series("dram.data_bytes") {
                    event.push_str(&format!(",\"dram_bytes\":{}", series.total() as u64));
                }
            }
        }
        None => {
            progress.failed += 1;
            event.push_str(",\"ok\":false");
        }
    }
    event.push('}');
    progress.results[index] = result;
    progress.events.push(event);
    drop(progress);
    entry.cond.notify_all();
}

fn err_body(message: &str) -> Vec<u8> {
    format!("{{\"error\":\"{}\"}}", json::escape(message)).into_bytes()
}

/// Parses and dispatches one connection (one request: all responses are
/// `Connection: close`). Write failures are ignored — the client hung up.
fn handle_connection(state: &Arc<ServerState>, sim_pool: &Arc<WorkPool>, stream: &mut TcpStream) {
    let request = match http::read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = http::write_response(stream, 400, "application/json", &err_body(&e.to_string()));
            return;
        }
    };
    let target = request.target.split('?').next().unwrap_or("");
    let parts: Vec<&str> = target.split('/').filter(|p| !p.is_empty()).collect();
    let outcome = match (request.method.as_str(), parts.as_slice()) {
        ("GET", ["health"]) => get_health(state, sim_pool, stream),
        ("POST", ["sweeps"]) => post_sweep(state, sim_pool, stream, &request.body),
        ("GET", ["sweeps", id]) => get_sweep_status(state, stream, id),
        ("GET", ["sweeps", id, "results"]) => get_sweep_results(state, stream, id),
        ("GET", ["sweeps", id, "stream"]) => get_sweep_stream(state, stream, id),
        ("GET", ["cache", "stats"]) => get_cache_stats(state, stream),
        ("POST", ["drain"]) => post_drain(state, sim_pool, stream),
        ("POST", ["shutdown"]) => post_shutdown(state, stream),
        (_, ["health" | "sweeps" | "cache" | "drain" | "shutdown", ..]) => {
            http::write_response(stream, 405, "application/json", &err_body("method not allowed"))
        }
        _ => http::write_response(stream, 404, "application/json", &err_body("no such endpoint")),
    };
    // The only interesting failures are I/O on a departed client.
    let _ = outcome;
}

fn get_health(
    state: &ServerState,
    sim_pool: &WorkPool,
    stream: &mut TcpStream,
) -> Result<(), http::HttpError> {
    let body = format!(
        "{{\"status\":\"ok\",\"pending_jobs\":{},\"draining\":{}}}",
        sim_pool.pending(),
        state.draining.load(Ordering::SeqCst)
    );
    http::write_response(stream, 200, "application/json", body.as_bytes())
}

fn post_sweep(
    state: &Arc<ServerState>,
    sim_pool: &Arc<WorkPool>,
    stream: &mut TcpStream,
    body: &[u8],
) -> Result<(), http::HttpError> {
    if state.draining.load(Ordering::SeqCst) {
        return http::write_response(stream, 503, "application/json", &err_body("server is draining"));
    }
    let text = match core::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            return http::write_response(stream, 400, "application/json", &err_body("body is not utf-8"))
        }
    };
    let spec = match parse_sweep_spec(text) {
        Ok(s) => s,
        Err(e) => return http::write_response(stream, 400, "application/json", &err_body(&e.to_string())),
    };
    // A parsed spec expands infallibly (parse already validated), but
    // stay typed rather than unwrap.
    let mut jobs = match spec.jobs() {
        Ok(j) => j,
        Err(e) => return http::write_response(stream, 400, "application/json", &err_body(&e.to_string())),
    };
    // The stepping thread count is a server knob, not spec content: it
    // cannot change results (byte-identical at every value) and must
    // not change job fingerprints, or the cache would stop coalescing.
    for job in &mut jobs {
        job.sim_threads = state.sim_threads;
    }

    let id = state.next_sweep.fetch_add(1, Ordering::SeqCst);
    let entry = Arc::new(SweepEntry {
        id,
        spec,
        total: jobs.len(),
        state: Mutex::new(SweepProgress {
            done: 0,
            failed: 0,
            cache_hits: 0,
            results: vec![None; jobs.len()],
            events: Vec::new(),
        }),
        cond: Condvar::new(),
    });
    state.sweeps().insert(id, entry.clone());
    let total = jobs.len();
    for (index, job) in jobs.into_iter().enumerate() {
        let state = state.clone();
        let entry = entry.clone();
        let accepted = sim_pool.submit(move || execute_job(&state, &entry, index, &job));
        if !accepted {
            // Shutdown raced the submission: report what was queued.
            let body = err_body("server is shutting down");
            return http::write_response(stream, 503, "application/json", &body);
        }
    }
    let body = format!("{{\"sweep\":{id},\"jobs\":{total}}}");
    http::write_response(stream, 200, "application/json", body.as_bytes())
}

/// Looks up a sweep by its path segment.
fn sweep_by_id(state: &ServerState, id: &str) -> Option<Arc<SweepEntry>> {
    let id: u64 = id.parse().ok()?;
    state.sweeps().get(&id).cloned()
}

fn status_body(entry: &SweepEntry) -> String {
    let progress = entry.lock();
    format!(
        "{{\"sweep\":{},\"total\":{},\"done\":{},\"failed\":{},\"cache_hits\":{},\"complete\":{},\"spec\":{}}}",
        entry.id,
        entry.total,
        progress.done,
        progress.failed,
        progress.cache_hits,
        progress.done == entry.total,
        render_sweep_spec(&entry.spec)
    )
}

fn get_sweep_status(state: &ServerState, stream: &mut TcpStream, id: &str) -> Result<(), http::HttpError> {
    match sweep_by_id(state, id) {
        Some(entry) => http::write_response(stream, 200, "application/json", status_body(&entry).as_bytes()),
        None => http::write_response(stream, 404, "application/json", &err_body("no such sweep")),
    }
}

fn get_sweep_results(state: &ServerState, stream: &mut TcpStream, id: &str) -> Result<(), http::HttpError> {
    let Some(entry) = sweep_by_id(state, id) else {
        return http::write_response(stream, 404, "application/json", &err_body("no such sweep"));
    };
    let results: Vec<RunResult> = {
        let progress = entry.lock();
        if progress.done < entry.total {
            let body = err_body("sweep still running; poll status or use /stream");
            return http::write_response(stream, 409, "application/json", &body);
        }
        progress.results.iter().flatten().map(|r| (**r).clone()).collect()
    };
    let csv = entry.spec.results_table(&results).to_csv();
    http::write_response(stream, 200, "text/csv", csv.as_bytes())
}

fn get_sweep_stream(state: &ServerState, stream: &mut TcpStream, id: &str) -> Result<(), http::HttpError> {
    let Some(entry) = sweep_by_id(state, id) else {
        return http::write_response(stream, 404, "application/json", &err_body("no such sweep"));
    };
    http::start_chunked(stream, 200, "application/x-ndjson")?;
    let mut sent = 0;
    loop {
        let (batch, complete) = {
            let mut progress = entry.lock();
            while progress.events.len() == sent && progress.done < entry.total {
                progress = entry.cond.wait(progress).unwrap_or_else(PoisonError::into_inner);
            }
            let batch: Vec<String> = progress.events[sent..].to_vec();
            (batch, progress.done == entry.total)
        };
        sent += batch.len();
        for line in &batch {
            http::write_chunk(stream, format!("{line}\n").as_bytes())?;
        }
        if complete {
            return http::finish_chunked(stream);
        }
    }
}

fn get_cache_stats(state: &ServerState, stream: &mut TcpStream) -> Result<(), http::HttpError> {
    let stats = state.cache.stats();
    let body = format!(
        "{{\"entries\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\"coalesced\":{},\"evictions\":{},\
         \"failures\":{},\"simulations\":{}}}",
        stats.entries,
        stats.capacity,
        stats.hits,
        stats.misses,
        stats.coalesced,
        stats.evictions,
        stats.failures,
        state.simulations.load(Ordering::SeqCst)
    );
    http::write_response(stream, 200, "application/json", body.as_bytes())
}

fn post_drain(
    state: &ServerState,
    sim_pool: &WorkPool,
    stream: &mut TcpStream,
) -> Result<(), http::HttpError> {
    state.draining.store(true, Ordering::SeqCst);
    sim_pool.drain();
    http::write_response(stream, 200, "application/json", b"{\"status\":\"drained\"}")
}

fn post_shutdown(state: &ServerState, stream: &mut TcpStream) -> Result<(), http::HttpError> {
    state.draining.store(true, Ordering::SeqCst);
    state.shutdown.store(true, Ordering::SeqCst);
    let outcome = http::write_response(stream, 200, "application/json", b"{\"status\":\"shutting down\"}");
    // Wake the blocking accept loop so it observes the flag.
    let _ = TcpStream::connect(state.addr);
    outcome
}
