//! The content-addressed result cache: a bounded, thread-safe map from
//! job fingerprints ([`secmem_bench::sweep::job_fingerprint`]) to shared
//! results, with in-flight coalescing — concurrent requests for the
//! same fingerprint run **one** simulation and everyone else blocks on
//! the condvar until it lands.
//!
//! Because a fingerprint covers everything that determines a job's
//! outcome and the simulator is deterministic, a cached value is not an
//! approximation of re-running the job — it *is* the result, byte for
//! byte. That is what lets the server answer a repeated sweep with zero
//! re-simulations (the end-to-end gate in `tests/server_e2e.rs`).
//!
//! `BTreeMap`/`BTreeSet` keep the cache's own behavior deterministic
//! (lint D2): stats and eviction order are functions of the request
//! history, never of hasher seeding.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheRole {
    /// This caller ran the computation.
    Computed,
    /// The value was already cached.
    Hit,
    /// Another caller was computing it; this one waited and shared.
    Coalesced,
}

/// A point-in-time copy of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the map.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Lookups that waited on a concurrent identical computation.
    pub coalesced: u64,
    /// Entries dropped by LRU eviction.
    pub evictions: u64,
    /// Computations that produced no value (failed jobs; not cached).
    pub failures: u64,
    /// Current entry count.
    pub entries: usize,
    /// Configured capacity (0 = unbounded).
    pub capacity: usize,
}

struct Inner<V> {
    map: BTreeMap<u64, Arc<V>>,
    /// Keys in least-recently-used-first order (front = next victim).
    lru: VecDeque<u64>,
    /// Keys currently being computed by some caller.
    inflight: BTreeSet<u64>,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
    failures: u64,
}

/// A bounded LRU cache with single-flight computation per key.
pub struct ResultCache<V> {
    inner: Mutex<Inner<V>>,
    cond: Condvar,
    capacity: usize,
}

impl<V> ResultCache<V> {
    /// Creates a cache holding up to `capacity` entries (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: BTreeMap::new(),
                lru: VecDeque::new(),
                inflight: BTreeSet::new(),
                hits: 0,
                misses: 0,
                coalesced: 0,
                evictions: 0,
                failures: 0,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<V>> {
        // A poisoned mutex means some caller panicked between lock and
        // unlock; the counters and map are still structurally sound, so
        // keep serving rather than cascading the panic.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up `key`, computing it with `compute` on a miss. Concurrent
    /// callers with the same key coalesce: exactly one runs `compute`,
    /// the rest block until the value (or failure) is published.
    ///
    /// A `None` from `compute` is a failure: nothing is cached, waiters
    /// get `None` back, and a later call may retry the computation.
    pub fn get_or_compute<F>(&self, key: u64, compute: F) -> (Option<Arc<V>>, CacheRole)
    where
        F: FnOnce() -> Option<V>,
    {
        let mut role = CacheRole::Hit;
        let mut inner = self.lock();
        loop {
            if let Some(value) = inner.map.get(&key).cloned() {
                inner.hits += 1;
                touch(&mut inner.lru, key);
                return (Some(value), role);
            }
            if inner.inflight.contains(&key) {
                role = CacheRole::Coalesced;
                inner.coalesced += 1;
                inner = self.cond.wait(inner).unwrap_or_else(PoisonError::into_inner);
                // Re-check: the computer may have succeeded (map hit),
                // failed (retry falls to us), or an eviction raced us.
                continue;
            }
            inner.inflight.insert(key);
            inner.misses += 1;
            break;
        }
        drop(inner);

        let computed = compute();

        let mut inner = self.lock();
        inner.inflight.remove(&key);
        let result = match computed {
            Some(value) => {
                let value = Arc::new(value);
                inner.map.insert(key, value.clone());
                touch(&mut inner.lru, key);
                while self.capacity > 0 && inner.map.len() > self.capacity {
                    let Some(victim) = inner.lru.pop_front() else {
                        break;
                    };
                    if victim == key {
                        // Never evict the entry just inserted; re-queue it.
                        inner.lru.push_back(victim);
                        continue;
                    }
                    inner.map.remove(&victim);
                    inner.evictions += 1;
                }
                Some(value)
            }
            None => {
                inner.failures += 1;
                None
            }
        };
        drop(inner);
        self.cond.notify_all();
        (result, CacheRole::Computed)
    }

    /// A value already in the cache, without computing (marks a hit and
    /// touches LRU when present; counts nothing when absent).
    pub fn peek(&self, key: u64) -> Option<Arc<V>> {
        let mut inner = self.lock();
        let value = inner.map.get(&key).cloned();
        if value.is_some() {
            inner.hits += 1;
            touch(&mut inner.lru, key);
        }
        value
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            coalesced: inner.coalesced,
            evictions: inner.evictions,
            failures: inner.failures,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

/// Moves `key` to the most-recently-used end of the LRU order.
fn touch(lru: &mut VecDeque<u64>, key: u64) {
    if let Some(pos) = lru.iter().position(|&k| k == key) {
        lru.remove(pos);
    }
    lru.push_back(key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn hit_miss_and_counters() {
        let cache: ResultCache<u64> = ResultCache::new(8);
        let (v, role) = cache.get_or_compute(1, || Some(10));
        assert_eq!((*v.expect("value"), role), (10, CacheRole::Computed));
        let (v, role) = cache.get_or_compute(1, || panic!("must not recompute"));
        assert_eq!((*v.expect("value"), role), (10, CacheRole::Hit));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache: ResultCache<u64> = ResultCache::new(2);
        cache.get_or_compute(1, || Some(1));
        cache.get_or_compute(2, || Some(2));
        cache.get_or_compute(1, || unreachable!("hit")); // 1 now most recent
        cache.get_or_compute(3, || Some(3)); // evicts 2
        assert!(cache.peek(2).is_none());
        assert!(cache.peek(1).is_some());
        assert!(cache.peek(3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn failures_are_not_cached_and_can_retry() {
        let cache: ResultCache<u64> = ResultCache::new(8);
        let (v, role) = cache.get_or_compute(1, || None);
        assert!(v.is_none());
        assert_eq!(role, CacheRole::Computed);
        assert_eq!(cache.stats().failures, 1);
        let (v, _) = cache.get_or_compute(1, || Some(5));
        assert_eq!(*v.expect("retry succeeds"), 5);
    }

    #[test]
    fn unbounded_capacity_never_evicts() {
        let cache: ResultCache<u64> = ResultCache::new(0);
        for k in 0..100 {
            cache.get_or_compute(k, || Some(k));
        }
        assert_eq!(cache.stats().entries, 100);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn concurrent_identical_keys_coalesce_to_one_computation() {
        let cache = Arc::new(ResultCache::<u64>::new(8));
        let computations = Arc::new(AtomicU64::new(0));
        let start = Arc::new(std::sync::Barrier::new(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let computations = computations.clone();
                let start = start.clone();
                std::thread::spawn(move || {
                    start.wait();
                    cache.get_or_compute(42, || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so the others really do
                        // arrive while this computation is in flight.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Some(7)
                    })
                })
            })
            .collect();
        let mut computed = 0;
        for t in threads {
            let (v, role) = t.join().expect("no panic");
            assert_eq!(*v.expect("value"), 7);
            if role == CacheRole::Computed {
                computed += 1;
            }
        }
        assert_eq!(computations.load(Ordering::SeqCst), 1, "exactly one simulation ran");
        assert_eq!(computed, 1);
        assert_eq!(cache.stats().misses, 1);
        assert!(cache.stats().coalesced >= 1, "at least one caller waited");
    }
}
