//! The sweep-spec wire format: a flat JSON object describing a
//! [`SweepSpec`], parsed with typed errors and rendered back for the
//! client. Unknown keys are rejected — a typo'd `"cycels"` should fail
//! the submission, not silently run 120k-cycle defaults.
//!
//! ```text
//! {
//!   "benches": ["nw", "b+tree"],          // required, Table-IV names
//!   "schemes": ["baseline", "ctr"],       // default: all seven
//!   "gpu": "small",                       // "volta" (default) | "small"
//!   "cycles": 3000,                       // default 120000
//!   "warmup": 0,                          // default 0
//!   "seed": 1516,                         // default DEFAULT_SEED
//!   "sample_interval": 512,               // optional: enables telemetry
//!   "l2_bytes_per_bank": 65536,           // optional geometry override
//!   "l2_assoc": 8                         // optional geometry override
//! }
//! ```
//!
//! Geometry overrides are validated against [`GpuConfig::validate`]
//! before any job is queued, so an impossible cache shape is a 400,
//! never a panicking pool worker.
//!
//! [`GpuConfig::validate`]: secmem_gpusim::config::GpuConfig::validate

use secmem_bench::sweep::{scheme_by_label, GpuPreset, SweepError, SweepSpec, ALL_SCHEMES};
use secmem_telemetry::chrome;
use secmem_workloads::suite::DEFAULT_SEED;

use crate::json::{self, Json};

/// A sweep-spec parse/validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The body failed the telemetry crate's JSON validator.
    Syntax(chrome::JsonSyntaxError),
    /// The body failed this crate's JSON parser (the validators are
    /// cross-checked by the fuzz harness, so seeing this variant means
    /// the two grammars disagree — a bug worth a fixture).
    Json(json::JsonError),
    /// The top-level value is not an object.
    NotAnObject,
    /// An unrecognized top-level key.
    UnknownKey(String),
    /// A key holds the wrong shape.
    BadField {
        /// The offending key.
        field: &'static str,
        /// What the parser wanted there.
        expected: &'static str,
    },
    /// A scheme label not in the paper's seven.
    UnknownScheme(String),
    /// A GPU preset label other than `volta` / `small`.
    UnknownGpu(String),
    /// The spec parsed but failed semantic validation.
    Sweep(SweepError),
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecError::Syntax(e) => write!(f, "invalid json at byte {}: {}", e.offset, e.message),
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::NotAnObject => write!(f, "sweep spec must be a json object"),
            SpecError::UnknownKey(k) => write!(f, "unknown sweep-spec key '{k}'"),
            SpecError::BadField { field, expected } => write!(f, "field '{field}' must be {expected}"),
            SpecError::UnknownScheme(s) => write!(f, "unknown scheme '{s}'"),
            SpecError::UnknownGpu(g) => write!(f, "unknown gpu preset '{g}' (volta|small)"),
            SpecError::Sweep(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpecError {}

fn string_array(value: &Json, field: &'static str) -> Result<Vec<String>, SpecError> {
    let items = value.as_arr().ok_or(SpecError::BadField { field, expected: "an array of strings" })?;
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or(SpecError::BadField { field, expected: "an array of strings" })
        })
        .collect()
}

fn u64_field(value: &Json, field: &'static str) -> Result<u64, SpecError> {
    value.as_u64().ok_or(SpecError::BadField { field, expected: "a non-negative integer" })
}

/// Parses and validates a sweep-spec body.
///
/// The text is first checked by the telemetry crate's JSON validator
/// (the machinery that already guards Chrome trace output), then built
/// into a [`SweepSpec`] by this crate's parser and semantically
/// validated by [`SweepSpec::validate`].
///
/// # Errors
///
/// Every [`SpecError`] variant.
pub fn parse_sweep_spec(text: &str) -> Result<SweepSpec, SpecError> {
    chrome::validate_json(text).map_err(SpecError::Syntax)?;
    let value = json::parse(text).map_err(SpecError::Json)?;
    let Json::Obj(fields) = &value else {
        return Err(SpecError::NotAnObject);
    };

    let mut spec = SweepSpec {
        benches: Vec::new(),
        schemes: ALL_SCHEMES.to_vec(),
        gpu: GpuPreset::Volta,
        cycles: 120_000,
        warmup: 0,
        seed: DEFAULT_SEED,
        sample_interval: None,
        l2_bytes_per_bank: None,
        l2_assoc: None,
    };
    for (key, val) in fields {
        match key.as_str() {
            "benches" => spec.benches = string_array(val, "benches")?,
            "schemes" => {
                spec.schemes = string_array(val, "schemes")?
                    .into_iter()
                    .map(|label| scheme_by_label(&label).ok_or(SpecError::UnknownScheme(label)))
                    .collect::<Result<_, _>>()?;
            }
            "gpu" => {
                let label = val
                    .as_str()
                    .ok_or(SpecError::BadField { field: "gpu", expected: "\"volta\" or \"small\"" })?;
                spec.gpu = GpuPreset::from_label(label).ok_or_else(|| SpecError::UnknownGpu(label.into()))?;
            }
            "cycles" => spec.cycles = u64_field(val, "cycles")?,
            "warmup" => spec.warmup = u64_field(val, "warmup")?,
            "seed" => spec.seed = u64_field(val, "seed")?,
            "sample_interval" => spec.sample_interval = Some(u64_field(val, "sample_interval")?),
            "l2_bytes_per_bank" => {
                spec.l2_bytes_per_bank = Some(u64_field(val, "l2_bytes_per_bank")?);
            }
            "l2_assoc" => {
                let assoc = u64_field(val, "l2_assoc")?;
                let assoc = u32::try_from(assoc)
                    .map_err(|_| SpecError::BadField { field: "l2_assoc", expected: "a u32 way count" })?;
                spec.l2_assoc = Some(assoc);
            }
            other => return Err(SpecError::UnknownKey(other.to_string())),
        }
    }
    spec.validate().map_err(SpecError::Sweep)?;
    Ok(spec)
}

/// Renders a spec back to its wire form (all fields explicit, so a
/// render→parse round trip is the identity).
pub fn render_sweep_spec(spec: &SweepSpec) -> String {
    let benches: Vec<String> = spec.benches.iter().map(|b| format!("\"{}\"", json::escape(b))).collect();
    let schemes: Vec<String> = spec.schemes.iter().map(|s| format!("\"{}\"", s.label())).collect();
    let mut out = format!(
        "{{\"benches\":[{}],\"schemes\":[{}],\"gpu\":\"{}\",\"cycles\":{},\"warmup\":{},\"seed\":{}",
        benches.join(","),
        schemes.join(","),
        spec.gpu.label(),
        spec.cycles,
        spec.warmup,
        spec.seed
    );
    if let Some(interval) = spec.sample_interval {
        out.push_str(&format!(",\"sample_interval\":{interval}"));
    }
    if let Some(bytes) = spec.l2_bytes_per_bank {
        out.push_str(&format!(",\"l2_bytes_per_bank\":{bytes}"));
    }
    if let Some(assoc) = spec.l2_assoc {
        out.push_str(&format!(",\"l2_assoc\":{assoc}"));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use secmem_core::SecurityScheme;

    #[test]
    fn parses_a_minimal_spec_with_defaults() {
        let spec = parse_sweep_spec(r#"{"benches":["nw"]}"#).expect("parses");
        assert_eq!(spec.benches, vec!["nw"]);
        assert_eq!(spec.schemes.len(), 7);
        assert_eq!(spec.gpu, GpuPreset::Volta);
        assert_eq!(spec.cycles, 120_000);
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.sample_interval, None);
    }

    #[test]
    fn parses_a_full_spec() {
        let text = r#"{"benches":["nw","b+tree"],"schemes":["baseline","ctr_mac_bmt"],
                       "gpu":"small","cycles":3000,"warmup":100,"seed":7,"sample_interval":512}"#;
        let spec = parse_sweep_spec(text).expect("parses");
        assert_eq!(spec.benches.len(), 2);
        assert_eq!(spec.schemes, vec![SecurityScheme::Baseline, SecurityScheme::CtrMacBmt]);
        assert_eq!(spec.gpu, GpuPreset::Small);
        assert_eq!((spec.cycles, spec.warmup, spec.seed), (3000, 100, 7));
        assert_eq!(spec.sample_interval, Some(512));
    }

    #[test]
    fn rejects_bad_specs_with_typed_errors() {
        assert!(matches!(parse_sweep_spec("not json"), Err(SpecError::Syntax(_))));
        assert!(matches!(parse_sweep_spec("[1,2]"), Err(SpecError::NotAnObject)));
        assert!(matches!(
            parse_sweep_spec(r#"{"benches":["nw"],"cycels":5}"#),
            Err(SpecError::UnknownKey(k)) if k == "cycels"
        ));
        assert!(matches!(
            parse_sweep_spec(r#"{"benches":["nw"],"schemes":["rot13"]}"#),
            Err(SpecError::UnknownScheme(s)) if s == "rot13"
        ));
        assert!(matches!(
            parse_sweep_spec(r#"{"benches":["nw"],"gpu":"tpu"}"#),
            Err(SpecError::UnknownGpu(_))
        ));
        assert!(matches!(
            parse_sweep_spec(r#"{"benches":["nw"],"cycles":-5}"#),
            Err(SpecError::BadField { field: "cycles", .. })
        ));
        assert!(matches!(
            parse_sweep_spec(r#"{"benches":[]}"#),
            Err(SpecError::Sweep(SweepError::Empty("benchmark")))
        ));
        assert!(matches!(
            parse_sweep_spec(r#"{"benches":["not-a-bench"]}"#),
            Err(SpecError::Sweep(SweepError::UnknownBench(_)))
        ));
    }

    #[test]
    fn geometry_overrides_parse_and_hostile_geometry_is_a_spec_error() {
        let text = r#"{"benches":["nw"],"gpu":"small","cycles":1500,
                       "l2_bytes_per_bank":65536,"l2_assoc":8}"#;
        let spec = parse_sweep_spec(text).expect("valid override parses");
        assert_eq!(spec.l2_bytes_per_bank, Some(65_536));
        assert_eq!(spec.l2_assoc, Some(8));

        // 96 KiB / 5 ways: the geometry that used to assert inside
        // SectoredCache now dies at the spec boundary.
        let hostile = r#"{"benches":["nw"],"gpu":"small","cycles":1500,
                          "l2_bytes_per_bank":98304,"l2_assoc":5}"#;
        match parse_sweep_spec(hostile).expect_err("rejected") {
            SpecError::Sweep(SweepError::Gpu(e)) => {
                assert_eq!(e.field, "l2_bytes_per_bank/l2_assoc");
            }
            other => panic!("expected a typed geometry rejection, got {other:?}"),
        }

        assert!(matches!(
            parse_sweep_spec(r#"{"benches":["nw"],"l2_assoc":4294967296}"#),
            Err(SpecError::BadField { field: "l2_assoc", .. })
        ));
    }

    #[test]
    fn render_parse_round_trips() {
        let spec = SweepSpec::pinned_matrix();
        let wire = render_sweep_spec(&spec);
        assert_eq!(parse_sweep_spec(&wire).expect("round trip"), spec);

        let mut with_telemetry = SweepSpec::pinned_matrix();
        with_telemetry.sample_interval = Some(256);
        let wire = render_sweep_spec(&with_telemetry);
        assert_eq!(parse_sweep_spec(&wire).expect("round trip"), with_telemetry);
    }
}
