//! End-to-end tests against a real server on a loopback socket.
//!
//! The headline gate (ISSUE 7 acceptance criteria): for the pinned
//! 4-benchmark × 7-scheme matrix, the CSV fetched from the server is
//! **byte-identical** to the batch sweep's rendering, and resubmitting
//! the same spec is served entirely from the content-addressed cache —
//! zero additional simulations, proven by the server's simulation
//! counter.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use secmem_bench::sweep::SweepSpec;
use secmem_serve::client;
use secmem_serve::json::{self, Json};
use secmem_serve::spec::render_sweep_spec;
use secmem_serve::{Server, ServerConfig};

/// Binds a server on an ephemeral loopback port and runs it on a
/// background thread. Tear down with `shutdown()`.
struct TestServer {
    addr: String,
    handle: Option<JoinHandle<()>>,
}

impl TestServer {
    fn start() -> Self {
        let cfg = ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() };
        let server = Server::bind(&cfg).expect("bind loopback");
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run().expect("server run"));
        Self { addr, handle: Some(handle) }
    }

    fn shutdown(mut self) {
        let resp = client::post(&self.addr, "/shutdown", b"").expect("shutdown request");
        assert_eq!(resp.code, 200);
        self.handle.take().expect("running").join().expect("server thread exits cleanly");
    }
}

fn field(body: &str, name: &str) -> u64 {
    json::parse(body)
        .unwrap_or_else(|e| panic!("malformed response {body:?}: {e}"))
        .get(name)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("response {body:?} lacks numeric field {name:?}"))
}

/// Submits a spec and blocks until the sweep completes; returns
/// `(sweep id, final status body)`.
fn run_sweep(addr: &str, spec: &SweepSpec) -> (u64, String) {
    let resp = client::post(addr, "/sweeps", render_sweep_spec(spec).as_bytes()).expect("submit");
    assert_eq!(resp.code, 200, "submit failed: {}", resp.text());
    let id = field(&resp.text(), "sweep");
    loop {
        let status = client::get(addr, &format!("/sweeps/{id}")).expect("status");
        assert_eq!(status.code, 200);
        let body = status.text();
        let complete = json::parse(&body).ok().and_then(|v| v.get("complete")?.as_bool());
        if complete == Some(true) {
            return (id, body);
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

fn fetch_csv(addr: &str, id: u64) -> Vec<u8> {
    let resp = client::get(addr, &format!("/sweeps/{id}/results")).expect("results");
    assert_eq!(resp.code, 200, "results failed: {}", resp.text());
    assert_eq!(resp.header("content-type"), Some("text/csv"));
    resp.body
}

/// The end-to-end determinism gate on the pinned matrix.
#[test]
fn pinned_matrix_server_csv_is_byte_identical_to_batch_and_resubmission_is_all_cache_hits() {
    let spec = SweepSpec::pinned_matrix();

    // Batch reference: the same expansion + rendering the server uses,
    // run in-process on the shared runner.
    let (results, failures) = spec.run(0).expect("valid spec");
    assert!(failures.is_empty(), "batch jobs failed: {failures:?}");
    let batch_csv = spec.results_table(&results).to_csv().into_bytes();

    let server = TestServer::start();

    // First pass: everything simulates (the cache is cold).
    let (id, status) = run_sweep(&server.addr, &spec);
    assert_eq!(field(&status, "total"), 28);
    assert_eq!(field(&status, "failed"), 0);
    let first_csv = fetch_csv(&server.addr, id);
    assert_eq!(
        first_csv,
        batch_csv,
        "server CSV differs from batch reference:\n--- server ---\n{}\n--- batch ---\n{}",
        String::from_utf8_lossy(&first_csv),
        String::from_utf8_lossy(&batch_csv)
    );
    let stats = client::get(&server.addr, "/cache/stats").expect("stats").text();
    let simulations_after_first = field(&stats, "simulations");
    assert_eq!(simulations_after_first, 28, "cold cache simulates every job once");

    // Second pass: the identical spec must be answered entirely from
    // the content-addressed cache — zero re-simulations.
    let (id2, status2) = run_sweep(&server.addr, &spec);
    assert_ne!(id2, id, "each submission gets its own sweep id");
    assert_eq!(field(&status2, "cache_hits"), 28, "every job served from cache: {status2}");
    assert_eq!(field(&status2, "failed"), 0);
    let second_csv = fetch_csv(&server.addr, id2);
    assert_eq!(second_csv, first_csv, "cached CSV must be byte-identical");
    let stats = client::get(&server.addr, "/cache/stats").expect("stats").text();
    assert_eq!(field(&stats, "simulations"), simulations_after_first, "0 re-simulations on resubmit");
    assert_eq!(field(&stats, "hits"), 28);

    server.shutdown();
}

/// The ISSUE-8 bugfix gate: a sweep spec naming the cache geometry
/// that used to `assert!` inside `SectoredCache::with_policy` (96 KiB
/// per bank, 5 ways) is rejected with a structured 400 before any job
/// is queued — zero worker panics, zero simulations, and the server
/// keeps serving afterwards.
#[test]
fn hostile_cache_geometry_is_a_structured_failure_not_a_worker_panic() {
    let server = TestServer::start();

    let hostile = br#"{"benches":["nw"],"gpu":"small","cycles":1500,
                       "l2_bytes_per_bank":98304,"l2_assoc":5}"#;
    let resp = client::post(&server.addr, "/sweeps", hostile).expect("submit");
    assert_eq!(resp.code, 400, "hostile geometry must be rejected: {}", resp.text());
    let body = resp.text();
    let error = json::parse(&body)
        .unwrap_or_else(|e| panic!("error body is not json ({e}): {body}"))
        .get("error")
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap_or_else(|| panic!("error body lacks 'error': {body}"));
    assert!(error.contains("l2_bytes_per_bank/l2_assoc"), "error names the field group: {error}");

    // Nothing was queued and nothing simulated.
    let stats = client::get(&server.addr, "/cache/stats").expect("stats").text();
    assert_eq!(field(&stats, "simulations"), 0);
    assert_eq!(field(&stats, "failures"), 0);

    // The pool is not poisoned: a well-formed sweep (including a valid
    // geometry override) still runs to completion with zero failures.
    let mut spec = SweepSpec {
        benches: vec!["nw".into()],
        schemes: vec![secmem_core::SecurityScheme::Baseline],
        gpu: secmem_bench::sweep::GpuPreset::Small,
        cycles: 1_500,
        warmup: 0,
        seed: secmem_workloads::suite::DEFAULT_SEED,
        sample_interval: None,
        l2_bytes_per_bank: None,
        l2_assoc: None,
    };
    spec.l2_bytes_per_bank = Some(64 * 1024);
    spec.l2_assoc = Some(8);
    let (_, status) = run_sweep(&server.addr, &spec);
    assert_eq!(field(&status, "failed"), 0, "valid override sweep succeeds: {status}");

    server.shutdown();
}

/// Concurrent identical submissions coalesce: racing clients cost one
/// simulation per distinct job, not one per request.
#[test]
fn concurrent_identical_sweeps_coalesce_to_one_simulation_each() {
    let spec = SweepSpec {
        benches: vec!["nw".into()],
        schemes: vec![secmem_core::SecurityScheme::Baseline, secmem_core::SecurityScheme::CtrMacBmt],
        gpu: secmem_bench::sweep::GpuPreset::Small,
        cycles: 1_500,
        warmup: 0,
        seed: secmem_workloads::suite::DEFAULT_SEED,
        sample_interval: None,
        l2_bytes_per_bank: None,
        l2_assoc: None,
    };
    let server = TestServer::start();
    let addr = Arc::new(server.addr.clone());
    let failures = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let failures = failures.clone();
            let spec = spec.clone();
            std::thread::spawn(move || {
                let (_, status) = run_sweep(&addr, &spec);
                if field(&status, "failed") != 0 {
                    failures.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    assert_eq!(failures.load(Ordering::SeqCst), 0);
    let stats = client::get(&server.addr, "/cache/stats").expect("stats").text();
    assert_eq!(
        field(&stats, "simulations"),
        2,
        "4 racing clients × 2 jobs ran exactly 2 simulations: {stats}"
    );
    server.shutdown();
}

/// The chunked progress stream delivers one NDJSON event per job, with
/// telemetry-fed byte counters when sampling is on.
#[test]
fn progress_stream_delivers_one_event_per_job_with_telemetry() {
    let spec = SweepSpec {
        benches: vec!["nw".into()],
        schemes: vec![secmem_core::SecurityScheme::Baseline, secmem_core::SecurityScheme::CtrMacBmt],
        gpu: secmem_bench::sweep::GpuPreset::Small,
        cycles: 1_500,
        warmup: 0,
        seed: secmem_workloads::suite::DEFAULT_SEED,
        sample_interval: Some(256),
        l2_bytes_per_bank: None,
        l2_assoc: None,
    };
    let server = TestServer::start();
    let resp = client::post(&server.addr, "/sweeps", render_sweep_spec(&spec).as_bytes()).expect("submit");
    assert_eq!(resp.code, 200);
    let id = field(&resp.text(), "sweep");

    // Stream while the sweep runs; the server blocks the stream until
    // all events are delivered, so this also synchronizes completion.
    let mut collected = Vec::new();
    let code = client::stream_get(&server.addr, &format!("/sweeps/{id}/stream"), &mut |data| {
        collected.extend_from_slice(data);
    })
    .expect("stream");
    assert_eq!(code, 200);
    let text = String::from_utf8(collected).expect("utf-8 events");
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 2, "one event per job: {text:?}");
    for line in &lines {
        let event = json::parse(line).unwrap_or_else(|e| panic!("bad event {line:?}: {e}"));
        assert_eq!(event.get("sweep").and_then(Json::as_u64), Some(id));
        assert_eq!(event.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(event.get("bench").and_then(Json::as_str), Some("nw"));
        assert!(
            event.get("dram_bytes").and_then(Json::as_u64).is_some_and(|b| b > 0),
            "telemetry-fed dram byte counter missing: {line}"
        );
    }
    // Final done counter matches the job count.
    let last = json::parse(lines[1]).expect("parses");
    assert_eq!(last.get("done").and_then(Json::as_u64), Some(2));
    server.shutdown();
}

/// Error paths answer with typed JSON and the right status codes.
#[test]
fn http_error_paths() {
    let server = TestServer::start();

    let resp = client::post(&server.addr, "/sweeps", b"{\"benches\":[]}").expect("post");
    assert_eq!(resp.code, 400, "empty bench list: {}", resp.text());
    let resp = client::post(&server.addr, "/sweeps", b"not json at all").expect("post");
    assert_eq!(resp.code, 400);
    let resp = client::post(&server.addr, "/sweeps", b"{\"benches\":[\"nw\"],\"cycels\":1}").expect("post");
    assert_eq!(resp.code, 400, "unknown key is rejected: {}", resp.text());
    assert!(resp.text().contains("cycels"), "error names the bad key: {}", resp.text());

    let resp = client::get(&server.addr, "/sweeps/999").expect("get");
    assert_eq!(resp.code, 404);
    let resp = client::get(&server.addr, "/sweeps/999/results").expect("get");
    assert_eq!(resp.code, 404);
    let resp = client::get(&server.addr, "/nope").expect("get");
    assert_eq!(resp.code, 404);
    let resp = client::get(&server.addr, "/health").expect("get");
    assert_eq!(resp.code, 200);
    assert!(resp.text().contains("\"status\":\"ok\""));

    // Results for a still-running sweep: 409. Use a sweep big enough to
    // still be in flight right after submission.
    let spec = SweepSpec {
        benches: vec!["fdtd2d".into()],
        schemes: vec![secmem_core::SecurityScheme::CtrMacBmt],
        gpu: secmem_bench::sweep::GpuPreset::Small,
        cycles: 200_000,
        warmup: 0,
        seed: secmem_workloads::suite::DEFAULT_SEED,
        sample_interval: None,
        l2_bytes_per_bank: None,
        l2_assoc: None,
    };
    let resp = client::post(&server.addr, "/sweeps", render_sweep_spec(&spec).as_bytes()).expect("submit");
    assert_eq!(resp.code, 200);
    let id = field(&resp.text(), "sweep");
    let resp = client::get(&server.addr, &format!("/sweeps/{id}/results")).expect("get");
    assert!(
        resp.code == 409 || resp.code == 200,
        "running sweep results are 409 (or 200 if it finished first), got {}",
        resp.code
    );
    server.shutdown();
}
