//! Mutation fuzzing for the server's untrusted-input parsers: the
//! HTTP/1.1 head/request/response decoders and the sweep-spec JSON
//! parser. Reuses the deterministic SplitMix64 mutator from
//! `secmem_bench::fuzz`, so every case is reproducible from
//! `(exemplar index, seed, iteration)` alone.
//!
//! Contract under fuzz: arbitrary bytes produce a typed error or a
//! valid parse — never a panic. For the JSON spec parser there is one
//! extra invariant: whatever this crate's parser *accepts* must also
//! pass the telemetry crate's `validate_json` (the serve grammar is
//! strictly no-looser — it adds a tighter depth bound and surrogate
//! pairing on top).
//!
//! Crashing inputs get frozen as files in `tests/fixtures/` and are
//! replayed by `frozen_fixtures_stay_typed` forever after.

use std::panic::{catch_unwind, AssertUnwindSafe};

use secmem_bench::fuzz::Mutator;
use secmem_bench::sweep::SweepSpec;
use secmem_serve::http;
use secmem_serve::json;
use secmem_serve::spec::{parse_sweep_spec, render_sweep_spec};
use secmem_telemetry::chrome;

const ITERATIONS: u64 = 25_000;

/// Well-formed HTTP exemplars; mutation starts from these so cases
/// reach past the first sanity checks.
fn http_exemplars() -> Vec<Vec<u8>> {
    vec![
        b"POST /sweeps HTTP/1.1\r\nHost: localhost:8642\r\nContent-Type: application/json\r\n\
          Content-Length: 18\r\n\r\n{\"benches\":[\"nw\"]}"
            .to_vec(),
        b"GET /sweeps/12/stream HTTP/1.1\r\nAccept: application/x-ndjson\r\nConnection: close\r\n\r\n"
            .to_vec(),
        b"HTTP/1.1 200 OK\r\nContent-Type: text/csv\r\nContent-Length: 10\r\n\r\n0123456789".to_vec(),
        b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n\
          6\r\nfirst \r\n6\r\nsecond\r\n0\r\n\r\n"
            .to_vec(),
    ]
}

fn spec_exemplars() -> Vec<Vec<u8>> {
    let mut with_telemetry = SweepSpec::pinned_matrix();
    with_telemetry.sample_interval = Some(512);
    vec![
        render_sweep_spec(&SweepSpec::pinned_matrix()).into_bytes(),
        render_sweep_spec(&with_telemetry).into_bytes(),
        br#"{ "benches": ["nw", "b+tree"], "schemes": ["baseline", "direct_mac_mt"],
             "gpu": "small", "cycles": 3000, "warmup": 10, "seed": 1516 }"#
            .to_vec(),
    ]
}

/// Runs `input` through every HTTP decoder; must return, never panic.
fn parse_http(input: &[u8]) {
    let _ = http::parse_head(input);
    let _ = http::read_request(&mut &input[..]);
    let _ = http::read_response(&mut &input[..]);
}

/// Runs `input` through the spec pipeline; checks the grammar-subset
/// invariant when the serve parser accepts.
fn parse_spec(input: &[u8]) {
    let Ok(text) = core::str::from_utf8(input) else {
        // Non-UTF-8 bodies are rejected before parsing in the server.
        return;
    };
    if json::parse(text).is_ok() {
        assert!(
            chrome::validate_json(text).is_ok(),
            "serve json accepted what chrome::validate_json rejects: {text:?}"
        );
    }
    let _ = parse_sweep_spec(text);
}

fn fuzz(label: &str, exemplars: &[Vec<u8>], seed: u64, parse: fn(&[u8])) {
    let mut mutator = Mutator::new(seed);
    for iteration in 0..ITERATIONS {
        let base = &exemplars[(iteration as usize) % exemplars.len()];
        let input = mutator.mutate(base);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| parse(&input))) {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            panic!(
                "{label} corpus, seed {seed:#x}, iteration {iteration}: panic '{message}' on input {:?}",
                String::from_utf8_lossy(&input)
            );
        }
    }
}

#[test]
fn fuzz_http_head_and_message_decoders() {
    fuzz("http", &http_exemplars(), 0x5EC0_0001, parse_http);
}

#[test]
fn fuzz_sweep_spec_json() {
    fuzz("spec", &spec_exemplars(), 0x5EC0_0002, parse_spec);
}

#[test]
fn exemplars_parse_cleanly() {
    // The unmutated exemplars must be valid, otherwise mutation only
    // explores error paths.
    let heads = http_exemplars();
    assert!(http::read_request(&mut &heads[0][..]).is_ok());
    assert!(http::read_request(&mut &heads[1][..]).is_ok());
    assert!(http::read_response(&mut &heads[2][..]).is_ok());
    assert!(http::read_response(&mut &heads[3][..]).is_ok());
    for spec in spec_exemplars() {
        parse_sweep_spec(core::str::from_utf8(&spec).expect("utf-8")).expect("exemplar specs parse");
    }
}

/// Replays every frozen fixture file (inputs that once crashed or
/// exercised tricky paths); each must stay a non-panicking parse.
#[test]
fn frozen_fixtures_stay_typed() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures dir exists")
        .map(|e| e.expect("readable entry").path())
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "fixtures directory must not be empty");
    for path in entries {
        let input = std::fs::read(&path).expect("fixture readable");
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let result = if name.starts_with("http_") {
            catch_unwind(AssertUnwindSafe(|| parse_http(&input)))
        } else {
            catch_unwind(AssertUnwindSafe(|| parse_spec(&input)))
        };
        assert!(result.is_ok(), "fixture {name} caused a panic");
    }
}
