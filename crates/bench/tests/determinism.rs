//! The determinism guard for the hot-loop performance overhaul
//! (ISSUE 3): for a fixed seed and configuration, two simulations must
//! produce byte-identical `SimReport`s — across every security scheme.
//!
//! Any optimization that reorders events, drops a stall cycle, or skips a
//! sample point shows up here as a diff of the serialized report. The
//! comparison covers both the stable JSON rendering (what experiment
//! tooling consumes) and the full `Debug` rendering (every field,
//! including fault statistics and the stall report).

use secmem_bench::json::report_to_json;
use secmem_bench::{run_job, BackendChoice, Job};
use secmem_core::{SecureMemConfig, SecurityScheme};
use secmem_gpusim::config::GpuConfig;
use secmem_telemetry::TelemetryConfig;
use secmem_workloads::suite;

const ALL_SCHEMES: [SecurityScheme; 7] = [
    SecurityScheme::Baseline,
    SecurityScheme::CtrOnly,
    SecurityScheme::CtrBmt,
    SecurityScheme::CtrMacBmt,
    SecurityScheme::Direct,
    SecurityScheme::DirectMac,
    SecurityScheme::DirectMacMt,
];

fn job_for(scheme: SecurityScheme, warmup: u64, telemetry: bool) -> Job {
    let backend = match scheme {
        SecurityScheme::Baseline => BackendChoice::Baseline,
        s => BackendChoice::Secure(SecureMemConfig::with_scheme(s)),
    };
    Job {
        kernel: suite::by_name("fdtd2d").expect("suite workload"),
        gpu: GpuConfig::small(),
        backend,
        cycles: 6_000,
        warmup,
        label: scheme.label().to_string(),
        telemetry: telemetry.then(|| TelemetryConfig { sample_interval: 512, ..TelemetryConfig::default() }),
        telemetry_out: None,
        sim_threads: 1,
    }
}

#[test]
fn reports_are_byte_identical_across_runs_for_all_schemes() {
    let gpu = GpuConfig::small();
    for scheme in ALL_SCHEMES {
        let a = run_job(&job_for(scheme, 0, false));
        let b = run_job(&job_for(scheme, 0, false));
        assert!(a.report.cycles > 0, "{scheme:?}: run must simulate");
        assert_eq!(
            report_to_json(&a.report, &gpu),
            report_to_json(&b.report, &gpu),
            "{scheme:?}: JSON report differs between identical runs"
        );
        assert_eq!(
            format!("{:?}", a.report),
            format!("{:?}", b.report),
            "{scheme:?}: Debug report differs between identical runs"
        );
    }
}

#[test]
fn reports_are_byte_identical_with_warmup_and_telemetry() {
    // Warmup exercises the reset path; telemetry exercises the sampler.
    // Both must stay deterministic too (enabled telemetry must not
    // perturb timing, and the sampler must fire at identical cycles).
    for scheme in [SecurityScheme::Baseline, SecurityScheme::CtrMacBmt] {
        let a = run_job(&job_for(scheme, 1_000, true));
        let b = run_job(&job_for(scheme, 1_000, true));
        assert_eq!(
            format!("{:?}", a.report),
            format!("{:?}", b.report),
            "{scheme:?}: report differs with warmup+telemetry"
        );
        let sa = a.telemetry.expect("telemetry enabled");
        let sb = b.telemetry.expect("telemetry enabled");
        assert_eq!(sa, sb, "{scheme:?}: telemetry snapshot differs between identical runs");
    }
}
