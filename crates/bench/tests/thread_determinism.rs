//! Tier-1 gate for parallel partition stepping (ISSUE 8): the pinned
//! 4-benchmark × 7-scheme matrix must produce **byte-identical**
//! `report_fp` fingerprints at every stepping thread count — 1, 2, 4
//! and 8 — and a checkpoint taken mid-run under parallel stepping must
//! restore into a run indistinguishable from an uninterrupted serial
//! one.
//!
//! The phased step design (DESIGN.md §14) claims the thread count is
//! invisible to simulation results: phase A touches disjoint
//! per-entity state, and every cross-entity effect is committed by the
//! coordinator in canonical (SM-id, partition-id) order. This suite is
//! the proof. It runs on any host — on a single-core machine the pool
//! workers park instead of spin, but the merge order, and therefore
//! every fingerprint, is the same.

use secmem_bench::sweep::{job_fingerprint, report_fingerprint, SweepSpec};
use secmem_bench::{run_job, Job};
use secmem_checkpoint::Frame;
use secmem_core::{SecureBackend, SecureMemConfig, SecurityScheme};
use secmem_gpusim::config::GpuConfig;
use secmem_gpusim::kernel::Kernel;
use secmem_gpusim::sim::Simulator;
use secmem_workloads::suite;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn matrix_jobs(sim_threads: usize) -> Vec<Job> {
    let mut jobs = SweepSpec::pinned_matrix().jobs().expect("pinned matrix is valid");
    for job in &mut jobs {
        job.sim_threads = sim_threads;
    }
    jobs
}

/// The headline acceptance criterion: 28 pinned fingerprints, identical
/// at threads = 1, 2, 4, 8.
#[test]
fn pinned_matrix_fingerprints_are_identical_at_every_thread_count() {
    let reference: Vec<(u64, u64)> = matrix_jobs(1)
        .iter()
        .map(|job| (job_fingerprint(job), report_fingerprint(&run_job(job).report)))
        .collect();
    assert_eq!(reference.len(), 28);

    for threads in THREAD_COUNTS.into_iter().skip(1) {
        for (job, (job_fp, report_fp)) in matrix_jobs(threads).iter().zip(&reference) {
            assert_eq!(
                job_fingerprint(job),
                *job_fp,
                "{}/{}: sim_threads leaked into the job fingerprint",
                job.kernel.name(),
                job.label
            );
            let report = run_job(job).report;
            assert_eq!(
                report_fingerprint(&report),
                *report_fp,
                "{}/{} at {threads} threads: report diverges from the serial run\n{report:?}",
                job.kernel.name(),
                job.label
            );
        }
    }
}

/// A checkpoint saved mid-run under parallel stepping restores into a
/// run byte-identical to an uninterrupted serial one — and the frame
/// itself is byte-identical to one saved by a serial simulator, so the
/// thread count cannot leak into the wire format either.
#[test]
fn checkpoint_round_trip_is_thread_count_invariant() {
    const CYCLES: u64 = 3_000;
    const CUT: u64 = 1_200;
    let gpu = GpuConfig::small();
    let kernel = suite::by_name("fdtd2d").expect("suite workload");
    let cfg = SecureMemConfig::with_scheme(SecurityScheme::CtrMacBmt);
    let build = |threads: usize| {
        let cfg = cfg.clone();
        let mut sim = Simulator::new(gpu.clone(), &kernel, move |_, g| SecureBackend::new(cfg.clone(), g));
        sim.set_threads(threads);
        sim
    };

    let mut serial = build(1);
    let unbroken = serial.run(CYCLES);

    let mut serial_cut = build(1);
    let _ = serial_cut.run_checked(CUT);
    let serial_frame = serial_cut.save_checkpoint().encode();

    let mut parallel = build(4);
    let _ = parallel.run_checked(CUT);
    let frame = parallel.save_checkpoint().encode();
    assert_eq!(frame, serial_frame, "a 4-thread checkpoint must be byte-identical to a serial one");

    // Restore into a simulator stepping with yet another thread count.
    let frame = Frame::decode(&frame).expect("frame survives its own wire format");
    let mut resumed = build(8);
    resumed.restore_checkpoint(&frame).expect("restore into a fresh, identically-built simulator");
    let resumed_report = resumed.run(CYCLES);

    assert_eq!(
        format!("{unbroken:?}"),
        format!("{resumed_report:?}"),
        "parallel save + restore diverges from the uninterrupted serial run"
    );
}
