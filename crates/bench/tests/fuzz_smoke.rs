//! Fuzz smoke test: a fixed-seed slice of the mutation fuzzer runs in
//! every test invocation (and in CI), so a parser regression that
//! panics on malformed input is caught the same day it lands, not the
//! next time someone runs a long fuzz session.
//!
//! Budgets are deliberately small — a few thousand mutated inputs per
//! corpus — because the fixed seeds make the run reproducible: any
//! failure here can be replayed exactly with the seed and iteration
//! printed in the failure message, then frozen as a regression fixture
//! in `secmem_bench::fuzz`'s unit tests.

use secmem_bench::fuzz::{fuzz_corpus, Corpus};

const SEEDS: [u64; 3] = [0x5EC_F00D, 0xB0A7, 42];
const ITERATIONS: u64 = 1_500;

#[test]
fn all_parsers_survive_the_smoke_budget() {
    for corpus in Corpus::ALL {
        for seed in SEEDS {
            if let Err(case) = fuzz_corpus(corpus, seed, ITERATIONS) {
                panic!("{} parser panicked on fuzzed input:\n{case}", corpus.label());
            }
        }
    }
}

/// The lint pipeline gets a deeper budget than the smoke sweep: the
/// item parser sits on top of the lexer and scanner, so its state space
/// (impl headers, generics, macro skipping) needs more mutations to
/// cover. Crashing inputs found by longer offline sessions are frozen
/// under `crates/lint/tests/fixtures/fuzz/`.
#[test]
fn lint_source_pipeline_survives_25k_mutations() {
    if let Err(case) = fuzz_corpus(Corpus::LintSource, 0x11A7_5EED, 25_000) {
        panic!("lint pipeline panicked on fuzzed source:\n{case}");
    }
}
