//! Tier-1 gate for the SECMTRC binary trace container (ISSUE 9): the
//! two on-disk trace formats must be interchangeable in every way that
//! matters — round-tripping preserves every instruction, corrupted
//! binary files are rejected with typed errors, a full simulation
//! ingesting either format produces a byte-identical report, and
//! checkpoint resume stays invisible when the replay streams from the
//! binary container (including restoring a frame taken under the other
//! format).

use secmem_checkpoint::fnv1a;
use secmem_core::{SecureBackend, SecureMemConfig, SecurityScheme};
use secmem_gpusim::backend::PassthroughBackend;
use secmem_gpusim::config::GpuConfig;
use secmem_gpusim::rng::Rng64;
use secmem_gpusim::sim::Simulator;
use secmem_gpusim::stats::SimReport;
use secmem_gpusim::trace::{Trace, TraceKernel};
use secmem_gpusim::trace_bin::{self, BinaryTrace};
use secmem_gpusim::types::{Access, Inst, SectorMask};
use secmem_workloads::suite;
use std::path::PathBuf;

fn fingerprint(report: &SimReport) -> u64 {
    fnv1a(format!("{report:?}").as_bytes())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("secmem-trace-format-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A random but valid instruction stream, deliberately covering the
/// encoder's edge cases: stalls on both sides of the tag-byte spill
/// bound (31), access counts on both sides of the packed bound (30),
/// large positive and negative block deltas, and every sector mask.
fn random_stream(rng: &mut Rng64) -> Vec<Inst> {
    let len = 1 + rng.gen_range(40) as usize;
    let mut insts = Vec::with_capacity(len);
    let mut addr: u64 = rng.gen_range(1 << 34);
    for _ in 0..len {
        // Deltas jump forward and backward across a wide range so the
        // zigzag varints see 1-byte and multi-byte encodings.
        let hop = rng.gen_range(1 << 22) as i64 - (1 << 21);
        addr = addr.wrapping_add(hop.wrapping_mul(128) as u64) & ((1 << 40) - 1);
        let inst = match rng.gen_range(6) {
            0 => Inst::Alu { stall: 1 + rng.gen_range(4) as u32, wait_mem: false },
            1 => Inst::Alu { stall: 28 + rng.gen_range(8) as u32, wait_mem: rng.one_in(2) },
            2 | 3 => {
                let n = 1 + rng.gen_range(34) as usize;
                let mut accesses = Vec::with_capacity(n);
                for i in 0..n {
                    let mask = SectorMask(1 + rng.gen_range(15) as u8);
                    accesses.push(Access::new(addr.wrapping_add(i as u64 * 128), mask));
                }
                Inst::Load { accesses, dependent: rng.one_in(3) }
            }
            4 => Inst::Store { accesses: vec![Access::new(addr, SectorMask(1 + rng.gen_range(15) as u8))] },
            _ => Inst::Alu { stall: 1, wait_mem: true },
        };
        insts.push(inst);
    }
    insts.push(Inst::Exit);
    insts
}

fn random_trace(rng: &mut Rng64) -> Trace {
    let mut trace = Trace::new();
    let sms = 1 + rng.gen_range(6) as u32;
    for sm in 0..sms {
        let warps = 1 + rng.gen_range(8) as u32;
        for warp in 0..warps {
            trace.insert(sm, warp, random_stream(rng));
        }
    }
    trace
}

#[test]
fn random_traces_roundtrip_both_formats_and_across_them() {
    let mut rng = Rng64::new(0x5EC_17ACE);
    for case in 0..25 {
        let trace = random_trace(&mut rng);

        // Binary round-trip, and canonicality: re-encoding the decoded
        // trace must reproduce the file byte-for-byte.
        let bytes = trace_bin::encode(&trace);
        let bin = BinaryTrace::decode(&bytes).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(bin.to_trace(), trace, "case {case}: binary round-trip");
        assert_eq!(trace_bin::encode(&bin.to_trace()), bytes, "case {case}: canonical encoding");

        // Text round-trip.
        let text = trace.to_text();
        let reparsed = Trace::from_text(&text).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(reparsed, trace, "case {case}: text round-trip");

        // Cross-format: text -> binary -> text is the identity.
        let cross = trace_bin::encode(&reparsed);
        let back = BinaryTrace::decode(&cross).expect("re-encoded trace decodes").to_trace();
        assert_eq!(back.to_text(), text, "case {case}: cross-format round-trip");

        // The headline size claim, on arbitrary traces rather than the
        // pinned perf workload: binary stays at or under 40% of text.
        assert!(
            bytes.len() * 10 <= text.len() * 4,
            "case {case}: binary {} bytes exceeds 40% of text {} bytes",
            bytes.len(),
            text.len()
        );
    }
}

#[test]
fn corrupted_binary_files_are_rejected_with_typed_errors() {
    let mut rng = Rng64::new(0xBAD_F00D);
    let bytes = trace_bin::encode(&random_trace(&mut rng));

    // Sampled truncations (the module's own tests are exhaustive).
    for cut in (0..bytes.len()).step_by(7) {
        assert!(BinaryTrace::decode(&bytes[..cut]).is_err(), "prefix of {cut} bytes must not decode");
    }
    // Sampled bit flips: every byte is either validated structure or
    // checksummed payload, so any flip must surface as an error.
    for i in (0..bytes.len()).step_by(5) {
        let mut evil = bytes.clone();
        evil[i] ^= 0x10;
        let err = BinaryTrace::decode(&evil).expect_err("flipped byte must be detected");
        // Typed, not stringly: the error names what failed.
        let text = err.to_string();
        assert!(!text.is_empty(), "error renders a diagnostic");
    }
}

/// Runs `kernel` under `scheme` and fingerprints the report.
fn replay_fp(gpu: &GpuConfig, kernel: &TraceKernel, scheme: Option<SecurityScheme>, cycles: u64) -> u64 {
    match scheme {
        None => {
            let mut sim = Simulator::new(gpu.clone(), kernel, |_, g| PassthroughBackend::from_config(g));
            fingerprint(&sim.run(cycles))
        }
        Some(s) => {
            let cfg = SecureMemConfig::with_scheme(s);
            let mut sim = Simulator::new(gpu.clone(), kernel, move |_, g| SecureBackend::new(cfg.clone(), g));
            fingerprint(&sim.run(cycles))
        }
    }
}

#[test]
fn report_fingerprints_are_identical_across_ingestion_formats() {
    let dir = temp_dir("reports");
    let gpu = GpuConfig::small();
    for bench in ["nw", "fdtd2d"] {
        let kernel = suite::by_name(bench).expect("suite workload");
        let trace = Trace::record(&kernel, gpu.num_sms, 600);
        let text_path = dir.join(format!("{bench}.trace"));
        let bin_path = dir.join(format!("{bench}.smtrc"));
        std::fs::write(&text_path, trace.to_text()).expect("text written");
        trace_bin::write_file(&trace, &bin_path).expect("binary written");

        let from_text = TraceKernel::from_file(&text_path).expect("text ingests");
        let from_bin = TraceKernel::from_file(&bin_path).expect("binary ingests");
        assert!(!from_text.is_streamed(), "text ingestion materializes");
        assert!(from_bin.is_streamed(), "binary ingestion streams");
        assert!(
            from_bin.resident_bytes() < from_text.resident_bytes() / 2,
            "streamed replay must hold less than the decoded form \
             ({} vs {} bytes)",
            from_bin.resident_bytes(),
            from_text.resident_bytes()
        );

        for scheme in [None, Some(SecurityScheme::CtrMacBmt)] {
            let a = replay_fp(&gpu, &from_text, scheme, 4_000);
            let b = replay_fp(&gpu, &from_bin, scheme, 4_000);
            assert_eq!(a, b, "{bench}/{scheme:?}: ingestion format changed the simulation");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot-at-cut + restore must equal an uninterrupted run when the
/// kernel streams from the binary container — and a frame taken under
/// one ingestion format must restore into a simulator built from the
/// other, because the cursors save identical state words.
#[test]
fn checkpoint_resume_is_invisible_for_streamed_binary_replay() {
    const CYCLES: u64 = 3_000;
    const CUT: u64 = 1_100;
    let dir = temp_dir("resume");
    let gpu = GpuConfig::small();
    let kernel = suite::by_name("kmeans").expect("suite workload");
    let trace = Trace::record(&kernel, gpu.num_sms, 600);
    let text_path = dir.join("kmeans.trace");
    let bin_path = dir.join("kmeans.smtrc");
    std::fs::write(&text_path, trace.to_text()).expect("text written");
    trace_bin::write_file(&trace, &bin_path).expect("binary written");

    let build = |path: &PathBuf| {
        let k = TraceKernel::from_file(path).expect("trace ingests");
        let cfg = SecureMemConfig::with_scheme(SecurityScheme::CtrMacBmt);
        Simulator::new(gpu.clone(), &k, move |_, g| SecureBackend::new(cfg.clone(), g))
    };

    let mut straight = build(&bin_path);
    let unbroken = straight.run(CYCLES);

    // Binary -> binary resume.
    let mut first = build(&bin_path);
    let _ = first.run_checked(CUT);
    let frame = first.save_checkpoint();
    let mut resumed = build(&bin_path);
    resumed.restore_checkpoint(&frame).expect("binary frame restores into binary replay");
    assert_eq!(
        fingerprint(&unbroken),
        fingerprint(&resumed.run(CYCLES)),
        "resumed streamed replay diverges from the uninterrupted run"
    );

    // Cross-format resume: a frame taken under text ingestion restores
    // into a binary-streamed simulator and still matches.
    let mut text_sim = build(&text_path);
    let _ = text_sim.run_checked(CUT);
    let cross_frame = text_sim.save_checkpoint();
    let mut cross = build(&bin_path);
    cross.restore_checkpoint(&cross_frame).expect("text frame restores into binary replay");
    assert_eq!(
        fingerprint(&unbroken),
        fingerprint(&cross.run(CYCLES)),
        "cross-format resume diverges from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
