//! Differential testing of the functional crypto model against the
//! timing-simulator engine on fuzzed write streams.
//!
//! The two implementations of counter-mode secure memory were written
//! independently: `secmem_core::functional` computes real ciphertext and
//! real counter values; `SecureBackend` models only the *timing* of the
//! same protocol, including the minor-counter overflow re-encryption
//! sweep. Both must agree on *when* a 7-bit minor counter overflows —
//! the 128th write to a line since the chunk's last reset — because that
//! event costs a 16 KB re-encryption sweep in the timing model and a
//! major-counter bump (re-keying every line of the chunk) in the
//! functional model. A disagreement here means one of the two models
//! simulates a different architecture than the paper describes.
//!
//! The write streams are produced by the same seeded mutation engine
//! that fuzzes the parsers ([`secmem_bench::fuzz::Mutator`]), so the
//! access patterns are adversarial but reproducible.

use secmem_bench::fuzz::Mutator;
use secmem_core::functional::FunctionalSecureMemory;
use secmem_core::{SecureBackend, SecureMemConfig, SecurityScheme};
use secmem_gpusim::backend::MemoryBackend;
use secmem_gpusim::config::{AddressMap, GpuConfig};
use secmem_gpusim::types::{BackendReq, SectorMask};
use std::collections::HashMap;

const LINE: u64 = 128;
/// Distinct data lines touched by the stream — all within chunk 0 (the
/// first 16 KB), so every overflow lands on the same counter block.
const LINES: u64 = 4;

/// Decodes a fuzzed byte stream into (line_local_addr, fill_byte) write
/// pairs confined to the first 16 KB chunk.
fn stream_from(seed: u64, min_writes: usize) -> Vec<(u64, u8)> {
    let mut m = Mutator::new(seed);
    let mut bytes: Vec<u8> = (0u8..64).collect();
    let mut out = Vec::with_capacity(min_writes);
    while out.len() < min_writes {
        bytes = m.mutate(&bytes);
        if bytes.len() < 2 {
            bytes = (0u8..64).collect();
            continue;
        }
        for pair in bytes.chunks_exact(2) {
            out.push(((u64::from(pair[0]) % LINES) * LINE, pair[1]));
        }
    }
    out
}

/// Feeds the stream through the functional model; returns
/// (overflow count, shadow of expected plaintexts) and asserts every
/// line reads back exactly what was last written — i.e. the crypto
/// stays correct across overflow re-encryptions.
fn run_functional(scheme: SecurityScheme, writes: &[(u64, u8)]) -> u64 {
    let mut mem = FunctionalSecureMemory::new(scheme, 1 << 20, &[7u8; 16]);
    let mut shadow: HashMap<u64, [u8; 128]> = HashMap::new();
    for &(addr, fill) in writes {
        let mut line = [0u8; 128];
        for (i, b) in line.iter_mut().enumerate() {
            *b = fill ^ i as u8;
        }
        mem.write_line(addr, &line);
        shadow.insert(addr, line);
    }
    for (&addr, expected) in &shadow {
        let got = mem.read_line(addr).expect("written line must verify and decrypt");
        assert_eq!(&got, expected, "plaintext corrupted at line {addr:#x}");
    }
    // All writes hit chunk 0, so the chunk's major counter is exactly
    // the number of minor-counter overflows.
    mem.counter_of(0).0
}

/// Feeds the same stream through the timing engine (one write request
/// per pair) and returns its overflow count.
fn run_timing(scheme: SecurityScheme, writes: &[(u64, u8)]) -> u64 {
    let gpu = GpuConfig::small();
    let map = AddressMap::new(&gpu);
    let mut cfg = SecureMemConfig::with_scheme(scheme);
    cfg.model_counter_overflow = true;
    let mut b = SecureBackend::new(cfg, &gpu);
    let mut now: u64 = 0;
    for (id, &(local, _fill)) in writes.iter().enumerate() {
        while !b.can_accept_write() {
            b.cycle(now);
            let _ = b.pop_read_response();
            now += 1;
            assert!(now < 10_000_000, "engine wedged waiting for write credit");
        }
        // The engine sees global addresses; overflow accounting happens
        // on the partition-local offset, so build a global address whose
        // local offset is exactly the functional model's line address.
        let req = BackendReq {
            id: id as u64,
            line_addr: map.global_addr(0, local),
            sectors: SectorMask::single((id % 4) as u32),
            bank: 0,
        };
        b.submit_write(now, req);
        b.cycle(now);
        now += 1;
    }
    while !b.is_idle() {
        b.cycle(now);
        let _ = b.pop_read_response();
        now += 1;
        assert!(now < 10_000_000, "engine never drained");
    }
    b.counter_overflows
}

#[test]
fn counter_overflow_counts_agree_on_fuzzed_streams() {
    for seed in [1u64, 0x5EC, 0xDEAD] {
        let mut writes = stream_from(seed, 600);
        // A deterministic hot tail guarantees the overflow path is
        // actually exercised regardless of the fuzzed distribution:
        // 300 consecutive writes to line 0 force at least two overflows.
        writes.extend(std::iter::repeat_n((0u64, 0xA5u8), 300));

        let functional = run_functional(SecurityScheme::CtrMacBmt, &writes);
        let timing = run_timing(SecurityScheme::CtrMacBmt, &writes);
        assert!(functional >= 2, "seed {seed:#x}: stream must trigger overflows (got {functional})");
        assert_eq!(
            functional, timing,
            "seed {seed:#x}: functional model counted {functional} overflows, timing engine {timing}"
        );
    }
}

#[test]
fn counterless_schemes_never_overflow_in_either_model() {
    let writes = stream_from(0xD1FF, 400);
    let functional = run_functional(SecurityScheme::DirectMac, &writes);
    let timing = run_timing(SecurityScheme::DirectMac, &writes);
    assert_eq!(functional, 0, "direct encryption has no counters to overflow");
    assert_eq!(timing, 0, "timing engine must not count overflows without counters");
}
