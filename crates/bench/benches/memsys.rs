//! Microbenchmarks for the memory-system building blocks: sectored cache,
//! MSHR file, DRAM channel, and the reuse-distance profiler. These bound
//! the per-cycle cost of the simulator's hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use secmem_gpusim::cache::SectoredCache;
use secmem_gpusim::dram::{Dram, DramRequest};
use secmem_gpusim::mshr::MshrFile;
use secmem_gpusim::reuse::ReuseProfiler;
use secmem_gpusim::types::{SectorMask, TrafficClass, FULL_SECTOR_MASK};

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("sectored_cache");
    g.bench_function("probe_hit", |b| {
        let mut cache = SectoredCache::new(96 * 1024, 12);
        for i in 0..768u64 {
            cache.fill(i * 128, FULL_SECTOR_MASK, SectorMask::EMPTY);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 768;
            cache.probe(black_box(i * 128), SectorMask::single(0))
        })
    });
    g.bench_function("streaming_fill_evict", |b| {
        let mut cache = SectoredCache::new(2 * 1024, 8);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cache.fill(black_box(i * 128), FULL_SECTOR_MASK, SectorMask::EMPTY)
        })
    });
    g.finish();
}

fn bench_mshr(c: &mut Criterion) {
    let mut g = c.benchmark_group("mshr");
    g.bench_function("allocate_complete", |b| {
        let mut mshr: MshrFile<u32> = MshrFile::new(64, 64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let line = (i % 48) * 128;
            mshr.access(black_box(line), FULL_SECTOR_MASK, 1);
            mshr.complete(line)
        })
    });
    g.bench_function("secondary_merge", |b| {
        let mut mshr: MshrFile<u32> = MshrFile::new(64, 1 << 20);
        mshr.access(0x80, FULL_SECTOR_MASK, 0);
        let mut t = 0u32;
        b.iter(|| {
            t += 1;
            mshr.access(black_box(0x80), FULL_SECTOR_MASK, t)
        })
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram");
    g.bench_function("push_cycle_pop", |b| {
        let mut dram: Dram<u32> = Dram::new(24 * 1024, 250, 32);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            let _ = dram.try_push(DramRequest {
                bytes: 32,
                addr: 0,
                is_write: false,
                class: TrafficClass::Data,
                token: 1,
            });
            dram.cycle(black_box(now));
            while dram.pop_completed().is_some() {}
        })
    });
    g.finish();
}

fn bench_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("reuse_profiler");
    g.bench_function("access_working_set_64", |b| {
        let mut p = ReuseProfiler::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            p.access(black_box((i % 64) * 128))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_mshr, bench_dram, bench_reuse);
criterion_main!(benches);
