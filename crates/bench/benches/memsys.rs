//! Microbenchmarks for the memory-system building blocks: sectored cache,
//! MSHR file, DRAM channel, and the reuse-distance profiler. These bound
//! the per-cycle cost of the simulator's hot paths.
//!
//! Plain `std::time` harness (`harness = false`).

use secmem_bench::timing::warmed;
use std::hint::black_box;

use secmem_gpusim::cache::SectoredCache;
use secmem_gpusim::dram::{Dram, DramRequest};
use secmem_gpusim::mshr::MshrFile;
use secmem_gpusim::reuse::ReuseProfiler;
use secmem_gpusim::types::{SectorMask, TrafficClass, FULL_SECTOR_MASK};

fn bench<F: FnMut()>(name: &str, iters: u64, f: F) {
    let ns_per = warmed(iters, f).as_nanos() as f64 / iters as f64;
    println!("{name:<36} {ns_per:>10.1} ns/iter");
}

fn main() {
    {
        let mut cache = SectoredCache::new(96 * 1024, 12);
        for i in 0..768u64 {
            cache.fill(i * 128, FULL_SECTOR_MASK, SectorMask::EMPTY);
        }
        let mut i = 0u64;
        bench("cache/probe_hit", 1_000_000, || {
            i = (i + 1) % 768;
            black_box(cache.probe(black_box(i * 128), SectorMask::single(0)));
        });
    }
    {
        let mut cache = SectoredCache::new(2 * 1024, 8);
        let mut i = 0u64;
        bench("cache/streaming_fill_evict", 1_000_000, || {
            i += 1;
            black_box(cache.fill(black_box(i * 128), FULL_SECTOR_MASK, SectorMask::EMPTY));
        });
    }
    {
        let mut mshr: MshrFile<u32> = MshrFile::new(64, 64);
        let mut i = 0u64;
        bench("mshr/allocate_complete", 1_000_000, || {
            i += 1;
            let line = (i % 48) * 128;
            mshr.access(black_box(line), FULL_SECTOR_MASK, 1);
            black_box(mshr.complete(line));
        });
    }
    {
        let mut mshr: MshrFile<u32> = MshrFile::new(64, 1 << 20);
        mshr.access(0x80, FULL_SECTOR_MASK, 0);
        let mut t = 0u32;
        bench("mshr/secondary_merge", 1_000_000, || {
            t += 1;
            black_box(mshr.access(black_box(0x80), FULL_SECTOR_MASK, t));
        });
    }
    {
        let mut dram: Dram<u32> = Dram::new(24 * 1024, 250, 32);
        let mut now = 0u64;
        bench("dram/push_cycle_pop", 1_000_000, || {
            now += 1;
            let _ = dram.try_push(DramRequest {
                bytes: 32,
                addr: 0,
                is_write: false,
                class: TrafficClass::Data,
                token: 1,
            });
            dram.cycle(black_box(now));
            while dram.pop_completed().is_some() {}
        });
    }
    {
        let mut p = ReuseProfiler::new();
        let mut i = 0u64;
        bench("reuse/access_working_set_64", 1_000_000, || {
            i += 1;
            p.access(black_box((i % 64) * 128));
        });
    }
}
