//! Microbenchmarks for the functional cryptography: AES-128, AES-CMAC,
//! counter-mode line encryption, and the tree hash. These establish that
//! the functional layer is fast enough to back large randomized-test runs.
//!
//! Plain `std::time` harness (`harness = false`): each case runs a fixed
//! iteration count and reports ns/iter and MB/s where meaningful.

use secmem_bench::timing::warmed;
use std::hint::black_box;

use secmem_crypto::aes::Aes128;
use secmem_crypto::cmac::{sector_mac, Cmac};
use secmem_crypto::ctr::{encrypt_line, CounterBlock};
use secmem_crypto::hash::NodeHash;

fn report(name: &str, iters: u64, bytes_per_iter: u64, elapsed_ns: u128) {
    let ns_per = elapsed_ns as f64 / iters as f64;
    if bytes_per_iter > 0 {
        let mbps = (bytes_per_iter * iters) as f64 / (elapsed_ns as f64 / 1e9) / 1e6;
        println!("{name:<28} {ns_per:>10.1} ns/iter  {mbps:>8.1} MB/s");
    } else {
        println!("{name:<28} {ns_per:>10.1} ns/iter");
    }
}

fn bench<F: FnMut()>(name: &str, iters: u64, bytes_per_iter: u64, f: F) {
    report(name, iters, bytes_per_iter, warmed(iters, f).as_nanos());
}

fn main() {
    let aes = Aes128::new(&[7u8; 16]);
    let block = [0x42u8; 16];
    let ct = aes.encrypt_block(&block);
    bench("aes128/encrypt_block", 200_000, 16, || {
        black_box(aes.encrypt_block(black_box(&block)));
    });
    bench("aes128/decrypt_block", 200_000, 16, || {
        black_box(aes.decrypt_block(black_box(&ct)));
    });
    bench("aes128/key_schedule", 100_000, 0, || {
        black_box(Aes128::new(black_box(&[9u8; 16])));
    });

    let seed = CounterBlock::new(0x8000, 3, 5);
    bench("ctr/encrypt_line_128B", 100_000, 128, || {
        let mut line = [0x5Au8; 128];
        encrypt_line(&aes, black_box(&seed), &mut line);
        black_box(line);
    });

    let cmac = Cmac::new(&[3u8; 16]);
    let sector = [0xA5u8; 32];
    let line = [0xA5u8; 128];
    bench("cmac/sector_mac_32B", 100_000, 32, || {
        black_box(sector_mac(&cmac, black_box(0x1000), black_box(7), &sector));
    });
    bench("cmac/line_tag_128B", 100_000, 128, || {
        black_box(cmac.compute(black_box(&line)));
    });

    let h = NodeHash::new();
    let node = [0xEEu8; 128];
    bench("hash/node_digest_128B", 100_000, 128, || {
        black_box(h.digest(black_box(0x4000), &node));
    });
}
