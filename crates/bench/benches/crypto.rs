//! Microbenchmarks for the functional cryptography: AES-128, AES-CMAC,
//! counter-mode line encryption, and the tree hash. These establish that
//! the functional layer is fast enough to back large property-test runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use secmem_crypto::aes::Aes128;
use secmem_crypto::cmac::{sector_mac, Cmac};
use secmem_crypto::ctr::{encrypt_line, CounterBlock};
use secmem_crypto::hash::NodeHash;

fn bench_aes(c: &mut Criterion) {
    let aes = Aes128::new(&[7u8; 16]);
    let block = [0x42u8; 16];
    let mut g = c.benchmark_group("aes128");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("encrypt_block", |b| b.iter(|| aes.encrypt_block(black_box(&block))));
    g.bench_function("decrypt_block", |b| {
        let ct = aes.encrypt_block(&block);
        b.iter(|| aes.decrypt_block(black_box(&ct)))
    });
    g.bench_function("key_schedule", |b| b.iter(|| Aes128::new(black_box(&[9u8; 16]))));
    g.finish();
}

fn bench_ctr(c: &mut Criterion) {
    let aes = Aes128::new(&[7u8; 16]);
    let seed = CounterBlock::new(0x8000, 3, 5);
    let mut g = c.benchmark_group("counter_mode");
    g.throughput(Throughput::Bytes(128));
    g.bench_function("encrypt_line_128B", |b| {
        b.iter(|| {
            let mut line = [0x5Au8; 128];
            encrypt_line(&aes, black_box(&seed), &mut line);
            line
        })
    });
    g.finish();
}

fn bench_cmac(c: &mut Criterion) {
    let cmac = Cmac::new(&[3u8; 16]);
    let sector = [0xA5u8; 32];
    let line = [0xA5u8; 128];
    let mut g = c.benchmark_group("cmac");
    g.throughput(Throughput::Bytes(32));
    g.bench_function("sector_mac_32B", |b| {
        b.iter(|| sector_mac(&cmac, black_box(0x1000), black_box(7), &sector))
    });
    g.throughput(Throughput::Bytes(128));
    g.bench_function("line_tag_128B", |b| b.iter(|| cmac.compute(black_box(&line))));
    g.finish();
}

fn bench_hash(c: &mut Criterion) {
    let h = NodeHash::new();
    let node = [0xEEu8; 128];
    let mut g = c.benchmark_group("tree_hash");
    g.throughput(Throughput::Bytes(128));
    g.bench_function("node_digest_128B", |b| b.iter(|| h.digest(black_box(0x4000), &node)));
    g.finish();
}

criterion_group!(benches, bench_aes, bench_ctr, bench_cmac, bench_hash);
criterion_main!(benches);
