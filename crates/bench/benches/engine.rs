//! Benchmarks of the secure memory engine itself: read/write transaction
//! throughput per scheme for one partition, and the functional secure
//! memory's verified read/write path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use secmem_core::functional::FunctionalSecureMemory;
use secmem_core::{SecureBackend, SecureMemConfig, SecurityScheme};
use secmem_gpusim::backend::MemoryBackend;
use secmem_gpusim::config::GpuConfig;
use secmem_gpusim::types::{BackendReq, SectorMask};

/// Pushes a stream of sector reads through one partition's engine and
/// drains it, returning the number of completed responses.
fn drive_engine(backend: &mut SecureBackend, reads: u64) -> u64 {
    let mut done = 0;
    let mut issued = 0;
    let mut now = 0u64;
    while done < reads {
        if issued < reads && backend.can_accept_read() {
            backend.submit_read(
                now,
                BackendReq {
                    id: issued,
                    line_addr: issued * 128,
                    sectors: SectorMask::single((issued % 4) as u32),
                    bank: 0,
                },
            );
            issued += 1;
        }
        backend.cycle(now);
        while backend.pop_read_response().is_some() {
            done += 1;
        }
        now += 1;
        assert!(now < reads * 1_000, "engine wedged");
    }
    done
}

fn bench_engine_schemes(c: &mut Criterion) {
    let gpu = GpuConfig::small();
    let mut g = c.benchmark_group("secure_engine");
    g.sample_size(20);
    for scheme in [SecurityScheme::CtrMacBmt, SecurityScheme::Direct, SecurityScheme::DirectMacMt] {
        g.bench_function(format!("read_256_sectors/{scheme}"), |b| {
            b.iter(|| {
                let mut backend =
                    SecureBackend::new(SecureMemConfig::with_scheme(scheme), &gpu);
                drive_engine(black_box(&mut backend), 256)
            })
        });
    }
    g.finish();
}

fn bench_functional(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional_secure_memory");
    let mut m =
        FunctionalSecureMemory::new(SecurityScheme::CtrMacBmt, 4 * 1024 * 1024, &[1u8; 16]);
    let data = [0x77u8; 128];
    m.write_line(0, &data);
    g.bench_function("write_line_verified", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            m.write_line(black_box(i * 128), &data)
        })
    });
    g.bench_function("read_line_verified", |b| b.iter(|| m.read_line(black_box(0)).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_engine_schemes, bench_functional);
criterion_main!(benches);
