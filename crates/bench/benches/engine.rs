//! Benchmarks of the secure memory engine itself: read/write transaction
//! throughput per scheme for one partition, and the functional secure
//! memory's verified read/write path.
//!
//! Plain `std::time` harness (`harness = false`).

use secmem_bench::timing::warmed;
use std::hint::black_box;

use secmem_core::functional::FunctionalSecureMemory;
use secmem_core::{SecureBackend, SecureMemConfig, SecurityScheme};
use secmem_gpusim::backend::MemoryBackend;
use secmem_gpusim::config::GpuConfig;
use secmem_gpusim::types::{BackendReq, SectorMask};

/// Pushes a stream of sector reads through one partition's engine and
/// drains it, returning the number of completed responses.
fn drive_engine(backend: &mut SecureBackend, reads: u64) -> u64 {
    let mut done = 0;
    let mut issued = 0;
    let mut now = 0u64;
    while done < reads {
        if issued < reads && backend.can_accept_read() {
            backend.submit_read(
                now,
                BackendReq {
                    id: issued,
                    line_addr: issued * 128,
                    sectors: SectorMask::single((issued % 4) as u32),
                    bank: 0,
                },
            );
            issued += 1;
        }
        backend.cycle(now);
        while backend.pop_read_response().is_some() {
            done += 1;
        }
        now += 1;
        assert!(now < reads * 1_000, "engine wedged");
    }
    done
}

fn bench<F: FnMut()>(name: &str, iters: u64, f: F) {
    let us_per = warmed(iters, f).as_nanos() as f64 / iters as f64 / 1e3;
    println!("{name:<44} {us_per:>10.2} us/iter");
}

fn main() {
    let gpu = GpuConfig::small();
    for scheme in [SecurityScheme::CtrMacBmt, SecurityScheme::Direct, SecurityScheme::DirectMacMt] {
        bench(&format!("engine/read_256_sectors/{scheme}"), 20, || {
            let mut backend = SecureBackend::new(SecureMemConfig::with_scheme(scheme), &gpu);
            black_box(drive_engine(black_box(&mut backend), 256));
        });
    }

    let mut m = FunctionalSecureMemory::new(SecurityScheme::CtrMacBmt, 4 * 1024 * 1024, &[1u8; 16]);
    let data = [0x77u8; 128];
    m.write_line(0, &data);
    let mut i = 0u64;
    bench("functional/write_line_verified", 20_000, || {
        i = (i + 1) % 1024;
        m.write_line(black_box(i * 128), &data);
    });
    bench("functional/read_line_verified", 20_000, || {
        black_box(m.read_line(black_box(0)).unwrap());
    });
}
