//! End-to-end simulator benchmarks: cycles/second for the scaled-down
//! GPU under each backend, plus per-experiment miniatures that exercise
//! the same code paths as the paper's tables and figures (the full-size
//! reproduction lives in the `reproduce` binary).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use secmem_bench::{run_job, BackendChoice, Job};
use secmem_core::{MetadataCacheKind, SecureMemConfig};
use secmem_gpusim::config::GpuConfig;
use secmem_workloads::suite;

const CYCLES: u64 = 4_000;

fn job(bench: &str, backend: BackendChoice) -> Job {
    Job {
        kernel: suite::by_name(bench).expect("benchmark exists"),
        gpu: GpuConfig::small(),
        backend,
        cycles: CYCLES,
        warmup: 0,
        label: bench.into(),
    }
}

fn bench_baseline_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_4k_cycles");
    g.sample_size(10);
    g.bench_function("baseline/fdtd2d", |b| {
        let j = job("fdtd2d", BackendChoice::Baseline);
        b.iter(|| run_job(black_box(&j)))
    });
    g.bench_function("secure_mem/fdtd2d", |b| {
        let j = job("fdtd2d", BackendChoice::Secure(SecureMemConfig::secure_mem()));
        b.iter(|| run_job(black_box(&j)))
    });
    g.bench_function("secure_mem/kmeans_scatter", |b| {
        let j = job("kmeans", BackendChoice::Secure(SecureMemConfig::secure_mem()));
        b.iter(|| run_job(black_box(&j)))
    });
    g.bench_function("direct_40/fdtd2d", |b| {
        let j = job("fdtd2d", BackendChoice::Secure(SecureMemConfig::direct(40)));
        b.iter(|| run_job(black_box(&j)))
    });
    g.bench_function("unified_mdcache/fdtd2d", |b| {
        let cfg = SecureMemConfig {
            cache_kind: MetadataCacheKind::Unified,
            ..SecureMemConfig::secure_mem()
        };
        let j = job("fdtd2d", BackendChoice::Secure(cfg));
        b.iter(|| run_job(black_box(&j)))
    });
    g.finish();
}

criterion_group!(benches, bench_baseline_sim);
criterion_main!(benches);
