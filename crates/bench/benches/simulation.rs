//! End-to-end simulator benchmarks: cycles/second for the scaled-down
//! GPU under each backend, plus per-experiment miniatures that exercise
//! the same code paths as the paper's tables and figures (the full-size
//! reproduction lives in the `reproduce` binary).
//!
//! Plain `std::time` harness (`harness = false`).

use secmem_bench::timing::time_iters;
use std::hint::black_box;

use secmem_bench::{run_job, BackendChoice, Job};
use secmem_core::{MetadataCacheKind, SecureMemConfig};
use secmem_gpusim::config::GpuConfig;
use secmem_workloads::suite;

const CYCLES: u64 = 4_000;
const ITERS: u64 = 5;

fn job(bench: &str, backend: BackendChoice) -> Job {
    Job {
        kernel: suite::by_name(bench).expect("benchmark exists"),
        gpu: GpuConfig::small(),
        backend,
        cycles: CYCLES,
        warmup: 0,
        label: bench.into(),
        telemetry: None,
        telemetry_out: None,
        sim_threads: 1,
    }
}

fn bench(name: &str, j: &Job) {
    run_job(j); // warm-up
    let total = time_iters(ITERS, || {
        black_box(run_job(black_box(j)));
    });
    let elapsed = total.as_secs_f64() / ITERS as f64;
    let kcps = CYCLES as f64 / elapsed / 1e3;
    println!("{name:<32} {:>8.1} ms/run  {kcps:>8.1} kcycles/s", elapsed * 1e3);
}

fn main() {
    bench("baseline/fdtd2d", &job("fdtd2d", BackendChoice::Baseline));
    bench("secure_mem/fdtd2d", &job("fdtd2d", BackendChoice::Secure(SecureMemConfig::secure_mem())));
    bench("secure_mem/kmeans_scatter", &job("kmeans", BackendChoice::Secure(SecureMemConfig::secure_mem())));
    bench("direct_40/fdtd2d", &job("fdtd2d", BackendChoice::Secure(SecureMemConfig::direct(40))));
    let unified = SecureMemConfig { cache_kind: MetadataCacheKind::Unified, ..SecureMemConfig::secure_mem() };
    bench("unified_mdcache/fdtd2d", &job("fdtd2d", BackendChoice::Secure(unified)));
}
