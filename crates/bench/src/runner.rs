//! Simulation runner: executes (benchmark, configuration) pairs, in
//! parallel across OS threads, and returns the reports.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use secmem_checkpoint::{fnv1a, Frame};
use secmem_core::{SecureBackend, SecureMemConfig};
use secmem_gpusim::backend::{MemoryBackend, PassthroughBackend};
use secmem_gpusim::config::GpuConfig;
use secmem_gpusim::reuse::NUM_BUCKETS;
use secmem_gpusim::sim::Simulator;
use secmem_gpusim::stats::SimReport;
use secmem_telemetry::{chrome, Telemetry, TelemetryConfig, TelemetrySnapshot};
use secmem_workloads::SyntheticKernel;

/// Which memory backend to install.
#[derive(Debug, Clone)]
pub enum BackendChoice {
    /// Baseline GPU, no secure memory.
    Baseline,
    /// Secure memory with the given configuration.
    Secure(SecureMemConfig),
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub bench: String,
    /// A caller-chosen configuration label.
    pub label: String,
    /// The end-of-run report.
    pub report: SimReport,
    /// Reuse-distance histograms `[counter, mac, tree]` of partition 0,
    /// when profiling was enabled.
    pub reuse: Option<[[u64; NUM_BUCKETS]; 3]>,
    /// Telemetry recorded during the run, when [`Job::telemetry`] was
    /// set. Carried back to the coordinating thread, which owns all
    /// file output (workers never write, so sweeps cannot race).
    pub telemetry: Option<TelemetrySnapshot>,
}

/// One job for the parallel runner.
#[derive(Debug, Clone)]
pub struct Job {
    /// Benchmark to run.
    pub kernel: SyntheticKernel,
    /// GPU configuration.
    pub gpu: GpuConfig,
    /// Backend choice.
    pub backend: BackendChoice,
    /// Cycle budget.
    pub cycles: u64,
    /// Warmup cycles whose statistics are discarded (0 = none).
    pub warmup: u64,
    /// Label attached to the result.
    pub label: String,
    /// When set, the run collects telemetry with this configuration.
    pub telemetry: Option<TelemetryConfig>,
    /// Where the coordinating thread writes this job's Chrome trace
    /// (ignored unless [`Job::telemetry`] is set).
    pub telemetry_out: Option<PathBuf>,
    /// Worker threads for the simulator's partition/SM stepping
    /// (clamped to at least 1). Reports are byte-identical at every
    /// value, so this is a performance knob, not part of the job's
    /// identity — [`job_fingerprint`](crate::job_fingerprint)
    /// deliberately excludes it.
    pub sim_threads: usize,
}

/// Runs a single job.
pub fn run_job(job: &Job) -> RunResult {
    use secmem_gpusim::kernel::Kernel;
    let bench = job.kernel.name().to_string();
    let telemetry = match &job.telemetry {
        Some(cfg) => Telemetry::enabled(cfg.clone()),
        None => Telemetry::disabled(),
    };
    match &job.backend {
        BackendChoice::Baseline => {
            let mut sim =
                Simulator::new(job.gpu.clone(), &job.kernel, |_, g| PassthroughBackend::from_config(g));
            sim.set_threads(job.sim_threads);
            sim.set_telemetry(telemetry);
            let report = if job.warmup > 0 {
                sim.run_with_warmup(job.warmup, job.cycles)
            } else {
                sim.run(job.cycles)
            };
            let telemetry = sim.telemetry_snapshot();
            RunResult { bench, label: job.label.clone(), report, reuse: None, telemetry }
        }
        BackendChoice::Secure(cfg) => {
            let cfg = cfg.clone();
            let mut sim =
                Simulator::new(job.gpu.clone(), &job.kernel, |_, g| SecureBackend::new(cfg.clone(), g));
            sim.set_threads(job.sim_threads);
            sim.set_telemetry(telemetry);
            let report = if job.warmup > 0 {
                sim.run_with_warmup(job.warmup, job.cycles)
            } else {
                sim.run(job.cycles)
            };
            let reuse = sim
                .partition(0)
                .backend()
                .reuse_profilers()
                .map(|p| [p[0].histogram(), p[1].histogram(), p[2].histogram()]);
            let telemetry = sim.telemetry_snapshot();
            RunResult { bench, label: job.label.clone(), report, reuse, telemetry }
        }
    }
}

/// A warmed simulator snapshot and whether its warmup window was
/// truncated by early kernel retirement.
#[derive(Debug)]
struct WarmEntry {
    frame: Frame,
    truncated: bool,
}

/// A cache of warmed simulator snapshots shared across the jobs of one
/// sweep.
///
/// Sweeps frequently run many configurations of the same benchmark
/// under the same warmup; everything before the measured window is
/// identical work. Keys cover everything that shapes the warmup prefix
/// — kernel, GPU configuration, backend configuration and warmup
/// length — so two jobs share a snapshot only when their prefixes are
/// provably the same simulation. The snapshot-resume guarantee (see
/// [`Simulator::save_checkpoint`]) makes a forked run byte-identical
/// to one that warmed from scratch.
#[derive(Debug, Default)]
pub struct WarmCache {
    inner: Mutex<HashMap<u64, Arc<WarmEntry>>>,
}

impl WarmCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct warmed snapshots held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("warm cache lock").len()
    }

    /// True when no snapshot has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, key: u64) -> Option<Arc<WarmEntry>> {
        self.inner.lock().expect("warm cache lock").get(&key).cloned()
    }

    fn put(&self, key: u64, entry: WarmEntry) {
        // Two racing jobs with the same key compute identical frames
        // (the simulation is deterministic), so last-write-wins is fine.
        self.inner.lock().expect("warm cache lock").insert(key, Arc::new(entry));
    }
}

/// Everything that shapes the warmup prefix, fingerprinted.
fn warm_key(job: &Job) -> u64 {
    fnv1a(format!("{:?}|{:?}|{:?}|{}", job.kernel, job.gpu, job.backend, job.warmup).as_bytes())
}

/// Warms `sim` for `job`, forking from `cache` when a snapshot with the
/// same prefix exists, then runs the measured window.
fn warmed_report<B: MemoryBackend>(sim: &mut Simulator<B>, job: &Job, cache: &WarmCache) -> SimReport {
    let key = warm_key(job);
    let restored =
        cache.get(key).and_then(|entry| sim.restore_checkpoint(&entry.frame).ok().map(|()| entry.truncated));
    let truncated = match restored {
        Some(truncated) => truncated,
        None => {
            let truncated = sim.warm_up(job.warmup);
            cache.put(key, WarmEntry { frame: sim.save_checkpoint(), truncated });
            truncated
        }
    };
    let mut report = sim.run(job.cycles);
    report.cycles = sim.now().saturating_sub(job.warmup);
    report.warmup_truncated = truncated;
    report
}

/// Runs a single job, forking its warmup from `cache` when another job
/// with an identical (kernel, GPU, backend, warmup) prefix has already
/// warmed a simulator.
///
/// Falls back to [`run_job`] for jobs without warmup (nothing to
/// share) or with telemetry enabled (sample-window boundaries shift
/// across a restore, so telemetry runs always warm from scratch to
/// keep their traces identical to unforked runs).
pub fn run_job_cached(job: &Job, cache: &WarmCache) -> RunResult {
    use secmem_gpusim::kernel::Kernel;
    if job.warmup == 0 || job.telemetry.is_some() {
        return run_job(job);
    }
    let bench = job.kernel.name().to_string();
    match &job.backend {
        BackendChoice::Baseline => {
            let mut sim =
                Simulator::new(job.gpu.clone(), &job.kernel, |_, g| PassthroughBackend::from_config(g));
            sim.set_threads(job.sim_threads);
            let report = warmed_report(&mut sim, job, cache);
            RunResult { bench, label: job.label.clone(), report, reuse: None, telemetry: None }
        }
        BackendChoice::Secure(cfg) => {
            let cfg = cfg.clone();
            let mut sim =
                Simulator::new(job.gpu.clone(), &job.kernel, |_, g| SecureBackend::new(cfg.clone(), g));
            sim.set_threads(job.sim_threads);
            let report = warmed_report(&mut sim, job, cache);
            let reuse = sim
                .partition(0)
                .backend()
                .reuse_profilers()
                .map(|p| [p[0].histogram(), p[1].histogram(), p[2].histogram()]);
            RunResult { bench, label: job.label.clone(), report, reuse, telemetry: None }
        }
    }
}

/// A job that panicked (twice — each job gets one retry before it is
/// declared failed).
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Benchmark name of the failed job.
    pub bench: String,
    /// Configuration label of the failed job.
    pub label: String,
    /// The panic payload, stringified.
    pub error: String,
    /// The telemetry output path the job would have written, so sweep
    /// tooling can tell an absent trace file from a racing one.
    pub telemetry_path: Option<PathBuf>,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}: {}", self.bench, self.label, self.error)?;
        if let Some(path) = &self.telemetry_path {
            write!(f, " (telemetry not written: {})", path.display())?;
        }
        Ok(())
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs one job with panic isolation: a panicking job is retried once,
/// and a second panic becomes a [`JobFailure`] instead of tearing down
/// the whole sweep.
///
/// This is the job-execution core shared by the batch sweep runner
/// ([`run_jobs_with_failures`]) and the `secmem-serve` sweep server:
/// both schedule jobs however they like and funnel each one through
/// here, so panic isolation, the retry policy and warm-checkpoint
/// forking behave identically whether a spec runs as a batch or is
/// submitted over HTTP.
pub fn run_job_isolated(job: &Job, cache: &WarmCache) -> Result<RunResult, JobFailure> {
    use secmem_gpusim::kernel::Kernel;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut last = None;
    for _attempt in 0..2 {
        match catch_unwind(AssertUnwindSafe(|| run_job_cached(job, cache))) {
            Ok(result) => return Ok(result),
            Err(payload) => last = Some(panic_message(payload.as_ref())),
        }
    }
    Err(JobFailure {
        bench: job.kernel.name().to_string(),
        label: job.label.clone(),
        error: last.unwrap_or_else(|| "unknown panic".to_string()),
        telemetry_path: job.telemetry_out.clone(),
    })
}

/// Runs all jobs, using up to `threads` worker threads (0 = all cores).
///
/// Successful results come back in job order; jobs whose simulation
/// panicked (even after one retry) are reported separately so a single
/// bad configuration cannot take down an entire sweep.
pub fn run_jobs_with_failures(jobs: Vec<Job>, threads: usize) -> (Vec<RunResult>, Vec<JobFailure>) {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    };
    let n = jobs.len();
    // Never spawn more workers than there are jobs: each extra thread
    // would only take the scheduler lock, observe the queue drained,
    // and exit — pure startup cost on small sweeps.
    let threads = threads.min(n);
    let mut slots: Vec<Option<Result<RunResult, JobFailure>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let next = Mutex::new(0usize);
    let slots = Mutex::new(slots);
    // Jobs sharing a (kernel, GPU, backend, warmup) prefix fork their
    // warmup from one snapshot instead of re-simulating it.
    let cache = WarmCache::new();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = {
                    let mut guard = next.lock().expect("scheduler lock");
                    if *guard >= n {
                        return;
                    }
                    let i = *guard;
                    *guard += 1;
                    i
                };
                let outcome = run_job_isolated(&jobs[index], &cache);
                slots.lock().expect("results lock")[index] = Some(outcome);
            });
        }
    });
    let mut results = Vec::with_capacity(n);
    let mut failures = Vec::new();
    for (index, slot) in slots.into_inner().expect("all workers joined").into_iter().enumerate() {
        match slot.expect("every job was attempted") {
            Ok(r) => {
                // Trace files are written here, after the scoped join:
                // only this thread touches the filesystem, so jobs with
                // overlapping output paths cannot interleave writes.
                if let (Some(path), Some(snap)) = (&jobs[index].telemetry_out, &r.telemetry) {
                    if let Err(err) = std::fs::write(path, chrome::chrome_trace(snap)) {
                        eprintln!("[runner] failed to write trace {}: {err}", path.display());
                    }
                }
                results.push(r);
            }
            Err(f) => failures.push(f),
        }
    }
    (results, failures)
}

/// Runs all jobs, using up to `threads` worker threads (0 = all cores).
/// Results come back in job order.
///
/// Panicking jobs are dropped from the result set after a failure
/// summary is printed to stderr; callers that need the failure list
/// programmatically should use [`run_jobs_with_failures`].
pub fn run_jobs(jobs: Vec<Job>, threads: usize) -> Vec<RunResult> {
    let (results, failures) = run_jobs_with_failures(jobs, threads);
    if !failures.is_empty() {
        eprintln!("[runner] {} job(s) failed after retry:", failures.len());
        for f in &failures {
            eprintln!("[runner]   {f}");
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use secmem_workloads::suite;

    fn tiny_gpu() -> GpuConfig {
        GpuConfig::small()
    }

    #[test]
    fn baseline_job_runs() {
        let k = suite::by_name("fdtd2d").expect("exists");
        let job = Job {
            kernel: k,
            gpu: tiny_gpu(),
            backend: BackendChoice::Baseline,
            cycles: 2_000,
            warmup: 0,
            label: "baseline".into(),
            telemetry: None,
            telemetry_out: None,
            sim_threads: 1,
        };
        let r = run_job(&job);
        assert!(r.report.thread_instructions > 0);
        assert!(r.reuse.is_none());
    }

    #[test]
    fn secure_job_runs_with_reuse() {
        let k = suite::by_name("fdtd2d").expect("exists");
        let mut cfg = SecureMemConfig::secure_mem();
        cfg.profile_reuse = true;
        let job = Job {
            kernel: k,
            gpu: tiny_gpu(),
            backend: BackendChoice::Secure(cfg),
            cycles: 2_000,
            warmup: 0,
            label: "secure".into(),
            telemetry: None,
            telemetry_out: None,
            sim_threads: 1,
        };
        let r = run_job(&job);
        assert!(r.report.thread_instructions > 0);
        let reuse = r.reuse.expect("profiling enabled");
        assert!(reuse[0].iter().sum::<u64>() > 0, "counter accesses profiled");
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let jobs: Vec<Job> = ["fdtd2d", "kmeans", "nw"]
            .iter()
            .map(|n| Job {
                kernel: suite::by_name(n).expect("exists"),
                gpu: tiny_gpu(),
                backend: BackendChoice::Baseline,
                cycles: 1_000,
                warmup: 0,
                label: (*n).into(),
                telemetry: None,
                telemetry_out: None,
                sim_threads: 1,
            })
            .collect();
        let results = run_jobs(jobs, 3);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].bench, "fdtd2d");
        assert_eq!(results[1].bench, "kmeans");
        assert_eq!(results[2].bench, "nw");
    }

    #[test]
    fn panicking_job_is_reported_not_fatal() {
        let mut bad_gpu = tiny_gpu();
        bad_gpu.issue_width = 0; // rejected by GpuConfig::validate → Simulator::new panics
        let job = |name: &str, gpu: GpuConfig, label: &str| Job {
            kernel: suite::by_name(name).expect("exists"),
            gpu,
            backend: BackendChoice::Baseline,
            cycles: 1_000,
            warmup: 0,
            label: label.into(),
            telemetry: None,
            telemetry_out: None,
            sim_threads: 1,
        };
        let jobs = vec![
            job("fdtd2d", tiny_gpu(), "ok-1"),
            job("kmeans", bad_gpu, "broken"),
            job("nw", tiny_gpu(), "ok-2"),
        ];
        let (results, failures) = run_jobs_with_failures(jobs, 2);
        assert_eq!(results.len(), 2, "healthy jobs still complete");
        assert_eq!(results[0].bench, "fdtd2d");
        assert_eq!(results[1].bench, "nw");
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].bench, "kmeans");
        assert_eq!(failures[0].label, "broken");
        assert!(
            failures[0].error.contains("issue_width"),
            "failure carries the panic message: {}",
            failures[0].error
        );
    }

    #[test]
    fn warm_cache_fork_matches_cold_warmup() {
        let k = suite::by_name("fdtd2d").expect("exists");
        let mk = |label: &str| Job {
            kernel: k.clone(),
            gpu: tiny_gpu(),
            backend: BackendChoice::Secure(SecureMemConfig::secure_mem()),
            cycles: 5_000,
            warmup: 2_000,
            label: label.into(),
            telemetry: None,
            telemetry_out: None,
            sim_threads: 1,
        };
        let cold = run_job(&mk("cold"));
        let cache = WarmCache::new();
        let miss = run_job_cached(&mk("miss"), &cache);
        assert_eq!(cache.len(), 1, "miss populates the cache");
        let hit = run_job_cached(&mk("hit"), &cache);
        assert_eq!(cache.len(), 1, "hit adds nothing");
        let fp = |r: &RunResult| format!("{:?}", r.report);
        assert_eq!(fp(&cold), fp(&miss), "cache-miss path matches run_job");
        assert_eq!(fp(&cold), fp(&hit), "forked warmup matches cold warmup");
    }

    #[test]
    fn warm_cache_keys_separate_configurations() {
        let k = suite::by_name("nw").expect("exists");
        let mk = |backend: BackendChoice, warmup: u64| Job {
            kernel: k.clone(),
            gpu: tiny_gpu(),
            backend,
            cycles: 2_000,
            warmup,
            label: "x".into(),
            telemetry: None,
            telemetry_out: None,
            sim_threads: 1,
        };
        let cache = WarmCache::new();
        let _ = run_job_cached(&mk(BackendChoice::Baseline, 500), &cache);
        let _ = run_job_cached(&mk(BackendChoice::Secure(SecureMemConfig::secure_mem()), 500), &cache);
        let _ = run_job_cached(&mk(BackendChoice::Baseline, 700), &cache);
        assert_eq!(cache.len(), 3, "backend and warmup both key the cache");
        // No warmup: nothing to share, the cache is bypassed.
        let _ = run_job_cached(&mk(BackendChoice::Baseline, 0), &cache);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn telemetry_written_per_job_after_join() {
        let dir = std::env::temp_dir().join(format!("secmem-runner-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let trace = |name: &str| dir.join(format!("{name}.trace.json"));
        let job = |name: &str, gpu: GpuConfig| Job {
            kernel: suite::by_name(name).expect("exists"),
            gpu,
            backend: BackendChoice::Baseline,
            cycles: 2_000,
            warmup: 0,
            label: name.into(),
            telemetry: Some(TelemetryConfig { sample_interval: 128, ..TelemetryConfig::default() }),
            telemetry_out: Some(trace(name)),
            sim_threads: 1,
        };
        let mut bad_gpu = tiny_gpu();
        bad_gpu.issue_width = 0;
        let jobs = vec![job("fdtd2d", tiny_gpu()), job("kmeans", tiny_gpu()), job("nw", bad_gpu)];
        // More threads than jobs: exercises the worker-count clamp.
        let (results, failures) = run_jobs_with_failures(jobs, 8);
        assert_eq!(results.len(), 2);
        for r in &results {
            let snap = r.telemetry.as_ref().expect("telemetry collected");
            assert!(snap.series("dram.data_bytes").is_some(), "sampled series present");
            let text = std::fs::read_to_string(trace(&r.bench)).expect("trace written");
            chrome::validate_json(&text).expect("trace is valid JSON");
            assert!(!text.is_empty());
        }
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].telemetry_path, Some(trace("nw")), "failure carries the path");
        assert!(!trace("nw").exists(), "failed job writes no trace");
        assert!(format!("{}", failures[0]).contains("telemetry not written"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
