//! Plain-text table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use secmem_checkpoint::fnv1a;

/// A rendered experiment: a title, column headers and string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpTable {
    /// Display title (e.g. "Fig. 3 — Normalized IPC ...").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes printed under the table.
    pub notes: Vec<String>,
}

impl ExpTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Appends a footnote.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-');
                if numeric {
                    let _ = write!(out, "{cell:>w$}");
                } else {
                    let _ = write!(out, "{cell:<w$}");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  * {n}");
        }
        out
    }

    /// Renders CSV (headers + rows; notes as trailing comments). The
    /// last line is always `# report_fp <fnv1a>` — the FNV-1a of every
    /// preceding byte — so `reproduce --resume` can tell a complete
    /// results file from one truncated by a crash mid-write. See
    /// [`csv_is_intact`].
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        let _ = writeln!(out, "# report_fp {:016x}", fnv1a(out.as_bytes()));
        out
    }

    /// Writes the CSV into `dir/<slug>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path, slug: &str) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{slug}.csv")), self.to_csv())
    }
}

/// Checks the integrity of a CSV produced by [`ExpTable::to_csv`]: the
/// trailing `# report_fp <fnv1a>` line must be present, parseable, and
/// match the FNV-1a of everything before it. A file truncated by a
/// crash, or edited by hand, fails the check.
pub fn csv_is_intact(text: &str) -> bool {
    let Some(stripped) = text.strip_suffix('\n') else { return false };
    let Some(pos) = stripped.rfind('\n') else { return false };
    let (body, last) = stripped.split_at(pos + 1);
    let Some(hex) = last.strip_prefix("# report_fp ") else { return false };
    let Ok(stored) = u64::from_str_radix(hex, 16) else { return false };
    stored == fnv1a(body.as_bytes())
}

/// Formats a ratio as a fixed-point string (e.g. normalized IPC).
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Geometric mean of a slice (ignores non-positive entries).
pub fn gmean(xs: &[f64]) -> f64 {
    let positive: Vec<f64> = xs.iter().copied().filter(|&x| x > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|x| x.ln()).sum::<f64>() / positive.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = ExpTable::new("Test", &["bench", "ipc"]);
        t.push_row(vec!["fdtd2d".into(), "1774.0".into()]);
        t.push_row(vec!["nw".into(), "23.9".into()]);
        let s = t.render();
        assert!(s.contains("== Test =="));
        assert!(s.contains("fdtd2d"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = ExpTable::new("T", &["a", "b"]);
        t.push_row(vec!["x".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = ExpTable::new("T", &["a"]);
        t.push_row(vec!["x,y".into()]);
        t.note("hello");
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("# hello"));
    }

    #[test]
    fn csv_carries_matching_fingerprint() {
        let mut t = ExpTable::new("T", &["bench", "ipc"]);
        t.push_row(vec!["nw".into(), "23.9".into()]);
        t.note("a note");
        let csv = t.to_csv();
        assert!(csv.lines().last().expect("nonempty").starts_with("# report_fp "));
        assert!(csv_is_intact(&csv));
    }

    #[test]
    fn corrupted_csv_fails_the_integrity_check() {
        let mut t = ExpTable::new("T", &["a"]);
        t.push_row(vec!["1".into()]);
        let csv = t.to_csv();
        // Truncated mid-file (fingerprint line lost).
        let cut = csv.len() - 20;
        assert!(!csv_is_intact(&csv[..cut]));
        // Row edited after the fact.
        assert!(!csv_is_intact(&csv.replace("1\n", "2\n")));
        // Fingerprint replaced with garbage.
        assert!(!csv_is_intact("a\n1\n# report_fp zzzz\n"));
        // Missing entirely (a pre-fingerprint results file).
        assert!(!csv_is_intact("a\n1\n"));
        assert!(!csv_is_intact(""));
    }

    #[test]
    fn gmean_matches_hand_computation() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 0.0);
        assert_eq!(gmean(&[0.0]), 0.0);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_ratio(0.5), "0.500");
        assert_eq!(fmt_pct(0.259), "25.9%");
    }
}
