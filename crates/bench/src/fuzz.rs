//! Seeded mutation fuzzing for the workspace's hand-written parsers.
//!
//! The repository accepts six kinds of untrusted byte streams: text
//! trace files ([`secmem_gpusim::trace::Trace::from_text`]), SECMTRC
//! binary traces ([`secmem_gpusim::trace_bin::BinaryTrace::decode`]),
//! the linter's `lint.toml` baseline ([`secmem_lint::Baseline::parse`]),
//! Chrome trace JSON ([`secmem_telemetry::chrome::validate_json`]),
//! checkpoint frames ([`secmem_checkpoint::Frame::decode`]) and Rust
//! source fed to the linter's lexer/parser pipeline
//! ([`secmem_lint::lint_source`]). The
//! contract for all of them is the same as everywhere else in the
//! workspace: arbitrary input must produce a typed error, never a
//! panic.
//!
//! Everything here is dependency-free and deterministic: mutations come
//! from the simulator's own SplitMix64 generator, so a failing case is
//! reproducible from `(corpus, seed, iteration)` alone and can be
//! turned into a permanent regression fixture.

use std::panic::{catch_unwind, AssertUnwindSafe};

use secmem_checkpoint::Frame;
use secmem_gpusim::rng::Rng64;
use secmem_gpusim::trace::Trace;
use secmem_gpusim::trace_bin::{self, BinaryTrace};
use secmem_lint::Baseline;
use secmem_telemetry::chrome;

/// A parser under fuzz.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corpus {
    /// The v1 trace text format.
    Trace,
    /// The SECMTRC binary trace container.
    BinTrace,
    /// The linter's `lint.toml` subset.
    LintBaseline,
    /// Chrome `trace_event` JSON syntax validation.
    ChromeJson,
    /// Binary checkpoint frames.
    Checkpoint,
    /// Rust source through the linter's lexer, scanner, item parser and
    /// token lints.
    LintSource,
}

impl Corpus {
    /// Every corpus, for smoke sweeps.
    pub const ALL: [Corpus; 6] = [
        Corpus::Trace,
        Corpus::BinTrace,
        Corpus::LintBaseline,
        Corpus::ChromeJson,
        Corpus::Checkpoint,
        Corpus::LintSource,
    ];

    /// Short display name.
    pub fn label(self) -> &'static str {
        match self {
            Corpus::Trace => "trace",
            Corpus::BinTrace => "bin-trace",
            Corpus::LintBaseline => "lint-baseline",
            Corpus::ChromeJson => "chrome-json",
            Corpus::Checkpoint => "checkpoint",
            Corpus::LintSource => "lint-source",
        }
    }
}

/// A deterministic byte-stream mutator (SplitMix64-driven).
#[derive(Debug, Clone)]
pub struct Mutator {
    rng: Rng64,
}

impl Mutator {
    /// A mutator whose whole output stream is a function of `seed`.
    pub fn new(seed: u64) -> Self {
        Self { rng: Rng64::new(seed) }
    }

    /// Returns a mutated copy of `base`: 1–8 rounds of byte flips,
    /// insertions, deletions, duplications, truncations and numeric
    /// splices.
    pub fn mutate(&mut self, base: &[u8]) -> Vec<u8> {
        let mut data = base.to_vec();
        let rounds = 1 + self.rng.gen_range(8);
        for _ in 0..rounds {
            if data.is_empty() {
                data.push(self.rng.next_u64() as u8);
                continue;
            }
            let len = data.len() as u64;
            match self.rng.gen_range(6) {
                0 => {
                    // Flip one byte.
                    let at = self.rng.gen_range(len) as usize;
                    data[at] ^= (1 + self.rng.gen_range(255)) as u8;
                }
                1 => {
                    // Insert a random byte.
                    let at = self.rng.gen_range(len + 1) as usize;
                    data.insert(at, self.rng.next_u64() as u8);
                }
                2 => {
                    // Delete a short range.
                    let at = self.rng.gen_range(len) as usize;
                    let n = (1 + self.rng.gen_range(8)) as usize;
                    data.drain(at..(at + n).min(data.len()));
                }
                3 => {
                    // Duplicate a short range in place.
                    let at = self.rng.gen_range(len) as usize;
                    let n = (1 + self.rng.gen_range(16)) as usize;
                    let chunk: Vec<u8> = data[at..(at + n).min(data.len())].to_vec();
                    let to = self.rng.gen_range(data.len() as u64 + 1) as usize;
                    data.splice(to..to, chunk);
                }
                4 => {
                    // Truncate.
                    let at = self.rng.gen_range(len + 1) as usize;
                    data.truncate(at);
                }
                _ => {
                    // Splice in text-format shrapnel: digits, separators
                    // and huge numbers reach deeper into the parsers
                    // than raw bytes do.
                    const SHRAPNEL: &[&[u8]] = &[
                        b"0",
                        b"-1",
                        b"18446744073709551615",
                        b"99999999999999999999",
                        b",",
                        b" ",
                        b"\n",
                        b"\"",
                        b"warp ",
                        b"[[baseline]]",
                        b"{",
                        b"0x",
                    ];
                    let chunk = SHRAPNEL[self.rng.gen_range(SHRAPNEL.len() as u64) as usize];
                    let at = self.rng.gen_range(len + 1) as usize;
                    data.splice(at..at, chunk.iter().copied());
                }
            }
        }
        data
    }
}

/// Well-formed exemplar inputs per corpus; mutation starts from these
/// so most cases exercise deep parser paths rather than dying on the
/// first header check.
pub fn seed_inputs(corpus: Corpus) -> Vec<Vec<u8>> {
    match corpus {
        Corpus::Trace => vec![
            b"# gpu-secure-memory trace v1\nwarp 0 0\nA 3\nL 1 100:f 180:3\nS 200:1\nX\n".to_vec(),
            b"# gpu-secure-memory trace v1\nwarp 1 2\nU 7\nL 0 1000:f\nX\nwarp 1 3\nX\n".to_vec(),
        ],
        Corpus::BinTrace => {
            // The text exemplars re-encoded as SECMTRC, so mutation
            // attacks checksums, varints and tag bytes of real files.
            seed_inputs(Corpus::Trace)
                .iter()
                .map(|text| {
                    let trace = Trace::from_text(&String::from_utf8_lossy(text))
                        .expect("text exemplars are valid");
                    trace_bin::encode(&trace)
                })
                .collect()
        }
        Corpus::LintBaseline => vec![
            b"disabled = [\"hot-format\"]\n[[baseline]]\nfile = \"crates/core/src/engine.rs\"\nlint = \"long-fn\"\ncount = 2\n".to_vec(),
            b"[[baseline]]\nfile = \"a.rs\" # comment\nlint = \"x\"\ncount = 1\n".to_vec(),
        ],
        Corpus::ChromeJson => vec![
            br#"{"traceEvents":[{"name":"dram","ph":"C","ts":12,"pid":1,"args":{"v":3.5}}],"displayTimeUnit":"ns"}"#.to_vec(),
            br#"[1,2.5e-3,"s",true,false,null,{"k":[{}]}]"#.to_vec(),
        ],
        Corpus::LintSource => vec![
            b"//! Doc.\nimpl Snapshot for Foo<'a, T> {\n    fn save(&self, w: &mut W) { self.a.save(w); }\n    fn load(r: &mut R) -> Result<Self, E> { Ok(Self { a: u8::load(r)? }) }\n}\n".to_vec(),
            b"pub struct Foo { a: u8 }\nfn f<T: Iterator<Item = Vec<Vec<u8>>>>(x: T) where T: Clone {\n    pool.for_each(&mut es, &|e| e.step(n));\n    let m = Mutex::new(0); m.lock().unwrap();\n    macro_rules! z { () => { panic!() } }\n    format!(\"{x:?}\");\n}\n".to_vec(),
        ],
        Corpus::Checkpoint => {
            // A real small frame plus one with a big payload, so length
            // fields and the checksum both get mutated.
            let small = Frame { config_fp: 0x5EC, cycle: 42, payload: vec![1, 2, 3, 4] }.encode();
            let big = Frame {
                config_fp: u64::MAX,
                cycle: 0,
                payload: (0..256u32).flat_map(|x| x.to_le_bytes()).collect(),
            }
            .encode();
            vec![small, big]
        }
    }
}

/// Feeds one input to the corpus parser, discarding the result.
///
/// Returning normally means the parser either accepted the input or
/// rejected it with a typed error — both are fine. A panic propagates
/// to the caller; [`fuzz_corpus`] catches it and reports the case.
pub fn parse_one(corpus: Corpus, input: &[u8]) {
    match corpus {
        Corpus::Trace => {
            let _ = Trace::from_text(&String::from_utf8_lossy(input));
        }
        Corpus::BinTrace => {
            if let Ok(bin) = BinaryTrace::decode(input) {
                // Decoding validates everything up front; a surviving
                // file must also materialize without panicking.
                let _ = bin.to_trace();
            }
        }
        Corpus::LintBaseline => {
            let _ = Baseline::parse(&String::from_utf8_lossy(input));
        }
        Corpus::ChromeJson => {
            let _ = chrome::validate_json(&String::from_utf8_lossy(input));
        }
        Corpus::LintSource => {
            // Arbitrary (usually non-UTF-8, never valid Rust) bytes must
            // come back as diagnostics or nothing — the lexer, scanner,
            // item parser and every lint pass must stay total.
            let policy = secmem_lint::Policy::default();
            let _ = secmem_lint::lint_source(
                "crates/gpusim/src/fuzzed.rs",
                &String::from_utf8_lossy(input),
                &policy,
            );
        }
        Corpus::Checkpoint => {
            if let Ok(frame) = Frame::decode(input) {
                // A frame that survives the checksum still carries an
                // arbitrary payload; the reader must stay typed on it.
                let mut r = secmem_checkpoint::Reader::new(&frame.payload);
                while r.remaining() > 0 {
                    if r.get_bytes().is_err() {
                        break;
                    }
                }
            }
        }
    }
}

/// A fuzz case that crashed a parser.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Which corpus crashed.
    pub corpus: Corpus,
    /// The mutator seed for the whole run.
    pub seed: u64,
    /// The iteration (mutation index) that produced the input.
    pub iteration: u64,
    /// The offending input bytes.
    pub input: Vec<u8>,
    /// The panic payload, stringified.
    pub panic: String,
}

impl std::fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} corpus, seed {:#x}, iteration {}: panic '{}' on {} bytes: {}",
            self.corpus.label(),
            self.seed,
            self.iteration,
            self.panic,
            self.input.len(),
            hex_preview(&self.input),
        )
    }
}

/// First bytes of an input as hex, for reporting.
fn hex_preview(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for b in bytes.iter().take(48) {
        let _ = write!(out, "{b:02x}");
    }
    if bytes.len() > 48 {
        out.push_str("..");
    }
    out
}

/// Runs `iterations` mutated inputs (round-robin over the corpus seed
/// inputs) through the corpus parser.
///
/// # Errors
///
/// Returns the first case whose parse panicked, with everything needed
/// to reproduce it.
pub fn fuzz_corpus(corpus: Corpus, seed: u64, iterations: u64) -> Result<(), Box<FuzzCase>> {
    let bases = seed_inputs(corpus);
    let mut mutator = Mutator::new(seed);
    for iteration in 0..iterations {
        let base = &bases[(iteration as usize) % bases.len()];
        let input = mutator.mutate(base);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| parse_one(corpus, &input))) {
            let panic = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            return Err(Box::new(FuzzCase { corpus, seed, iteration, input, panic }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutator_is_deterministic() {
        let base = b"# gpu-secure-memory trace v1\nwarp 0 0\nX\n";
        let a: Vec<Vec<u8>> = {
            let mut m = Mutator::new(9);
            (0..32).map(|_| m.mutate(base)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut m = Mutator::new(9);
            (0..32).map(|_| m.mutate(base)).collect()
        };
        assert_eq!(a, b, "same seed, same mutation stream");
        let mut m = Mutator::new(10);
        assert_ne!(a[0], m.mutate(base), "different seeds diverge");
    }

    #[test]
    fn seed_inputs_parse_cleanly() {
        for corpus in Corpus::ALL {
            for (i, input) in seed_inputs(corpus).iter().enumerate() {
                // The unmutated exemplars must be *valid* — otherwise
                // mutation only explores the error paths.
                match corpus {
                    Corpus::Trace => {
                        Trace::from_text(&String::from_utf8_lossy(input))
                            .unwrap_or_else(|e| panic!("trace exemplar {i}: {e}"));
                    }
                    Corpus::BinTrace => {
                        BinaryTrace::decode(input).unwrap_or_else(|e| panic!("bin-trace exemplar {i}: {e}"));
                    }
                    Corpus::LintBaseline => {
                        Baseline::parse(&String::from_utf8_lossy(input))
                            .unwrap_or_else(|e| panic!("baseline exemplar {i}: {e}"));
                    }
                    Corpus::ChromeJson => {
                        chrome::validate_json(&String::from_utf8_lossy(input))
                            .unwrap_or_else(|e| panic!("json exemplar {i}: {e}"));
                    }
                    Corpus::Checkpoint => {
                        Frame::decode(input).unwrap_or_else(|e| panic!("frame exemplar {i}: {e}"));
                    }
                    Corpus::LintSource => {
                        // Valid here means the item walker actually finds
                        // items — an exemplar the parser sees as empty
                        // would only exercise the lexer.
                        let src = String::from_utf8_lossy(input);
                        let info = secmem_lint::scanner::FileInfo::analyze(&src);
                        let parsed = secmem_lint::parse_file(&info, &["for_each", "for_each_grouped"]);
                        assert!(!parsed.fns.is_empty(), "lint-source exemplar {i} parsed no fns");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_typed_errors() {
        for corpus in Corpus::ALL {
            parse_one(corpus, b"");
            parse_one(corpus, b"\0");
            parse_one(corpus, b"\xff\xff\xff\xff\xff\xff\xff\xff");
        }
    }

    /// Regression fixtures: inputs that exercise the parser paths the
    /// fuzzer reaches most often (truncated frames, giant counts,
    /// malformed numerics). Each must stay a typed rejection.
    #[test]
    fn regression_fixtures_stay_typed() {
        // Checkpoint: header claims a payload far larger than the file.
        let mut frame = Frame { config_fp: 1, cycle: 1, payload: vec![0; 16] }.encode();
        frame[24] = 0xff; // payload_len low byte
        assert!(Frame::decode(&frame).is_err());
        // Checkpoint: checksum flipped.
        let mut frame = Frame { config_fp: 1, cycle: 1, payload: vec![7; 16] }.encode();
        let end = frame.len() - 1;
        frame[end] ^= 1;
        assert!(Frame::decode(&frame).is_err());
        // Trace: u32 overflow in the warp directive.
        let t = "# gpu-secure-memory trace v1\nwarp 99999999999999999999 0\nX\n";
        assert!(Trace::from_text(t).is_err());
        // Trace: address at the top of the u64 range (line-align math
        // must not overflow).
        let t = "# gpu-secure-memory trace v1\nwarp 0 0\nL 1 ffffffffffffffff:f\nX\n";
        let _ = Trace::from_text(t); // accepted or typed error, never a panic
                                     // Baseline: count too large for usize.
        let b = "[[baseline]]\nfile = \"a\"\nlint = \"x\"\ncount = 99999999999999999999\n";
        assert!(Baseline::parse(b).is_err());
        // JSON: deep nesting is a typed rejection, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(chrome::validate_json(&deep).is_err());
    }

    /// Frozen SECMTRC regression fixtures: the corruption shapes the
    /// mutator lands on most often, pinned so the typed rejections
    /// cannot quietly regress into panics or silent acceptance.
    #[test]
    fn bin_trace_regression_fixtures_stay_typed() {
        let good = seed_inputs(Corpus::BinTrace).remove(0);
        assert!(BinaryTrace::decode(&good).is_ok(), "fixture base is valid");

        // Truncated mid-index and mid-data.
        assert!(BinaryTrace::decode(&good[..14]).is_err());
        assert!(BinaryTrace::decode(&good[..good.len() - 3]).is_err());
        // Wrong magic and wrong version word.
        let mut evil = good.clone();
        evil[0] = b'X';
        assert!(BinaryTrace::decode(&evil).is_err());
        let mut evil = good.clone();
        evil[8] = 0xff; // version u32 LE low byte
        assert!(BinaryTrace::decode(&evil).is_err());
        // Index length field inflated past the file.
        let mut evil = good.clone();
        evil[12] = 0xff;
        assert!(BinaryTrace::decode(&evil).is_err());
        // First index byte (the stream count varint) forced overlong:
        // non-minimal varints are canonicality violations.
        let mut evil = good.clone();
        let count_at = 20; // magic(8) + version(4) + index len(8)
        evil[count_at] = 0x80;
        assert!(BinaryTrace::decode(&evil).is_err());
        // A flipped bit deep in the data section trips the checksum.
        let mut evil = good.clone();
        let end = evil.len() - 12;
        evil[end] ^= 0x40;
        assert!(BinaryTrace::decode(&evil).is_err());
        // Appending trailing garbage must not be silently ignored.
        let mut evil = good.clone();
        evil.push(0);
        assert!(BinaryTrace::decode(&evil).is_err());
    }
}
