//! Declarative sweep specifications: a (benchmarks × schemes) job
//! matrix with one canonical result rendering, shared by the batch
//! `reproduce matrix` path and the `secmem-serve` sweep server.
//!
//! The point of sharing this module is byte-identity: a sweep executed
//! as a batch and the same sweep submitted to the server go through the
//! same [`SweepSpec::jobs`] expansion, the same panic-isolated runner
//! ([`crate::runner::run_job_isolated`]) and the same
//! [`SweepSpec::results_table`] rendering, so the CSVs they produce are
//! comparable with `cmp`, not just "equivalent".
//!
//! [`job_fingerprint`] derives the content address the server's result
//! cache is keyed by: everything that shapes a simulation's outcome
//! (workload + seed, GPU configuration, backend configuration, cycle
//! budget, warmup, telemetry options) and nothing that does not (the
//! display label, output paths).

use secmem_checkpoint::fnv1a;
use secmem_core::{SecureMemConfig, SecurityScheme};
use secmem_gpusim::config::GpuConfig;
use secmem_gpusim::error::ConfigError;
use secmem_gpusim::stats::SimReport;
use secmem_telemetry::TelemetryConfig;
use secmem_workloads::suite;

use crate::runner::{run_jobs_with_failures, BackendChoice, Job, JobFailure, RunResult};
use crate::table::ExpTable;

/// The GPU configurations a sweep spec can name. Specs travel over the
/// wire as JSON, so they pick from the two pinned presets instead of
/// carrying 30 raw config fields (full configs remain available to
/// in-process callers via [`crate::ExpOpts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuPreset {
    /// The paper's Volta (Table I).
    Volta,
    /// The scaled-down 8-SM / 4-partition smoke GPU.
    Small,
}

impl GpuPreset {
    /// Wire label.
    pub fn label(self) -> &'static str {
        match self {
            GpuPreset::Volta => "volta",
            GpuPreset::Small => "small",
        }
    }

    /// Parses a wire label.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "volta" => Some(GpuPreset::Volta),
            "small" => Some(GpuPreset::Small),
            _ => None,
        }
    }

    /// The concrete configuration.
    pub fn config(self) -> GpuConfig {
        match self {
            GpuPreset::Volta => GpuConfig::volta(),
            GpuPreset::Small => GpuConfig::small(),
        }
    }
}

/// Parses a scheme's paper label (`baseline`, `ctr`, `ctr_bmt`,
/// `ctr_mac_bmt`, `direct`, `direct_mac`, `direct_mac_mt`).
pub fn scheme_by_label(label: &str) -> Option<SecurityScheme> {
    ALL_SCHEMES.into_iter().find(|s| s.label() == label)
}

/// Every protection scheme, in the canonical (Table V / VIII) order.
pub const ALL_SCHEMES: [SecurityScheme; 7] = [
    SecurityScheme::Baseline,
    SecurityScheme::CtrOnly,
    SecurityScheme::CtrBmt,
    SecurityScheme::CtrMacBmt,
    SecurityScheme::Direct,
    SecurityScheme::DirectMac,
    SecurityScheme::DirectMacMt,
];

/// The pinned benchmark set (one per Table-IV category), matching the
/// checkpoint-determinism gate.
pub const PINNED_BENCHES: [&str; 4] = ["nw", "b+tree", "kmeans", "fdtd2d"];

/// A sweep spec gone wrong: a name that resolves to nothing, or a shape
/// that expands to nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// A benchmark name not in the Table-IV suite.
    UnknownBench(String),
    /// A field that must be non-empty was empty.
    Empty(&'static str),
    /// A numeric field outside its accepted range.
    OutOfRange {
        /// Field name.
        field: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// The effective GPU configuration (preset + geometry overrides)
    /// failed [`GpuConfig::validate`]. Catching this at spec level
    /// turns a would-be worker panic into a client error.
    Gpu(ConfigError),
}

impl core::fmt::Display for SweepError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SweepError::UnknownBench(name) => write!(f, "unknown benchmark '{name}' (not in Table IV)"),
            SweepError::Empty(what) => write!(f, "sweep spec needs at least one {what}"),
            SweepError::OutOfRange { field, constraint } => write!(f, "sweep field {field} {constraint}"),
            SweepError::Gpu(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// A declarative sweep: the cross product of benchmarks and schemes
/// under one GPU preset and cycle budget.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Table-IV benchmark names.
    pub benches: Vec<String>,
    /// Protection schemes to run each benchmark under.
    pub schemes: Vec<SecurityScheme>,
    /// GPU preset.
    pub gpu: GpuPreset,
    /// Cycle budget per simulation.
    pub cycles: u64,
    /// Warmup cycles whose statistics are discarded.
    pub warmup: u64,
    /// Workload seed.
    pub seed: u64,
    /// When set, every job samples telemetry at this interval (the
    /// server feeds progress streams from the samples).
    pub sample_interval: Option<u64>,
    /// Per-bank L2 capacity override in bytes (the preset's value when
    /// `None`). Lets a sweep probe cache-geometry sensitivity; an
    /// impossible geometry is rejected by [`SweepSpec::validate`]
    /// instead of panicking a pool worker.
    pub l2_bytes_per_bank: Option<u64>,
    /// L2 associativity override (ways per set).
    pub l2_assoc: Option<u32>,
}

impl SweepSpec {
    /// The pinned 4-benchmark × 7-scheme matrix on the small GPU — the
    /// end-to-end determinism gate's configuration.
    pub fn pinned_matrix() -> Self {
        Self {
            benches: PINNED_BENCHES.iter().map(|b| (*b).to_string()).collect(),
            schemes: ALL_SCHEMES.to_vec(),
            gpu: GpuPreset::Small,
            cycles: 3_000,
            warmup: 0,
            seed: suite::DEFAULT_SEED,
            sample_interval: None,
            l2_bytes_per_bank: None,
            l2_assoc: None,
        }
    }

    /// The effective GPU configuration: the preset with the spec's
    /// geometry overrides applied.
    pub fn gpu_config(&self) -> GpuConfig {
        let mut gpu = self.gpu.config();
        if let Some(bytes) = self.l2_bytes_per_bank {
            gpu.l2_bytes_per_bank = bytes;
        }
        if let Some(assoc) = self.l2_assoc {
            gpu.l2_assoc = assoc;
        }
        gpu
    }

    /// Checks the spec without expanding it.
    ///
    /// # Errors
    ///
    /// Returns the first invalid field.
    pub fn validate(&self) -> Result<(), SweepError> {
        if self.benches.is_empty() {
            return Err(SweepError::Empty("benchmark"));
        }
        if self.schemes.is_empty() {
            return Err(SweepError::Empty("scheme"));
        }
        for bench in &self.benches {
            if !suite::all_specs().iter().any(|s| s.name == bench) {
                return Err(SweepError::UnknownBench(bench.clone()));
            }
        }
        if self.cycles == 0 {
            return Err(SweepError::OutOfRange { field: "cycles", constraint: "must be at least 1" });
        }
        if self.sample_interval == Some(0) {
            return Err(SweepError::OutOfRange {
                field: "sample_interval",
                constraint: "must be at least 1 when present",
            });
        }
        // Geometry overrides can make the preset invalid; reject here
        // so the failure is a typed spec error, not a worker panic.
        self.gpu_config().validate().map_err(SweepError::Gpu)?;
        Ok(())
    }

    /// Expands the spec into runnable jobs, benchmark-major (every
    /// scheme of a benchmark before the next benchmark), matching the
    /// row order of [`SweepSpec::results_table`].
    ///
    /// # Errors
    ///
    /// Returns the first invalid field (see [`SweepSpec::validate`]).
    pub fn jobs(&self) -> Result<Vec<Job>, SweepError> {
        self.validate()?;
        let gpu = self.gpu_config();
        let telemetry = self
            .sample_interval
            .map(|interval| TelemetryConfig { sample_interval: interval, ..TelemetryConfig::default() });
        let mut jobs = Vec::with_capacity(self.benches.len() * self.schemes.len());
        for bench in &self.benches {
            let spec = suite::all_specs()
                .into_iter()
                .find(|s| s.name == bench)
                .ok_or_else(|| SweepError::UnknownBench(bench.clone()))?;
            let kernel = secmem_workloads::SyntheticKernel::new(spec, self.seed);
            for &scheme in &self.schemes {
                let backend = match scheme {
                    SecurityScheme::Baseline => BackendChoice::Baseline,
                    s => BackendChoice::Secure(SecureMemConfig::with_scheme(s)),
                };
                jobs.push(Job {
                    kernel: kernel.clone(),
                    gpu: gpu.clone(),
                    backend,
                    cycles: self.cycles,
                    warmup: self.warmup,
                    label: scheme.label().to_string(),
                    telemetry: telemetry.clone(),
                    telemetry_out: None,
                    sim_threads: 1,
                });
            }
        }
        Ok(jobs)
    }

    /// Number of jobs the spec expands to.
    pub fn job_count(&self) -> usize {
        self.benches.len() * self.schemes.len()
    }

    /// Runs the whole sweep as a batch on the shared parallel runner.
    ///
    /// # Errors
    ///
    /// Returns spec errors; job *failures* (panicking configurations)
    /// come back in the second tuple slot instead of erroring the
    /// sweep.
    pub fn run(&self, threads: usize) -> Result<(Vec<RunResult>, Vec<JobFailure>), SweepError> {
        Ok(run_jobs_with_failures(self.jobs()?, threads))
    }

    /// The canonical result rendering: one row per (benchmark, scheme)
    /// in spec order, with the raw counters an IPC plot would be built
    /// from and the report fingerprint that content-addresses the run.
    /// Jobs that produced no result (panicked twice) render as `FAILED`
    /// rows, so the table's shape is a function of the spec alone.
    pub fn results_table(&self, results: &[RunResult]) -> ExpTable {
        let mut table = ExpTable::new(
            format!(
                "Sweep — {} benchmarks x {} schemes (gpu={}, cycles={}, warmup={}, seed={:#x})",
                self.benches.len(),
                self.schemes.len(),
                self.gpu.label(),
                self.cycles,
                self.warmup,
                self.seed
            ),
            &["benchmark", "scheme", "cycles", "warp_insn", "thread_insn", "ipc", "report_fp"],
        );
        for bench in &self.benches {
            for &scheme in &self.schemes {
                let label = scheme.label();
                match results.iter().find(|r| &r.bench == bench && r.label == label) {
                    Some(r) => table.push_row(vec![
                        bench.clone(),
                        label.to_string(),
                        r.report.cycles.to_string(),
                        r.report.warp_instructions.to_string(),
                        r.report.thread_instructions.to_string(),
                        format!("{:.6}", r.report.ipc()),
                        format!("{:016x}", report_fingerprint(&r.report)),
                    ]),
                    None => table.push_row(vec![
                        bench.clone(),
                        label.to_string(),
                        "FAILED".into(),
                        "FAILED".into(),
                        "FAILED".into(),
                        "FAILED".into(),
                        "FAILED".into(),
                    ]),
                }
            }
        }
        table
    }
}

/// FNV-1a fingerprint of a report's full `Debug` rendering — every
/// field, so any divergence (a dropped stall cycle, a reordered fill)
/// changes the fingerprint. Matches the checkpoint-determinism gate's
/// definition.
pub fn report_fingerprint(report: &SimReport) -> u64 {
    fnv1a(format!("{report:?}").as_bytes())
}

/// Content address of a job: the FNV-1a fingerprint of everything that
/// determines its [`RunResult`] — workload (pattern + seed), GPU
/// configuration, backend configuration, cycle budget, warmup and
/// telemetry options — and nothing that does not (label, trace paths).
///
/// Two jobs with equal fingerprints are the *same deterministic
/// simulation*, so a result cache keyed by this value can serve the
/// second submission byte-identically without re-simulating. The same
/// derivation keys the runner's [`crate::runner::WarmCache`], minus the
/// measured window.
pub fn job_fingerprint(job: &Job) -> u64 {
    fnv1a(
        format!(
            "{:?}|{:?}|{:?}|{}|{}|{:?}",
            job.kernel, job.gpu, job.backend, job.cycles, job.warmup, job.telemetry
        )
        .as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_job;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            benches: vec!["nw".into(), "fdtd2d".into()],
            schemes: vec![SecurityScheme::Baseline, SecurityScheme::CtrMacBmt],
            gpu: GpuPreset::Small,
            cycles: 1_500,
            warmup: 0,
            seed: suite::DEFAULT_SEED,
            sample_interval: None,
            l2_bytes_per_bank: None,
            l2_assoc: None,
        }
    }

    #[test]
    fn spec_expands_bench_major() {
        let jobs = tiny_spec().jobs().expect("valid spec");
        assert_eq!(jobs.len(), 4);
        use secmem_gpusim::kernel::Kernel;
        assert_eq!(jobs[0].kernel.name(), "nw");
        assert_eq!(jobs[0].label, "baseline");
        assert_eq!(jobs[1].kernel.name(), "nw");
        assert_eq!(jobs[1].label, "ctr_mac_bmt");
        assert_eq!(jobs[2].kernel.name(), "fdtd2d");
    }

    #[test]
    fn spec_validation_catches_bad_fields() {
        let mut s = tiny_spec();
        s.benches = vec!["not-a-bench".into()];
        assert_eq!(s.jobs().expect_err("unknown"), SweepError::UnknownBench("not-a-bench".into()));
        let mut s = tiny_spec();
        s.schemes.clear();
        assert_eq!(s.jobs().expect_err("empty"), SweepError::Empty("scheme"));
        let mut s = tiny_spec();
        s.cycles = 0;
        assert!(matches!(s.jobs().expect_err("cycles"), SweepError::OutOfRange { field: "cycles", .. }));
        let mut s = tiny_spec();
        s.sample_interval = Some(0);
        assert!(matches!(s.jobs(), Err(SweepError::OutOfRange { field: "sample_interval", .. })));
    }

    #[test]
    fn geometry_overrides_apply_and_hostile_geometry_is_typed() {
        let mut s = tiny_spec();
        s.l2_bytes_per_bank = Some(64 * 1024);
        s.l2_assoc = Some(8);
        let jobs = s.jobs().expect("a consistent override is valid");
        assert_eq!(jobs[0].gpu.l2_bytes_per_bank, 64 * 1024);
        assert_eq!(jobs[0].gpu.l2_assoc, 8);

        // The geometry that used to assert inside SectoredCache: 768
        // lines per bank do not divide into 5-way sets.
        let mut hostile = tiny_spec();
        hostile.l2_bytes_per_bank = Some(96 * 1024);
        hostile.l2_assoc = Some(5);
        match hostile.jobs().expect_err("rejected at spec level") {
            SweepError::Gpu(e) => assert_eq!(e.field, "l2_bytes_per_bank/l2_assoc"),
            other => panic!("expected a typed gpu-config error, got {other:?}"),
        }
    }

    #[test]
    fn scheme_labels_round_trip() {
        for scheme in ALL_SCHEMES {
            assert_eq!(scheme_by_label(scheme.label()), Some(scheme));
        }
        assert_eq!(scheme_by_label("rot13"), None);
    }

    #[test]
    fn gpu_preset_labels_round_trip() {
        for preset in [GpuPreset::Volta, GpuPreset::Small] {
            assert_eq!(GpuPreset::from_label(preset.label()), Some(preset));
        }
        assert_eq!(GpuPreset::from_label("tpu"), None);
    }

    #[test]
    fn job_fingerprint_separates_what_matters_and_ignores_labels() {
        let jobs = tiny_spec().jobs().expect("valid spec");
        let fp: Vec<u64> = jobs.iter().map(job_fingerprint).collect();
        let mut sorted = fp.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), fp.len(), "distinct jobs get distinct fingerprints");

        let mut relabeled = jobs[0].clone();
        relabeled.label = "renamed".into();
        assert_eq!(job_fingerprint(&jobs[0]), job_fingerprint(&relabeled), "label is display-only");

        let mut threaded = jobs[0].clone();
        threaded.sim_threads = 8;
        assert_eq!(
            job_fingerprint(&jobs[0]),
            job_fingerprint(&threaded),
            "sim_threads is a performance knob, not simulation identity"
        );

        let mut other_seed = tiny_spec();
        other_seed.seed = 1;
        let reseeded = other_seed.jobs().expect("valid spec");
        assert_ne!(job_fingerprint(&jobs[0]), job_fingerprint(&reseeded[0]), "seed is part of the key");
    }

    #[test]
    fn results_table_is_deterministic_and_marks_missing_jobs() {
        let spec = tiny_spec();
        let jobs = spec.jobs().expect("valid spec");
        // Run only the first job; the rest render as FAILED rows.
        let results = vec![run_job(&jobs[0])];
        let table = spec.results_table(&results);
        assert_eq!(table.rows.len(), 4, "one row per (bench, scheme) regardless of results");
        assert_eq!(table.rows[0][0], "nw");
        assert_ne!(table.rows[0][6], "FAILED");
        assert_eq!(table.rows[0][6].len(), 16, "report_fp is a 16-hex-digit fingerprint");
        assert_eq!(table.rows[1][6], "FAILED");
        // Same results, same bytes.
        assert_eq!(spec.results_table(&results).to_csv(), table.to_csv());
    }

    #[test]
    fn pinned_matrix_expands_to_28_jobs() {
        let spec = SweepSpec::pinned_matrix();
        assert_eq!(spec.job_count(), 28);
        assert_eq!(spec.jobs().expect("valid").len(), 28);
    }
}
