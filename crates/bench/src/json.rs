//! Minimal JSON serialization of simulation reports (hand-rolled: the
//! structure is flat and stable, and it keeps the dependency set to the
//! approved minimum).

use std::fmt::Write as _;

use secmem_gpusim::config::GpuConfig;
use secmem_gpusim::stats::SimReport;
use secmem_gpusim::types::TrafficClass;

fn field(out: &mut String, key: &str, value: impl core::fmt::Display, comma: bool) {
    let _ = write!(out, "\"{key}\":{value}");
    if comma {
        out.push(',');
    }
}

/// Serializes a [`SimReport`] to a single JSON object.
///
/// All keys are stable; floating-point values are emitted with enough
/// precision to round-trip.
pub fn report_to_json(report: &SimReport, cfg: &GpuConfig) -> String {
    let mut out = String::from("{");
    field(&mut out, "cycles", report.cycles, true);
    field(&mut out, "warp_instructions", report.warp_instructions, true);
    field(&mut out, "thread_instructions", report.thread_instructions, true);
    field(&mut out, "ipc", format!("{:.6}", report.ipc()), true);
    field(&mut out, "bandwidth_utilization", format!("{:.6}", report.bandwidth_utilization(cfg)), true);
    field(&mut out, "warps", report.warps, true);
    field(&mut out, "mem_stall_cycles", report.mem_stall_cycles, true);

    out.push_str("\"l1\":{");
    field(&mut out, "hits", report.l1.hits, true);
    field(&mut out, "misses", report.l1.misses, true);
    field(&mut out, "miss_rate", format!("{:.6}", report.l1.miss_rate()), false);
    out.push_str("},");
    out.push_str("\"l2\":{");
    field(&mut out, "hits", report.l2.hits, true);
    field(&mut out, "misses", report.l2.misses, true);
    field(&mut out, "miss_rate", format!("{:.6}", report.l2.miss_rate()), true);
    field(&mut out, "mshr_secondary_ratio", format!("{:.6}", report.l2_mshr.secondary_ratio()), false);
    out.push_str("},");

    out.push_str("\"dram\":{");
    for class in TrafficClass::ALL {
        let c = report.dram.class(class);
        let _ = write!(
            out,
            "\"{}\":{{\"reads\":{},\"writes\":{},\"bytes_read\":{},\"bytes_written\":{}}},",
            class.label(),
            c.reads,
            c.writes,
            c.bytes_read,
            c.bytes_written
        );
    }
    field(&mut out, "total_requests", report.dram.total_requests(), true);
    field(&mut out, "total_bytes", report.dram.total_bytes(), false);
    out.push_str("},");

    out.push_str("\"engine\":{");
    for (i, name) in ["ctr", "mac", "tree"].iter().enumerate() {
        let m = &report.engine.meta[i];
        let _ = write!(
            out,
            "\"{name}\":{{\"accesses\":{},\"misses\":{},\"miss_rate\":{:.6},\"secondary_ratio\":{:.6},\"writebacks\":{}}},",
            m.cache.accesses(),
            m.cache.misses,
            m.cache.miss_rate(),
            m.mshr.secondary_ratio(),
            m.writebacks
        );
    }
    field(&mut out, "aes_blocks", report.engine.aes_blocks, true);
    field(&mut out, "aes_stall_cycles", report.engine.aes_stall_cycles, true);
    field(&mut out, "tree_verifications", report.engine.tree_verifications, true);
    field(&mut out, "decrypt_waited_on_counter", report.engine.decrypt_waited_on_counter, false);
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        let mut r = SimReport { cycles: 1000, thread_instructions: 32_000, ..SimReport::default() };
        r.warp_instructions = 1000;
        r.l2.hits = 10;
        r.l2.misses = 30;
        r.dram.per_class[0].reads = 42;
        r.engine.meta[1].writebacks = 7;
        r
    }

    /// A tiny structural validator: balanced braces/quotes, no trailing
    /// commas before closers.
    fn check_well_formed(json: &str) {
        assert!(json.starts_with('{') && json.ends_with('}'));
        let mut depth = 0i32;
        let mut prev = ' ';
        for c in json.chars() {
            match c {
                '{' => depth += 1,
                '}' | ']' => {
                    assert_ne!(prev, ',', "trailing comma before closer in {json}");
                    depth -= 1;
                }
                _ => {}
            }
            prev = c;
        }
        assert_eq!(depth, 0, "unbalanced braces");
        assert_eq!(json.matches('"').count() % 2, 0, "unbalanced quotes");
    }

    #[test]
    fn serializes_expected_fields() {
        let json = report_to_json(&sample(), &GpuConfig::volta());
        check_well_formed(&json);
        assert!(json.contains("\"cycles\":1000"));
        assert!(json.contains("\"ipc\":32.000000"));
        assert!(json.contains("\"data\":{\"reads\":42"));
        assert!(json.contains("\"mac\":{\"accesses\":0"));
        assert!(json.contains("\"writebacks\":7"));
    }

    #[test]
    fn default_report_serializes() {
        let json = report_to_json(&SimReport::default(), &GpuConfig::small());
        check_well_formed(&json);
        assert!(json.contains("\"ipc\":0.000000"));
    }
}
