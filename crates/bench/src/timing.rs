//! The one sanctioned wall-clock site in the workspace.
//!
//! Simulation results must be a pure function of seed + configuration,
//! so `std::time` is banned (lint D1) everywhere except this module:
//! benches and harness binaries measure how long the *simulator* takes,
//! never what the simulated hardware does, and they all time through
//! the helpers here so the lint has exactly one justified allow site.

// lint:allow-file(D1): this module is the single sanctioned wall-clock
// site; every bench and harness binary times through it, keeping
// `std::time` out of simulation code.

use std::time::{Duration, Instant};

/// A started wall-clock measurement.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts measuring now.
    #[must_use]
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in seconds.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Elapsed time in milliseconds.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

/// Runs `f` for `iters` iterations and returns the total elapsed time.
/// The standard micro-bench loop body: callers divide by `iters` (and
/// should warm up first, e.g. via [`warmed`]).
pub fn time_iters<F: FnMut()>(iters: u64, mut f: F) -> Duration {
    let sw = Stopwatch::start();
    for _ in 0..iters {
        f();
    }
    sw.elapsed()
}

/// Runs `f` for `iters / 10` warm-up iterations (at least one), then
/// `iters` timed iterations, returning the timed total.
pub fn warmed<F: FnMut()>(iters: u64, mut f: F) -> Duration {
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    time_iters(iters, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed_ms() >= 0.0);
    }

    #[test]
    fn time_iters_counts_every_iteration() {
        let mut n = 0u64;
        let _ = time_iters(100, || n += 1);
        assert_eq!(n, 100);
    }

    #[test]
    fn warmed_runs_warmup_then_timed() {
        let mut n = 0u64;
        let _ = warmed(100, || n += 1);
        assert_eq!(n, 110);
    }
}
