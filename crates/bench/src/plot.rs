//! Minimal SVG bar-chart rendering for experiment tables — regenerates
//! the paper's figures as pictures, not just text (no external plotting
//! dependencies; plain SVG 1.1).

use std::fmt::Write as _;

use crate::table::ExpTable;

/// Chart geometry and styling.
#[derive(Debug, Clone)]
pub struct PlotStyle {
    /// Total image width in px.
    pub width: u32,
    /// Total image height in px.
    pub height: u32,
    /// Y-axis maximum (normalized-IPC plots use 1.1).
    pub y_max: f64,
    /// Bar colors cycled per series.
    pub palette: Vec<&'static str>,
}

impl Default for PlotStyle {
    fn default() -> Self {
        Self {
            width: 1200,
            height: 420,
            y_max: 1.1,
            palette: vec!["#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c", "#dc7ec0"],
        }
    }
}

/// Escapes XML-special characters.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Renders a grouped bar chart from a numeric [`ExpTable`]: the first
/// column holds group labels (benchmarks), the remaining columns are
/// series. Non-numeric cells are skipped.
///
/// Returns `None` if the table has no numeric series.
pub fn grouped_bars(table: &ExpTable, style: &PlotStyle) -> Option<String> {
    if table.headers.len() < 2 || table.rows.is_empty() {
        return None;
    }
    let series_names: Vec<&String> = table.headers[1..].iter().collect();
    let groups: Vec<(&String, Vec<Option<f64>>)> = table
        .rows
        .iter()
        .map(|row| {
            let values = row[1..].iter().map(|cell| cell.trim_end_matches('%').parse::<f64>().ok()).collect();
            (&row[0], values)
        })
        .collect();
    if !groups.iter().any(|(_, vs)| vs.iter().any(Option::is_some)) {
        return None;
    }

    let margin_left = 56.0;
    let margin_right = 16.0;
    let margin_top = 48.0;
    let margin_bottom = 96.0;
    let plot_w = style.width as f64 - margin_left - margin_right;
    let plot_h = style.height as f64 - margin_top - margin_bottom;
    let ngroups = groups.len() as f64;
    let nseries = series_names.len() as f64;
    let group_w = plot_w / ngroups;
    let bar_w = (group_w * 0.8 / nseries).max(1.0);

    let y = |v: f64| margin_top + plot_h * (1.0 - (v / style.y_max).min(1.0));

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="11">"#,
        w = style.width,
        h = style.height
    );
    let _ = write!(svg, r#"<rect width="{}" height="{}" fill="white"/>"#, style.width, style.height);
    // Title.
    let _ = write!(
        svg,
        r#"<text x="{}" y="20" font-size="14" font-weight="bold">{}</text>"#,
        margin_left,
        esc(&table.title)
    );
    // Y grid + labels.
    let mut tick = 0.0;
    while tick <= style.y_max + 1e-9 {
        let yy = y(tick);
        let _ = write!(
            svg,
            r##"<line x1="{x1}" y1="{yy:.1}" x2="{x2}" y2="{yy:.1}" stroke="#ddd"/><text x="{xl}" y="{yt:.1}" text-anchor="end">{tick:.1}</text>"##,
            x1 = margin_left,
            x2 = style.width as f64 - margin_right,
            xl = margin_left - 6.0,
            yt = yy + 4.0,
        );
        tick += 0.2;
    }
    // Bars.
    for (gi, (label, values)) in groups.iter().enumerate() {
        let gx = margin_left + gi as f64 * group_w + group_w * 0.1;
        for (si, value) in values.iter().enumerate() {
            let Some(v) = value else { continue };
            let color = style.palette[si % style.palette.len()];
            let x = gx + si as f64 * bar_w;
            let top = y(*v);
            let _ = write!(
                svg,
                r#"<rect x="{x:.1}" y="{top:.1}" width="{bw:.1}" height="{bh:.1}" fill="{color}"><title>{t}</title></rect>"#,
                bw = bar_w.max(1.0) - 0.5,
                bh = (margin_top + plot_h - top).max(0.0),
                t = format!("{} / {} = {v:.3}", esc(label), esc(series_names[si])),
            );
        }
        // Rotated group label.
        let lx = gx + group_w * 0.4;
        let ly = margin_top + plot_h + 10.0;
        let _ = write!(
            svg,
            r#"<text x="{lx:.1}" y="{ly:.1}" transform="rotate(40 {lx:.1} {ly:.1})">{}</text>"#,
            esc(label)
        );
    }
    // Legend.
    let mut lx = margin_left;
    let ly = 34.0;
    for (si, name) in series_names.iter().enumerate() {
        let color = style.palette[si % style.palette.len()];
        let _ = write!(
            svg,
            r#"<rect x="{lx:.1}" y="{y0:.1}" width="10" height="10" fill="{color}"/><text x="{tx:.1}" y="{ty:.1}">{}</text>"#,
            esc(name),
            y0 = ly - 9.0,
            tx = lx + 14.0,
            ty = ly,
        );
        lx += 14.0 + 7.0 * name.len() as f64 + 18.0;
    }
    svg.push_str("</svg>");
    Some(svg)
}

/// Writes the chart next to the CSV as `dir/<slug>.svg`.
///
/// # Errors
///
/// Propagates filesystem errors; `Ok(false)` means the table had no
/// numeric series to plot.
pub fn write_svg(table: &ExpTable, dir: &std::path::Path, slug: &str) -> std::io::Result<bool> {
    match grouped_bars(table, &PlotStyle::default()) {
        Some(svg) => {
            std::fs::create_dir_all(dir)?;
            std::fs::write(dir.join(format!("{slug}.svg")), svg)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ExpTable {
        let mut t = ExpTable::new("Fig. X — test", &["benchmark", "a", "b"]);
        t.push_row(vec!["fdtd2d".into(), "0.5".into(), "0.9".into()]);
        t.push_row(vec!["nw".into(), "1.0".into(), "0.2".into()]);
        t
    }

    #[test]
    fn renders_valid_svg() {
        let svg = grouped_bars(&table(), &PlotStyle::default()).expect("plotable");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 1 + 4 + 2, "background + 4 bars + 2 legend keys");
        assert!(svg.contains("fdtd2d"));
        assert!(svg.contains("Fig. X"));
    }

    #[test]
    fn percent_cells_parse() {
        let mut t = ExpTable::new("T", &["b", "v"]);
        t.push_row(vec!["x".into(), "42.5%".into()]);
        let svg = grouped_bars(&t, &PlotStyle { y_max: 100.0, ..PlotStyle::default() }).expect("plotable");
        assert!(svg.contains("= 42.5"));
    }

    #[test]
    fn non_numeric_tables_are_rejected() {
        let mut t = ExpTable::new("T", &["k", "v"]);
        t.push_row(vec!["a".into(), "hello".into()]);
        assert!(grouped_bars(&t, &PlotStyle::default()).is_none());
        let empty = ExpTable::new("T", &["k"]);
        assert!(grouped_bars(&empty, &PlotStyle::default()).is_none());
    }

    #[test]
    fn escapes_markup() {
        let mut t = ExpTable::new("a < b & c", &["k", "v"]);
        t.push_row(vec!["x<y".into(), "0.5".into()]);
        let svg = grouped_bars(&t, &PlotStyle::default()).expect("plotable");
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("x<y"));
    }

    #[test]
    fn write_svg_creates_file() {
        let dir = std::env::temp_dir().join("secmem_plot_test");
        let wrote = write_svg(&table(), &dir, "unit").expect("io ok");
        assert!(wrote);
        let content = std::fs::read_to_string(dir.join("unit.svg")).expect("file exists");
        assert!(content.contains("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
