//! Simulator-throughput benchmark: how many simulated cycles per wall
//! second does the hot loop sustain?
//!
//! Runs a pinned workload × scheme matrix (fixed [`DEFAULT_SEED`], fixed
//! GPU config, fixed cycle budgets) single-threaded, so numbers are
//! comparable run-to-run and PR-to-PR, and writes `BENCH_simperf.json`.
//! Each run also carries an FNV-1a fingerprint of the full `SimReport`
//! debug rendering: two builds that claim to simulate the same thing must
//! produce identical fingerprints, which is how the determinism invariant
//! of the ISSUE 3 performance overhaul is checked across code changes.
//!
//! A second section sweeps the simulator's stepping thread count
//! (ISSUE 8): the heaviest matrix corners re-run at threads = 1, 2, 4,
//! 8, recording cycles/wall-second and the speedup over the
//! single-thread baseline. The host's `available_parallelism` is
//! recorded alongside — on a single-core runner the honest speedup is
//! ≤ 1 (the pool parks its workers), and the numbers say so rather
//! than pretending. The fingerprints must not move across thread
//! counts; the binary exits non-zero if they do.
//!
//! A third section benchmarks trace ingestion (ISSUE 9): a pinned
//! workload is recorded once, written in both on-disk formats (text v1
//! and the SECMTRC binary container), and each file is loaded through
//! `TraceKernel::from_file` repeatedly to measure file size, ingest
//! wall time and the resident-byte estimate of the loaded kernel. A
//! short replay of each format must produce identical report
//! fingerprints — the binary exits non-zero if the formats diverge.
//!
//! ```text
//! cargo run -p secmem-bench --release --bin perf              # full matrix
//! cargo run -p secmem-bench --release --bin perf -- --smoke   # tiny CI matrix
//! cargo run -p secmem-bench --release --bin perf -- --out target/simperf.json
//! ```

use secmem_bench::timing::{warmed, Stopwatch};
use std::fmt::Write as _;

use secmem_bench::{run_job, BackendChoice, Job};
use secmem_core::{SecureMemConfig, SecurityScheme};
use secmem_gpusim::backend::PassthroughBackend;
use secmem_gpusim::config::GpuConfig;
use secmem_gpusim::sim::Simulator;
use secmem_gpusim::trace::{Trace, TraceKernel};
use secmem_gpusim::trace_bin;
use secmem_workloads::suite::{self, DEFAULT_SEED};

/// The pinned full matrix: a latency-bound chase (`nw`), a deep chase
/// (`b+tree`), a scatter workload (`kmeans`), and a streaming
/// bandwidth-bound stencil (`fdtd2d`) — the corners of the simulator's
/// performance envelope.
const FULL_BENCHES: [&str; 4] = ["nw", "b+tree", "kmeans", "fdtd2d"];
/// The smoke matrix for CI: one latency-bound, one bandwidth-bound.
const SMOKE_BENCHES: [&str; 2] = ["nw", "fdtd2d"];

const FULL_CYCLES: u64 = 60_000;
const SMOKE_CYCLES: u64 = 8_000;

fn schemes(smoke: bool) -> Vec<SecurityScheme> {
    if smoke {
        vec![SecurityScheme::Baseline, SecurityScheme::CtrMacBmt]
    } else {
        vec![
            SecurityScheme::Baseline,
            SecurityScheme::CtrOnly,
            SecurityScheme::CtrBmt,
            SecurityScheme::CtrMacBmt,
            SecurityScheme::Direct,
            SecurityScheme::DirectMac,
            SecurityScheme::DirectMacMt,
        ]
    }
}

/// FNV-1a over the report's debug rendering: covers every statistic,
/// fault event, and stall field, so any behavioral divergence between two
/// builds changes the fingerprint.
fn fingerprint(text: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in text.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

struct RunRow {
    bench: String,
    scheme: &'static str,
    sim_cycles: u64,
    wall_ms: f64,
    cycles_per_sec: f64,
    report_fp: u64,
}

/// One point on the thread-scaling curve.
struct ScaleRow {
    bench: String,
    scheme: &'static str,
    threads: usize,
    sim_cycles: u64,
    wall_ms: f64,
    cycles_per_sec: f64,
    /// cycles/sec at this thread count over cycles/sec at 1 thread.
    speedup: f64,
    report_fp: u64,
}

/// Stepping thread counts the scaling section sweeps.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One trace-ingestion measurement: a format's on-disk footprint, how
/// fast it loads, and what the loaded kernel keeps resident.
struct IngestRow {
    format: &'static str,
    file_bytes: u64,
    ingest_ms: f64,
    insts_per_sec: f64,
    resident_bytes: u64,
    report_fp: u64,
}

/// Records the pinned ingest workload, writes it in both formats,
/// measures ingestion of each, and replays each for `cycles` to prove
/// the two paths simulate identically. Returns the measurements and
/// whether the replay fingerprints diverged.
fn trace_ingest_section(smoke: bool, gpu: &GpuConfig, cycles: u64) -> (Vec<IngestRow>, bool) {
    let bench = "fdtd2d";
    let insts_per_warp = if smoke { 300 } else { 1_500 };
    let iters = if smoke { 3 } else { 10 };
    let kernel = suite::by_name(bench).expect("ingest bench is in the suite");
    let trace = Trace::record(&kernel, gpu.num_sms, insts_per_warp);
    let total_insts = trace.total_insts();
    let dir = std::env::temp_dir().join(format!("secmem-perf-ingest-{}", std::process::id()));
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("[perf] cannot create {}: {err}", dir.display());
        std::process::exit(1);
    }
    let text_path = dir.join("ingest.trace");
    let bin_path = dir.join("ingest.smtrc");
    let mut text = Vec::new();
    trace.write_text(&mut text).expect("in-memory serialization cannot fail");
    if let Err(err) = std::fs::write(&text_path, &text) {
        eprintln!("[perf] cannot write {}: {err}", text_path.display());
        std::process::exit(1);
    }
    if let Err(err) = trace_bin::write_file(&trace, &bin_path) {
        eprintln!("[perf] cannot write {}: {err}", bin_path.display());
        std::process::exit(1);
    }

    eprintln!(
        "[perf] trace ingest: {bench}, {} streams, {total_insts} insts, {iters} timed loads each",
        trace.warp_count()
    );
    let mut rows = Vec::new();
    let mut fps = Vec::new();
    for (format, path) in [("text", &text_path), ("binary", &bin_path)] {
        let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let elapsed = warmed(iters, || {
            let k = TraceKernel::from_file(path).expect("perf trace loads");
            std::hint::black_box(k.resident_bytes());
        });
        let ingest_ms = elapsed.as_secs_f64() * 1e3 / iters as f64;
        let insts_per_sec =
            if ingest_ms > 0.0 { total_insts as f64 * iters as f64 / elapsed.as_secs_f64() } else { 0.0 };
        let loaded = TraceKernel::from_file(path).expect("perf trace loads");
        let resident_bytes = loaded.resident_bytes() as u64;
        let mut sim = Simulator::new(gpu.clone(), &loaded, |_, g| PassthroughBackend::from_config(g));
        let report = sim.run(cycles);
        let report_fp = fingerprint(&format!("{report:?}"));
        eprintln!(
            "[perf] {format:>14} ingest  {file_bytes:>9} B file  {ingest_ms:>9.2} ms/load  \
             {insts_per_sec:>11.0} inst/s  {resident_bytes:>9} B resident  fp {report_fp:016x}",
        );
        fps.push(report_fp);
        rows.push(IngestRow { format, file_bytes, ingest_ms, insts_per_sec, resident_bytes, report_fp });
    }
    let diverged = fps.windows(2).any(|w| w[0] != w[1]);
    if diverged {
        eprintln!("[perf] FORMAT DIVERGENCE: text and binary replays produced different reports");
    }
    if rows.len() == 2 && rows[0].ingest_ms > 0.0 && rows[0].file_bytes > 0 {
        eprintln!(
            "[perf] binary trace: {:.1}% of text size, {:.1}x faster ingest",
            rows[1].file_bytes as f64 * 100.0 / rows[0].file_bytes as f64,
            rows[0].ingest_ms / rows[1].ingest_ms.max(f64::MIN_POSITIVE),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    (rows, diverged)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = String::from("BENCH_simperf.json");
    let mut cycles_override: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| usage("--out needs a path"));
            }
            "--cycles" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage("--cycles needs a number"));
                cycles_override = Some(v.parse().unwrap_or_else(|_| usage("--cycles needs a number")));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    let benches: Vec<&str> = if smoke { SMOKE_BENCHES.to_vec() } else { FULL_BENCHES.to_vec() };
    let cycles = cycles_override.unwrap_or(if smoke { SMOKE_CYCLES } else { FULL_CYCLES });
    let gpu = GpuConfig::small();

    eprintln!(
        "[perf] {} matrix: {} workloads x {} schemes, {} cycles each, seed {:#x}",
        if smoke { "smoke" } else { "full" },
        benches.len(),
        schemes(smoke).len(),
        cycles,
        DEFAULT_SEED,
    );

    let mut rows: Vec<RunRow> = Vec::new();
    let total_watch = Stopwatch::start();
    for bench in &benches {
        for scheme in schemes(smoke) {
            let kernel = suite::by_name(bench).unwrap_or_else(|| {
                eprintln!("[perf] unknown benchmark {bench}");
                std::process::exit(2);
            });
            let backend = match scheme {
                SecurityScheme::Baseline => BackendChoice::Baseline,
                s => BackendChoice::Secure(SecureMemConfig::with_scheme(s)),
            };
            let job = Job {
                kernel,
                gpu: gpu.clone(),
                backend,
                cycles,
                warmup: 0,
                label: scheme.label().to_string(),
                telemetry: None,
                telemetry_out: None,
                sim_threads: 1,
            };
            let watch = Stopwatch::start();
            let result = run_job(&job);
            let wall = watch.elapsed();
            let wall_ms = wall.as_secs_f64() * 1e3;
            let sim_cycles = result.report.cycles;
            let cycles_per_sec =
                if wall.as_secs_f64() > 0.0 { sim_cycles as f64 / wall.as_secs_f64() } else { 0.0 };
            let report_fp = fingerprint(&format!("{:?}", result.report));
            eprintln!(
                "[perf] {bench:>14} {:>13}  {sim_cycles:>7} cyc  {wall_ms:>9.2} ms  {:>11.0} cyc/s  fp {report_fp:016x}",
                scheme.label(),
                cycles_per_sec,
            );
            rows.push(RunRow {
                bench: (*bench).to_string(),
                scheme: scheme.label(),
                sim_cycles,
                wall_ms,
                cycles_per_sec,
                report_fp,
            });
        }
    }
    let total_wall = total_watch.elapsed_secs();
    let total_cycles: u64 = rows.iter().map(|r| r.sim_cycles).sum();
    let aggregate = if total_wall > 0.0 { total_cycles as f64 / total_wall } else { 0.0 };
    eprintln!(
        "[perf] total: {total_cycles} simulated cycles in {:.2} s = {aggregate:.0} cycles/sec",
        total_wall,
    );

    // Thread-scaling sweep: the latency-bound and bandwidth-bound
    // corners under the heaviest scheme, at each stepping thread count.
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let scale_benches: &[&str] = if smoke { &["fdtd2d"] } else { &["nw", "fdtd2d"] };
    let scheme = SecurityScheme::CtrMacBmt;
    let mut scaling: Vec<ScaleRow> = Vec::new();
    let mut fp_diverged = false;
    eprintln!("[perf] thread scaling (host parallelism = {host_parallelism}):");
    for bench in scale_benches {
        let mut baseline_cps = 0.0;
        let mut baseline_fp = 0u64;
        for threads in THREAD_COUNTS {
            let kernel = suite::by_name(bench).expect("scaling bench is in the suite");
            let job = Job {
                kernel,
                gpu: gpu.clone(),
                backend: BackendChoice::Secure(SecureMemConfig::with_scheme(scheme)),
                cycles,
                warmup: 0,
                label: scheme.label().to_string(),
                telemetry: None,
                telemetry_out: None,
                sim_threads: threads,
            };
            let watch = Stopwatch::start();
            let result = run_job(&job);
            let wall = watch.elapsed();
            let wall_ms = wall.as_secs_f64() * 1e3;
            let sim_cycles = result.report.cycles;
            let cycles_per_sec =
                if wall.as_secs_f64() > 0.0 { sim_cycles as f64 / wall.as_secs_f64() } else { 0.0 };
            let report_fp = fingerprint(&format!("{:?}", result.report));
            if threads == 1 {
                baseline_cps = cycles_per_sec;
                baseline_fp = report_fp;
            } else if report_fp != baseline_fp {
                eprintln!(
                    "[perf] DETERMINISM VIOLATION: {bench}/{} fp {report_fp:016x} at {threads} \
                     threads != {baseline_fp:016x} at 1 thread",
                    scheme.label()
                );
                fp_diverged = true;
            }
            let speedup = if baseline_cps > 0.0 { cycles_per_sec / baseline_cps } else { 0.0 };
            eprintln!(
                "[perf] {bench:>14} {:>13}  threads {threads}  {wall_ms:>9.2} ms  {:>11.0} cyc/s  {speedup:>5.2}x  fp {report_fp:016x}",
                scheme.label(),
                cycles_per_sec,
            );
            scaling.push(ScaleRow {
                bench: (*bench).to_string(),
                scheme: scheme.label(),
                threads,
                sim_cycles,
                wall_ms,
                cycles_per_sec,
                speedup,
                report_fp,
            });
        }
    }
    if fp_diverged {
        eprintln!("[perf] aborting: thread count changed simulation results");
        std::process::exit(1);
    }

    let (ingest, ingest_diverged) = trace_ingest_section(smoke, &gpu, cycles);
    if ingest_diverged {
        eprintln!("[perf] aborting: trace format changed simulation results");
        std::process::exit(1);
    }

    let json = to_json(&rows, &scaling, &ingest, host_parallelism, smoke, cycles, total_wall, aggregate);
    if let Err(err) = std::fs::write(&out_path, &json) {
        eprintln!("[perf] failed to write {out_path}: {err}");
        std::process::exit(1);
    }
    eprintln!("[perf] wrote {out_path}");
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    rows: &[RunRow],
    scaling: &[ScaleRow],
    ingest: &[IngestRow],
    host_parallelism: usize,
    smoke: bool,
    cycles: u64,
    total_wall_s: f64,
    aggregate: f64,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"simperf-v3\",");
    let _ = writeln!(out, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    let _ = writeln!(out, "  \"gpu\": \"small\",");
    let _ = writeln!(out, "  \"seed\": {DEFAULT_SEED},");
    let _ = writeln!(out, "  \"cycles_per_run\": {cycles},");
    let _ = writeln!(out, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(out, "  \"total_wall_seconds\": {total_wall_s:.6},");
    let _ = writeln!(out, "  \"aggregate_cycles_per_sec\": {aggregate:.1},");
    out.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"bench\": \"{}\", \"scheme\": \"{}\", \"sim_cycles\": {}, \"wall_ms\": {:.3}, \"cycles_per_sec\": {:.1}, \"report_fp\": \"{:016x}\"}}",
            r.bench, r.scheme, r.sim_cycles, r.wall_ms, r.cycles_per_sec, r.report_fp
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"thread_scaling\": [\n");
    for (i, r) in scaling.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"bench\": \"{}\", \"scheme\": \"{}\", \"threads\": {}, \"sim_cycles\": {}, \"wall_ms\": {:.3}, \"cycles_per_sec\": {:.1}, \"speedup_vs_1\": {:.3}, \"report_fp\": \"{:016x}\"}}",
            r.bench, r.scheme, r.threads, r.sim_cycles, r.wall_ms, r.cycles_per_sec, r.speedup, r.report_fp
        );
        out.push_str(if i + 1 < scaling.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"trace_ingest\": [\n");
    for (i, r) in ingest.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"format\": \"{}\", \"file_bytes\": {}, \"ingest_ms\": {:.3}, \"insts_per_sec\": {:.1}, \"resident_bytes\": {}, \"report_fp\": \"{:016x}\"}}",
            r.format, r.file_bytes, r.ingest_ms, r.insts_per_sec, r.resident_bytes, r.report_fp
        );
        out.push_str(if i + 1 < ingest.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: perf [--smoke] [--cycles N] [--out PATH]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
