//! `secmem-trace` — record, convert, inspect and replay instruction
//! traces in either on-disk format: the line-oriented text v1 format or
//! the compact SECMTRC binary container (see `gpusim::trace_bin`).
//!
//! ```text
//! secmem-trace record --bench NAME --out FILE [--insts N] [--small]
//! secmem-trace convert IN OUT
//! secmem-trace stats FILE
//! secmem-trace verify FILE
//! secmem-trace run FILE [--scheme S] [--cycles N] [--small] [--threads N] [--json]
//!
//! schemes: baseline|ctr|ctr_bmt|ctr_mac_bmt|direct|direct_mac|direct_mac_mt
//! ```
//!
//! Input format is detected by sniffing the SECMTRC magic; output
//! format is chosen by extension (`.smtrc` → binary, anything else →
//! text). `run` replays through the full simulator and prints the same
//! report JSON as `simulate --json`, so CI can diff the two ingestion
//! paths byte-for-byte.

use std::path::{Path, PathBuf};

use secmem_bench::json::report_to_json;
use secmem_bench::report_fingerprint;
use secmem_core::{SecureBackend, SecureMemConfig, SecurityScheme};
use secmem_gpusim::backend::PassthroughBackend;
use secmem_gpusim::config::GpuConfig;
use secmem_gpusim::kernel::Kernel;
use secmem_gpusim::sim::Simulator;
use secmem_gpusim::trace::{Trace, TraceKernel};
use secmem_gpusim::trace_bin::{self, BinaryTrace};
use secmem_workloads::{ml, suite, SyntheticKernel};

const USAGE: &str = "usage: secmem-trace <record|convert|stats|verify|run> ...
  record --bench NAME --out FILE [--insts N] [--small]
  convert IN OUT
  stats FILE
  verify FILE
  run FILE [--scheme S] [--cycles N] [--small] [--threads N] [--json]";

/// True when the output path asks for the binary container.
fn wants_binary(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "smtrc")
}

fn find_kernel(name: &str) -> Option<SyntheticKernel> {
    suite::by_name(name).or_else(|| ml::ml_suite().into_iter().find(|k| k.name() == name))
}

fn scheme_of(name: &str) -> Option<Option<SecurityScheme>> {
    Some(match name {
        "baseline" => None,
        "ctr" => Some(SecurityScheme::CtrOnly),
        "ctr_bmt" => Some(SecurityScheme::CtrBmt),
        "ctr_mac_bmt" => Some(SecurityScheme::CtrMacBmt),
        "direct" => Some(SecurityScheme::Direct),
        "direct_mac" => Some(SecurityScheme::DirectMac),
        "direct_mac_mt" => Some(SecurityScheme::DirectMacMt),
        _ => return None,
    })
}

/// Loads a trace file in either format, fully validated, plus a label
/// for what was found on disk.
fn load_trace(path: &Path) -> Result<(Trace, &'static str), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    if BinaryTrace::sniff(&bytes) {
        let bin = BinaryTrace::decode(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        return Ok((bin.to_trace(), "binary"));
    }
    let text = String::from_utf8(bytes).map_err(|e| format!("{}: not UTF-8: {e}", path.display()))?;
    let trace = Trace::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((trace, "text"))
}

/// Writes a trace in the format the output extension asks for.
fn write_trace(trace: &Trace, path: &Path) -> Result<&'static str, String> {
    if wants_binary(path) {
        trace_bin::write_file(trace, path).map_err(|e| format!("writing {}: {e}", path.display()))?;
        return Ok("binary");
    }
    let mut out = Vec::new();
    trace.write_text(&mut out).map_err(|e| format!("serializing trace: {e}"))?;
    std::fs::write(path, out).map_err(|e| format!("writing {}: {e}", path.display()))?;
    Ok("text")
}

fn need(it: &mut dyn Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn cmd_record(args: &mut dyn Iterator<Item = String>) -> Result<(), String> {
    let mut bench = "fdtd2d".to_string();
    let mut out: Option<PathBuf> = None;
    let mut insts = 2_000usize;
    let mut gpu = GpuConfig::volta();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => bench = need(args, "--bench")?,
            "--out" => out = Some(PathBuf::from(need(args, "--out")?)),
            "--insts" => insts = need(args, "--insts")?.parse().map_err(|e| format!("--insts: {e}"))?,
            "--small" => gpu = GpuConfig::small(),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    let out = out.ok_or_else(|| format!("record needs --out\n{USAGE}"))?;
    let kernel = find_kernel(&bench).ok_or_else(|| format!("unknown benchmark '{bench}'"))?;
    let trace = Trace::record(&kernel, gpu.num_sms, insts);
    let format = write_trace(&trace, &out)?;
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "recorded {} warps x <= {insts} insts of '{bench}' -> {} ({format}, {bytes} bytes)",
        trace.warp_count(),
        out.display()
    );
    Ok(())
}

fn cmd_convert(args: &mut dyn Iterator<Item = String>) -> Result<(), String> {
    let input = PathBuf::from(need(args, "convert")?);
    let output = PathBuf::from(need(args, "convert OUT")?);
    let (trace, from) = load_trace(&input)?;
    let to = write_trace(&trace, &output)?;
    let in_bytes = std::fs::metadata(&input).map(|m| m.len()).unwrap_or(0);
    let out_bytes = std::fs::metadata(&output).map(|m| m.len()).unwrap_or(0);
    println!(
        "{} ({from}, {in_bytes} bytes) -> {} ({to}, {out_bytes} bytes, {:.1}% of input)",
        input.display(),
        output.display(),
        pct(out_bytes, in_bytes),
    );
    Ok(())
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        return 0.0;
    }
    num as f64 * 100.0 / den as f64
}

fn cmd_stats(args: &mut dyn Iterator<Item = String>) -> Result<(), String> {
    let path = PathBuf::from(need(args, "stats")?);
    let bytes = std::fs::read(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    if BinaryTrace::sniff(&bytes) {
        let bin = BinaryTrace::decode(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("format          binary (SECMTRC v1)");
        println!("file bytes      {}", bytes.len());
        println!("streams         {}", bin.warp_count());
        println!("instructions    {}", bin.total_insts());
        println!("resident bytes  {} (streamed replay)", bin.resident_bytes());
        let decoded = bin.to_trace().decoded_bytes_estimate();
        println!("decoded bytes   {decoded} (if fully materialized)");
        let per_stream: Vec<_> = bin.streams().collect();
        if let (Some(min), Some(max)) =
            (per_stream.iter().map(|s| s.insts).min(), per_stream.iter().map(|s| s.insts).max())
        {
            println!("insts/stream    {min}..{max}");
        }
    } else {
        let text = String::from_utf8(bytes).map_err(|e| format!("{}: not UTF-8: {e}", path.display()))?;
        let trace = Trace::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("format          text (v1)");
        println!("file bytes      {}", text.len());
        println!("streams         {}", trace.warp_count());
        println!("instructions    {}", trace.total_insts());
        println!("decoded bytes   {} (always materialized)", trace.decoded_bytes_estimate());
        println!("binary bytes    {} (after convert)", trace_bin::encode(&trace).len());
    }
    Ok(())
}

fn cmd_verify(args: &mut dyn Iterator<Item = String>) -> Result<(), String> {
    let path = PathBuf::from(need(args, "verify")?);
    let (trace, format) = load_trace(&path)?;
    // Both loaders validate everything up front (checksums, bounds,
    // full record walk), so reaching this point is the whole check.
    println!(
        "{}: ok ({format}, {} streams, {} instructions)",
        path.display(),
        trace.warp_count(),
        trace.total_insts()
    );
    Ok(())
}

fn cmd_run(args: &mut dyn Iterator<Item = String>) -> Result<(), String> {
    let path = PathBuf::from(need(args, "run")?);
    let mut scheme = "baseline".to_string();
    let mut cycles = 50_000u64;
    let mut gpu = GpuConfig::volta();
    let mut threads = 1usize;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scheme" => scheme = need(args, "--scheme")?,
            "--cycles" => cycles = need(args, "--cycles")?.parse().map_err(|e| format!("--cycles: {e}"))?,
            "--small" => gpu = GpuConfig::small(),
            "--threads" => {
                threads = need(args, "--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--json" => json = true,
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    let backend = scheme_of(&scheme).ok_or_else(|| format!("unknown scheme '{scheme}'"))?;
    let kernel = TraceKernel::from_file(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let streamed = if kernel.is_streamed() { "streamed" } else { "decoded" };
    eprintln!(
        "replaying {} ({streamed}, {} resident bytes) under {scheme} for {cycles} cycles",
        path.display(),
        kernel.resident_bytes()
    );
    let report = match backend {
        None => {
            let mut sim = Simulator::new(gpu.clone(), &kernel, |_, g| PassthroughBackend::from_config(g));
            sim.set_threads(threads);
            sim.run(cycles)
        }
        Some(s) => {
            let cfg = SecureMemConfig { scheme: s, ..SecureMemConfig::secure_mem() };
            let mut sim = Simulator::new(gpu.clone(), &kernel, |_, g| SecureBackend::new(cfg.clone(), g));
            sim.set_threads(threads);
            sim.run(cycles)
        }
    };
    if json {
        println!("{}", report_to_json(&report, &gpu));
    } else {
        println!("trace {} under {scheme} for {} cycles", kernel.name(), report.cycles);
        println!("  ipc               {:>12.1}", report.ipc());
        println!("  warp instructions {:>12}", report.warp_instructions);
        println!("  L2 miss rate      {:>11.1}%", report.l2.miss_rate() * 100.0);
        println!("  DRAM requests     {:>12}", report.dram.total_requests());
        println!("  report fp         {:>#018x}", report_fingerprint(&report));
    }
    Ok(())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let result = match cmd.as_str() {
        "record" => cmd_record(&mut args),
        "convert" => cmd_convert(&mut args),
        "stats" => cmd_stats(&mut args),
        "verify" => cmd_verify(&mut args),
        "run" => cmd_run(&mut args),
        other => {
            eprintln!("unknown command '{other}'\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
