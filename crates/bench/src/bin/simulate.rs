//! `simulate` — run one benchmark under one configuration and print the
//! full report (text or JSON). The single-run counterpart of the
//! `reproduce` sweep harness.
//!
//! ```text
//! simulate --bench fdtd2d --scheme ctr_mac_bmt [options]
//!
//! options:
//!   --bench NAME          Table-IV benchmark or ml_* workload (default fdtd2d)
//!   --scheme S            baseline|ctr|ctr_bmt|ctr_mac_bmt|direct|direct_mac|direct_mac_mt
//!   --cycles N            cycle budget (default 120000)
//!   --small               scaled-down 8-SM GPU
//!   --mdcache-kb N        per-type metadata cache size (default 2)
//!   --mshrs N             metadata-cache MSHRs (default 64)
//!   --aes-engines N       pipelined AES engines per partition (default 2)
//!   --aes-latency N       AES latency in cycles (default 40)
//!   --unified             unified metadata cache instead of separate
//!   --srrip               SRRIP metadata-cache replacement
//!   --blocking            blocking (non-speculative) verification
//!   --protected-mb N      selective encryption: protect only the first N MB
//!   --json                emit JSON instead of text
//!   --telemetry           sample per-component time series during the run
//!   --sample-interval N   telemetry sampling interval in cycles (default 512)
//!   --trace-out FILE      write a Chrome trace_event JSON (implies --telemetry)
//! ```

use std::path::PathBuf;

use secmem_bench::json::report_to_json;
use secmem_bench::{run_job, BackendChoice, Job};
use secmem_core::{MetadataCacheKind, SecureMemConfig, SecurityScheme};
use secmem_gpusim::cache::ReplacementPolicy;
use secmem_gpusim::config::GpuConfig;
use secmem_gpusim::types::TrafficClass;
use secmem_telemetry::{chrome, TelemetryConfig};
use secmem_workloads::{ml, suite, SyntheticKernel};

struct Options {
    bench: String,
    scheme: String,
    cycles: u64,
    warmup: u64,
    gpu: GpuConfig,
    cfg: SecureMemConfig,
    json: bool,
    telemetry: bool,
    sample_interval: u64,
    trace_out: Option<PathBuf>,
}

fn find_kernel(name: &str) -> Option<SyntheticKernel> {
    suite::by_name(name).or_else(|| {
        use secmem_gpusim::kernel::Kernel;
        ml::ml_suite().into_iter().find(|k| k.name() == name)
    })
}

fn parse() -> Result<Options, String> {
    let mut o = Options {
        bench: "fdtd2d".into(),
        scheme: "ctr_mac_bmt".into(),
        cycles: 120_000,
        warmup: 0,
        gpu: GpuConfig::volta(),
        cfg: SecureMemConfig::secure_mem(),
        json: false,
        telemetry: false,
        sample_interval: TelemetryConfig::default().sample_interval,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => o.bench = need(&mut it, "--bench")?,
            "--scheme" => o.scheme = need(&mut it, "--scheme")?,
            "--cycles" => {
                o.cycles = need(&mut it, "--cycles")?.parse().map_err(|e| format!("--cycles: {e}"))?
            }
            "--warmup" => {
                o.warmup = need(&mut it, "--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?
            }
            "--small" => o.gpu = GpuConfig::small(),
            "--mdcache-kb" => {
                let kb: u64 =
                    need(&mut it, "--mdcache-kb")?.parse().map_err(|e| format!("--mdcache-kb: {e}"))?;
                o.cfg.mdcache_bytes = kb * 1024;
                o.cfg.unified_bytes = 3 * kb * 1024;
            }
            "--mshrs" => {
                o.cfg.mdcache_mshrs =
                    need(&mut it, "--mshrs")?.parse().map_err(|e| format!("--mshrs: {e}"))?
            }
            "--aes-engines" => {
                o.cfg.aes_engines =
                    need(&mut it, "--aes-engines")?.parse().map_err(|e| format!("--aes-engines: {e}"))?
            }
            "--aes-latency" => {
                o.cfg.aes_latency =
                    need(&mut it, "--aes-latency")?.parse().map_err(|e| format!("--aes-latency: {e}"))?
            }
            "--unified" => o.cfg.cache_kind = MetadataCacheKind::Unified,
            "--srrip" => o.cfg.mdcache_policy = ReplacementPolicy::Srrip,
            "--blocking" => o.cfg.speculative_verification = false,
            "--protected-mb" => {
                let mb: u64 =
                    need(&mut it, "--protected-mb")?.parse().map_err(|e| format!("--protected-mb: {e}"))?;
                o.cfg.protected_limit = Some(mb * 1024 * 1024);
            }
            "--json" => o.json = true,
            "--telemetry" => o.telemetry = true,
            "--sample-interval" => {
                o.sample_interval = need(&mut it, "--sample-interval")?
                    .parse()
                    .map_err(|e| format!("--sample-interval: {e}"))?;
                if o.sample_interval == 0 {
                    return Err("--sample-interval must be at least 1".into());
                }
            }
            "--trace-out" => {
                o.trace_out = Some(PathBuf::from(need(&mut it, "--trace-out")?));
                o.telemetry = true;
            }
            "--help" | "-h" => return Err("see the doc comment at the top of simulate.rs".into()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(o)
}

fn scheme_of(name: &str) -> Option<Option<SecurityScheme>> {
    Some(match name {
        "baseline" => None,
        "ctr" => Some(SecurityScheme::CtrOnly),
        "ctr_bmt" => Some(SecurityScheme::CtrBmt),
        "ctr_mac_bmt" => Some(SecurityScheme::CtrMacBmt),
        "direct" => Some(SecurityScheme::Direct),
        "direct_mac" => Some(SecurityScheme::DirectMac),
        "direct_mac_mt" => Some(SecurityScheme::DirectMacMt),
        _ => return None,
    })
}

fn main() {
    let o = match parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let Some(kernel) = find_kernel(&o.bench) else {
        eprintln!("unknown benchmark '{}'", o.bench);
        std::process::exit(2);
    };
    let Some(scheme) = scheme_of(&o.scheme) else {
        eprintln!("unknown scheme '{}'", o.scheme);
        std::process::exit(2);
    };
    let backend = match scheme {
        None => BackendChoice::Baseline,
        Some(s) => BackendChoice::Secure(SecureMemConfig { scheme: s, ..o.cfg.clone() }),
    };
    let telemetry = o
        .telemetry
        .then(|| TelemetryConfig { sample_interval: o.sample_interval, ..TelemetryConfig::default() });
    let job = Job {
        kernel,
        gpu: o.gpu.clone(),
        backend,
        cycles: o.cycles,
        warmup: o.warmup,
        label: o.scheme.clone(),
        telemetry,
        telemetry_out: None, // single run: the trace is written below
    };
    let result = run_job(&job);
    let r = &result.report;
    if let (Some(path), Some(snap)) = (&o.trace_out, &result.telemetry) {
        let text = chrome::chrome_trace(snap);
        if let Err(e) = chrome::validate_json(&text) {
            eprintln!("internal error: emitted trace is not valid JSON: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote Chrome trace to {}", path.display());
    }
    if o.json {
        println!("{}", report_to_json(r, &o.gpu));
        return;
    }
    println!("benchmark {} under {} for {} cycles", o.bench, o.scheme, r.cycles);
    println!("  ipc               {:>12.1}", r.ipc());
    println!("  bandwidth util    {:>11.1}%", r.bandwidth_utilization(&o.gpu) * 100.0);
    println!("  L1 miss rate      {:>11.1}%", r.l1.miss_rate() * 100.0);
    println!("  L2 miss rate      {:>11.1}%", r.l2.miss_rate() * 100.0);
    println!("  DRAM requests     {:>12}", r.dram.total_requests());
    for class in TrafficClass::ALL {
        let c = r.dram.class(class);
        println!("    {:<5} reads {:>10}  writes {:>10}", class.label(), c.reads, c.writes);
    }
    for (i, name) in ["ctr", "mac", "tree"].iter().enumerate() {
        let m = &r.engine.meta[i];
        if m.cache.accesses() > 0 {
            println!(
                "  {name} cache: {:>9} accesses, {:>5.1}% miss, {:>5.1}% secondary, {} writebacks",
                m.cache.accesses(),
                m.cache.miss_rate() * 100.0,
                m.mshr.secondary_ratio() * 100.0,
                m.writebacks
            );
        }
    }
    if let Some(summary) = &r.telemetry_summary {
        println!("telemetry:");
        for line in summary.lines() {
            println!("  {line}");
        }
    }
}
