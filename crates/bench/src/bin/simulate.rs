//! `simulate` — run one benchmark under one configuration and print the
//! full report (text or JSON). The single-run counterpart of the
//! `reproduce` sweep harness.
//!
//! ```text
//! simulate --bench fdtd2d --scheme ctr_mac_bmt [options]
//!
//! options:
//!   --bench NAME          Table-IV benchmark or ml_* workload (default fdtd2d)
//!   --scheme S            baseline|ctr|ctr_bmt|ctr_mac_bmt|direct|direct_mac|direct_mac_mt
//!   --cycles N            cycle budget (default 120000)
//!   --small               scaled-down 8-SM GPU
//!   --mdcache-kb N        per-type metadata cache size (default 2)
//!   --mshrs N             metadata-cache MSHRs (default 64)
//!   --aes-engines N       pipelined AES engines per partition (default 2)
//!   --aes-latency N       AES latency in cycles (default 40)
//!   --unified             unified metadata cache instead of separate
//!   --srrip               SRRIP metadata-cache replacement
//!   --blocking            blocking (non-speculative) verification
//!   --protected-mb N      selective encryption: protect only the first N MB
//!   --json                emit JSON instead of text
//!   --telemetry           sample per-component time series during the run
//!   --sample-interval N   telemetry sampling interval in cycles (default 512)
//!   --trace-out FILE      write a Chrome trace_event JSON (implies --telemetry)
//!   --checkpoint-every N  snapshot full simulator state every N cycles
//!   --checkpoint-out F    where snapshots go (default simulate.ckpt)
//!   --resume-from F       restore a snapshot and continue the run from it
//!   --threads N           partition/SM stepping threads (default 1;
//!                         results are byte-identical at every value)
//! ```
//!
//! Checkpointing makes paper-scale runs crash-safe: a run killed between
//! snapshots loses at most `N` cycles, and `--resume-from` continues it
//! to a report byte-identical to an uninterrupted run (telemetry off).
//! If the forward-progress watchdog trips, the wounded machine is
//! captured in `<checkpoint-out>.emergency` for post-mortem debugging.

use std::path::{Path, PathBuf};

use secmem_bench::json::report_to_json;
use secmem_bench::{run_job, BackendChoice, Job, RunResult};
use secmem_checkpoint::Frame;
use secmem_core::{MetadataCacheKind, SecureBackend, SecureMemConfig, SecurityScheme};
use secmem_gpusim::backend::{MemoryBackend, PassthroughBackend};
use secmem_gpusim::cache::ReplacementPolicy;
use secmem_gpusim::config::GpuConfig;
use secmem_gpusim::sim::Simulator;
use secmem_gpusim::stats::SimReport;
use secmem_gpusim::types::TrafficClass;
use secmem_telemetry::{chrome, Telemetry, TelemetryConfig};
use secmem_workloads::{ml, suite, SyntheticKernel};

struct Options {
    bench: String,
    scheme: String,
    cycles: u64,
    warmup: u64,
    gpu: GpuConfig,
    cfg: SecureMemConfig,
    json: bool,
    telemetry: bool,
    sample_interval: u64,
    trace_out: Option<PathBuf>,
    checkpoint_every: u64,
    checkpoint_out: PathBuf,
    resume_from: Option<PathBuf>,
    sim_threads: usize,
}

fn find_kernel(name: &str) -> Option<SyntheticKernel> {
    suite::by_name(name).or_else(|| {
        use secmem_gpusim::kernel::Kernel;
        ml::ml_suite().into_iter().find(|k| k.name() == name)
    })
}

fn parse() -> Result<Options, String> {
    let mut o = Options {
        bench: "fdtd2d".into(),
        scheme: "ctr_mac_bmt".into(),
        cycles: 120_000,
        warmup: 0,
        gpu: GpuConfig::volta(),
        cfg: SecureMemConfig::secure_mem(),
        json: false,
        telemetry: false,
        sample_interval: TelemetryConfig::default().sample_interval,
        trace_out: None,
        checkpoint_every: 0,
        checkpoint_out: PathBuf::from("simulate.ckpt"),
        resume_from: None,
        sim_threads: 1,
    };
    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => o.bench = need(&mut it, "--bench")?,
            "--scheme" => o.scheme = need(&mut it, "--scheme")?,
            "--cycles" => {
                o.cycles = need(&mut it, "--cycles")?.parse().map_err(|e| format!("--cycles: {e}"))?
            }
            "--warmup" => {
                o.warmup = need(&mut it, "--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?
            }
            "--small" => o.gpu = GpuConfig::small(),
            "--mdcache-kb" => {
                let kb: u64 =
                    need(&mut it, "--mdcache-kb")?.parse().map_err(|e| format!("--mdcache-kb: {e}"))?;
                o.cfg.mdcache_bytes = kb * 1024;
                o.cfg.unified_bytes = 3 * kb * 1024;
            }
            "--mshrs" => {
                o.cfg.mdcache_mshrs =
                    need(&mut it, "--mshrs")?.parse().map_err(|e| format!("--mshrs: {e}"))?
            }
            "--aes-engines" => {
                o.cfg.aes_engines =
                    need(&mut it, "--aes-engines")?.parse().map_err(|e| format!("--aes-engines: {e}"))?
            }
            "--aes-latency" => {
                o.cfg.aes_latency =
                    need(&mut it, "--aes-latency")?.parse().map_err(|e| format!("--aes-latency: {e}"))?
            }
            "--unified" => o.cfg.cache_kind = MetadataCacheKind::Unified,
            "--srrip" => o.cfg.mdcache_policy = ReplacementPolicy::Srrip,
            "--blocking" => o.cfg.speculative_verification = false,
            "--protected-mb" => {
                let mb: u64 =
                    need(&mut it, "--protected-mb")?.parse().map_err(|e| format!("--protected-mb: {e}"))?;
                o.cfg.protected_limit = Some(mb * 1024 * 1024);
            }
            "--json" => o.json = true,
            "--telemetry" => o.telemetry = true,
            "--sample-interval" => {
                o.sample_interval = need(&mut it, "--sample-interval")?
                    .parse()
                    .map_err(|e| format!("--sample-interval: {e}"))?;
                if o.sample_interval == 0 {
                    return Err("--sample-interval must be at least 1".into());
                }
            }
            "--trace-out" => {
                o.trace_out = Some(PathBuf::from(need(&mut it, "--trace-out")?));
                o.telemetry = true;
            }
            "--checkpoint-every" => {
                o.checkpoint_every = need(&mut it, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
                if o.checkpoint_every == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
            }
            "--checkpoint-out" => {
                o.checkpoint_out = PathBuf::from(need(&mut it, "--checkpoint-out")?);
            }
            "--resume-from" => o.resume_from = Some(PathBuf::from(need(&mut it, "--resume-from")?)),
            "--threads" => {
                o.sim_threads = need(&mut it, "--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--help" | "-h" => return Err("see the doc comment at the top of simulate.rs".into()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if o.warmup > 0 && (o.checkpoint_every > 0 || o.resume_from.is_some()) {
        // Warmup resets statistics mid-run; a snapshot cut across that
        // boundary could not promise resume-equals-uninterrupted.
        return Err("--warmup cannot be combined with checkpointing flags".into());
    }
    Ok(o)
}

/// `<checkpoint-out>.emergency`: where a watchdog-stalled machine is
/// captured.
fn emergency_path(out: &Path) -> PathBuf {
    let mut s = out.as_os_str().to_os_string();
    s.push(".emergency");
    PathBuf::from(s)
}

/// Drives a simulator in `--checkpoint-every` sized chunks, writing a
/// snapshot after each chunk, and captures an emergency snapshot when
/// the forward-progress watchdog trips.
fn drive_checkpointed<B: MemoryBackend>(sim: &mut Simulator<B>, o: &Options) -> Result<SimReport, String> {
    if let Some(path) = &o.resume_from {
        let frame = Frame::read_file(path).map_err(|e| format!("--resume-from {}: {e}", path.display()))?;
        sim.restore_checkpoint(&frame).map_err(|e| format!("--resume-from {}: {e}", path.display()))?;
        eprintln!("resumed from {} at cycle {}", path.display(), frame.cycle);
    }
    loop {
        let target =
            if o.checkpoint_every > 0 { (sim.now() + o.checkpoint_every).min(o.cycles) } else { o.cycles };
        match sim.run_checked(target) {
            Ok(report) => {
                if sim.finished() || sim.now() >= o.cycles {
                    return Ok(report);
                }
                if o.checkpoint_every > 0 {
                    let frame = sim.save_checkpoint();
                    frame
                        .write_file(&o.checkpoint_out)
                        .map_err(|e| format!("writing {}: {e}", o.checkpoint_out.display()))?;
                    eprintln!("checkpoint at cycle {} -> {}", frame.cycle, o.checkpoint_out.display());
                }
            }
            Err(stall) => {
                let path = emergency_path(&o.checkpoint_out);
                let frame = sim.save_checkpoint();
                match frame.write_file(&path) {
                    Ok(()) => eprintln!(
                        "watchdog: {stall}; emergency snapshot at cycle {} -> {}",
                        frame.cycle,
                        path.display()
                    ),
                    Err(e) => eprintln!("watchdog: {stall}; emergency snapshot failed: {e}"),
                }
                // The report carries the stall diagnostics.
                return Ok(sim.report());
            }
        }
    }
}

/// Like [`run_job`], but with the simulator exposed to the chunked
/// checkpoint loop. Mirrors `run_job`'s construction exactly so resumed
/// runs restore into an identical machine.
fn run_checkpointed_job(job: &Job, o: &Options) -> Result<RunResult, String> {
    use secmem_gpusim::kernel::Kernel;
    let bench = job.kernel.name().to_string();
    let telemetry = match &job.telemetry {
        Some(cfg) => Telemetry::enabled(cfg.clone()),
        None => Telemetry::disabled(),
    };
    match &job.backend {
        BackendChoice::Baseline => {
            let mut sim =
                Simulator::new(job.gpu.clone(), &job.kernel, |_, g| PassthroughBackend::from_config(g));
            sim.set_threads(job.sim_threads);
            sim.set_telemetry(telemetry);
            let report = drive_checkpointed(&mut sim, o)?;
            let telemetry = sim.telemetry_snapshot();
            Ok(RunResult { bench, label: job.label.clone(), report, reuse: None, telemetry })
        }
        BackendChoice::Secure(cfg) => {
            let cfg = cfg.clone();
            let mut sim =
                Simulator::new(job.gpu.clone(), &job.kernel, |_, g| SecureBackend::new(cfg.clone(), g));
            sim.set_threads(job.sim_threads);
            sim.set_telemetry(telemetry);
            let report = drive_checkpointed(&mut sim, o)?;
            let reuse = sim
                .partition(0)
                .backend()
                .reuse_profilers()
                .map(|p| [p[0].histogram(), p[1].histogram(), p[2].histogram()]);
            let telemetry = sim.telemetry_snapshot();
            Ok(RunResult { bench, label: job.label.clone(), report, reuse, telemetry })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secmem_gpusim::fault::{FaultKind, FaultPlan, FaultSpec, FaultTrigger};
    use secmem_gpusim::kernel::StreamKernel;

    fn options(dir: &Path) -> Options {
        Options {
            bench: "fdtd2d".into(),
            scheme: "baseline".into(),
            cycles: 1_000_000,
            warmup: 0,
            gpu: GpuConfig::small(),
            cfg: SecureMemConfig::secure_mem(),
            json: false,
            telemetry: false,
            sample_interval: 512,
            trace_out: None,
            checkpoint_every: 0,
            checkpoint_out: dir.join("run.ckpt"),
            resume_from: None,
            sim_threads: 1,
        }
    }

    /// Drops every data-read completion: all warps wedge and the
    /// forward-progress watchdog trips.
    fn stalling_sim(cfg: &GpuConfig) -> Simulator<PassthroughBackend> {
        let plan = FaultPlan::new(11)
            .with(FaultSpec::new(FaultKind::Drop, FaultTrigger::Always).on_class(TrafficClass::Data));
        let kernel = StreamKernel { alu_per_mem: 0, bytes_per_warp: 1 << 18, warps: 4 };
        Simulator::new(cfg.clone(), &kernel, move |p, c| {
            let mut b = PassthroughBackend::from_config(c);
            b.install_faults(plan.injector_for(p));
            b
        })
    }

    #[test]
    fn watchdog_trip_leaves_a_loadable_emergency_snapshot() {
        let dir = std::env::temp_dir().join(format!("simulate_emergency_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut o = options(&dir);
        let mut gpu = GpuConfig::small();
        gpu.watchdog_cycles = 2_000;
        o.gpu = gpu.clone();

        let mut sim = stalling_sim(&gpu);
        let report = drive_checkpointed(&mut sim, &o).expect("stall is reported, not an error");
        let stall = report.stall.as_ref().expect("report must carry the stall diagnostics");

        // The wedged machine must be captured, decodable, and restorable
        // into an identically built simulator — which then stalls at the
        // exact same cycle, proving the snapshot holds the stuck state.
        let path = emergency_path(&o.checkpoint_out);
        let frame = Frame::read_file(&path).expect("emergency snapshot decodes");
        assert_eq!(frame.cycle, sim.now(), "snapshot taken at the stall cycle");
        let mut revived = stalling_sim(&gpu);
        revived.restore_checkpoint(&frame).expect("emergency snapshot restores");
        let err = revived.run_checked(o.cycles).expect_err("restored machine is still wedged");
        let secmem_gpusim::error::SimError::Stalled(again) = *err else { panic!("expected stall") };
        assert!(
            again.cycle > stall.cycle && again.cycle <= stall.cycle + gpu.watchdog_cycles,
            "restored machine must re-trip within one watchdog window \
             (first at {}, again at {})",
            stall.cycle,
            again.cycle
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn scheme_of(name: &str) -> Option<Option<SecurityScheme>> {
    Some(match name {
        "baseline" => None,
        "ctr" => Some(SecurityScheme::CtrOnly),
        "ctr_bmt" => Some(SecurityScheme::CtrBmt),
        "ctr_mac_bmt" => Some(SecurityScheme::CtrMacBmt),
        "direct" => Some(SecurityScheme::Direct),
        "direct_mac" => Some(SecurityScheme::DirectMac),
        "direct_mac_mt" => Some(SecurityScheme::DirectMacMt),
        _ => return None,
    })
}

fn main() {
    let o = match parse() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let Some(kernel) = find_kernel(&o.bench) else {
        eprintln!("unknown benchmark '{}'", o.bench);
        std::process::exit(2);
    };
    let Some(scheme) = scheme_of(&o.scheme) else {
        eprintln!("unknown scheme '{}'", o.scheme);
        std::process::exit(2);
    };
    let backend = match scheme {
        None => BackendChoice::Baseline,
        Some(s) => BackendChoice::Secure(SecureMemConfig { scheme: s, ..o.cfg.clone() }),
    };
    let telemetry = o
        .telemetry
        .then(|| TelemetryConfig { sample_interval: o.sample_interval, ..TelemetryConfig::default() });
    let job = Job {
        kernel,
        gpu: o.gpu.clone(),
        backend,
        cycles: o.cycles,
        warmup: o.warmup,
        label: o.scheme.clone(),
        telemetry,
        telemetry_out: None, // single run: the trace is written below
        sim_threads: o.sim_threads,
    };
    let checkpointing = o.checkpoint_every > 0 || o.resume_from.is_some();
    let result = if checkpointing {
        match run_checkpointed_job(&job, &o) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    } else {
        run_job(&job)
    };
    let r = &result.report;
    if let (Some(path), Some(snap)) = (&o.trace_out, &result.telemetry) {
        let text = chrome::chrome_trace(snap);
        if let Err(e) = chrome::validate_json(&text) {
            eprintln!("internal error: emitted trace is not valid JSON: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote Chrome trace to {}", path.display());
    }
    if o.json {
        println!("{}", report_to_json(r, &o.gpu));
        return;
    }
    println!("benchmark {} under {} for {} cycles", o.bench, o.scheme, r.cycles);
    println!("  ipc               {:>12.1}", r.ipc());
    println!("  bandwidth util    {:>11.1}%", r.bandwidth_utilization(&o.gpu) * 100.0);
    println!("  L1 miss rate      {:>11.1}%", r.l1.miss_rate() * 100.0);
    println!("  L2 miss rate      {:>11.1}%", r.l2.miss_rate() * 100.0);
    println!("  DRAM requests     {:>12}", r.dram.total_requests());
    for class in TrafficClass::ALL {
        let c = r.dram.class(class);
        println!("    {:<5} reads {:>10}  writes {:>10}", class.label(), c.reads, c.writes);
    }
    for (i, name) in ["ctr", "mac", "tree"].iter().enumerate() {
        let m = &r.engine.meta[i];
        if m.cache.accesses() > 0 {
            println!(
                "  {name} cache: {:>9} accesses, {:>5.1}% miss, {:>5.1}% secondary, {} writebacks",
                m.cache.accesses(),
                m.cache.miss_rate() * 100.0,
                m.mshr.secondary_ratio() * 100.0,
                m.writebacks
            );
        }
    }
    if let Some(summary) = &r.telemetry_summary {
        println!("telemetry:");
        for line in summary.lines() {
            println!("  {line}");
        }
    }
}
