//! `csv2svg` — renders a grouped-bar SVG chart from an experiment CSV
//! produced by `reproduce --csv`, without re-running the simulations.
//!
//! ```text
//! csv2svg results/fig3.csv [...more csvs]     # writes fig3.svg next to it
//! ```

use std::path::Path;

use secmem_bench::plot::{grouped_bars, PlotStyle};
use secmem_bench::table::ExpTable;

/// Parses one line of (simple, escaped) CSV.
fn parse_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cell.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                cells.push(std::mem::take(&mut cell));
            }
            other => cell.push(other),
        }
    }
    cells.push(cell);
    cells
}

fn convert(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let headers = parse_line(lines.next().ok_or("empty csv")?);
    let title = path.file_stem().and_then(|s| s.to_str()).unwrap_or("chart").to_string();
    let mut table = ExpTable::new(title, &headers.iter().map(|s| &**s).collect::<Vec<_>>());
    for line in lines {
        if line.starts_with('#') {
            continue;
        }
        let row = parse_line(line);
        if row.len() == headers.len() {
            table.push_row(row);
        }
    }
    // Percent-valued tables need a taller axis.
    let percentish = table.rows.iter().any(|r| r[1..].iter().any(|c| c.ends_with('%')));
    let style = PlotStyle { y_max: if percentish { 100.0 } else { 1.1 }, ..PlotStyle::default() };
    let svg = grouped_bars(&table, &style).ok_or("no numeric series to plot")?;
    let out = path.with_extension("svg");
    std::fs::write(&out, svg).map_err(|e| format!("{}: {e}", out.display()))?;
    println!("wrote {}", out.display());
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: csv2svg <experiment.csv>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for arg in &args {
        if let Err(e) = convert(Path::new(arg)) {
            eprintln!("csv2svg: {arg}: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
